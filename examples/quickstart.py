"""Quickstart: the cryogenic-aware design-automation flow in ~60 lines.

Walks the paper's full stack on a small circuit:

1. cryogenic-aware FinFET compact model (Section II),
2. standard-cell library characterization at 300 K and 10 K
   (Section III),
3. cryogenic-aware synthesis + technology mapping (Section IV),
4. signoff power/delay comparison (Section V).

Run:  python examples/quickstart.py
"""

from repro.benchgen import build_circuit
from repro.charlib import default_library
from repro.core import run_scenarios
from repro.device import CryoFinFET, default_nfet_5nm


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Device physics: what cooling to 10 K does to a 5 nm FinFET.
    # ------------------------------------------------------------------
    nfet = CryoFinFET(default_nfet_5nm())
    print("== Cryogenic 5 nm n-FinFET (compact model) ==")
    print(f"{'T [K]':>6} {'Ion [uA]':>10} {'Ioff [pA]':>12} {'SS [mV/dec]':>12} {'Vth [V]':>8}")
    for temperature in (300.0, 77.0, 10.0):
        print(
            f"{temperature:6.0f}"
            f" {nfet.on_current(0.7, temperature) * 1e6:10.1f}"
            f" {nfet.off_current(0.7, temperature) * 1e12:12.4g}"
            f" {nfet.subthreshold_swing(temperature) * 1e3:12.1f}"
            f" {nfet.threshold_voltage(temperature):8.3f}"
        )

    # ------------------------------------------------------------------
    # 2. Cell libraries at both corners (cached, ~1 s each).
    # ------------------------------------------------------------------
    lib300 = default_library(300.0)
    lib10 = default_library(10.0)
    print("\n== 200-cell library characterization ==")
    for library in (lib300, lib10):
        delays = library.delay_distribution()
        print(
            f"T={library.temperature:5.0f} K: median cell delay ="
            f" {sorted(delays)[len(delays)//2] * 1e12:6.2f} ps,"
            f" median leakage = {sorted(library.leakage_distribution())[100] * 1e9:10.4g} nW"
        )

    # ------------------------------------------------------------------
    # 3+4. Synthesize an EPFL circuit under all three scenarios at 10 K.
    # ------------------------------------------------------------------
    circuit = build_circuit("int2float", "default")
    print(f"\n== Cryogenic-aware synthesis of '{circuit.name}' "
          f"({circuit.num_ands} AIG nodes) at 10 K ==")
    results = run_scenarios(circuit, lib10, vectors=256)
    baseline = results["baseline"]
    print(f"{'scenario':>10} {'gates':>6} {'power [uW]':>11} {'delay [ps]':>11}"
          f" {'vs baseline':>12}")
    for name, result in results.items():
        saving = 100.0 * (1.0 - result.total_power / baseline.total_power)
        print(
            f"{name:>10} {result.num_gates:6d}"
            f" {result.total_power * 1e6:11.2f}"
            f" {result.critical_delay * 1e12:11.1f}"
            f" {saving:+11.2f}%"
        )
    report = baseline.power
    print(
        f"\nPower split at 10 K (baseline): leakage {report.leakage_share:.5%},"
        f" internal {report.internal_share:.1%}, switching {report.switching_share:.1%}"
        " -- leakage is negligible at cryogenic temperature, exactly the"
        " paper's premise."
    )


if __name__ == "__main__":
    main()
