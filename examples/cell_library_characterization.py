"""Standard-cell library characterization at 300 K and 10 K (Fig. 2a/b).

Characterizes the full 200-cell ASAP7-class catalog at both corners,
writes industry-standard liberty files, cross-validates the fast
analytic backend against the transistor-level SPICE backend on a cell
sample, and prints the delay/energy distribution summary behind the
paper's Fig. 2(a, b).

Run:  python examples/cell_library_characterization.py
"""

import os

import numpy as np

from repro.charlib import (
    SpiceCharacterizer,
    characterize_library,
    parse_liberty,
    write_liberty,
)
from repro.pdk import cryo5_technology, standard_cell_catalog
from repro.pdk.catalog import make_inv, make_nand

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def describe(label: str, values: np.ndarray, scale: float, unit: str) -> None:
    values = np.asarray(values) * scale
    print(
        f"  {label:16s} mean={np.mean(values):8.3f} median={np.median(values):8.3f}"
        f" p10={np.percentile(values, 10):8.3f} p90={np.percentile(values, 90):8.3f} {unit}"
    )


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    tech = cryo5_technology()
    print(f"catalog: {len(standard_cell_catalog())} cells, "
          f"7x7 characterization grid, Vdd = {tech.vdd} V")

    libraries = {}
    for temperature in (300.0, 10.0):
        library = characterize_library(tech, temperature)
        libraries[temperature] = library
        print(f"\n== corner T = {temperature:.0f} K ==")
        describe("cell delay", library.delay_distribution(), 1e12, "ps")
        describe("switch energy", library.energy_distribution(), 1e15, "fJ")
        describe("leakage", library.leakage_distribution(), 1e9, "nW")

        path = os.path.join(OUT_DIR, f"cryo5_{temperature:.0f}K.lib")
        text = write_liberty(library)
        with open(path, "w") as handle:
            handle.write(text)
        print(f"  wrote {path} ({len(text) // 1024} KiB)")
        # Round-trip proof: the file is real liberty our parser reads.
        parsed = parse_liberty(text)
        assert len(parsed) == len(library)

    # Fig. 2(a): the distributions overlap; Fig. 2(b): slightly lower
    # energy at 10 K.
    d300 = np.median(libraries[300.0].delay_distribution())
    d10 = np.median(libraries[10.0].delay_distribution())
    e300 = np.median(libraries[300.0].energy_distribution())
    e10 = np.median(libraries[10.0].energy_distribution())
    l300 = np.mean(libraries[300.0].leakage_distribution())
    l10 = np.mean(libraries[10.0].leakage_distribution())
    print("\n== 10 K vs 300 K (library medians) ==")
    print(f"  delay ratio   : {d10 / d300:6.3f}   (paper: ~1, distributions overlap)")
    print(f"  energy ratio  : {e10 / e300:6.3f}   (paper: slightly below 1)")
    print(f"  leakage ratio : {l10 / l300:.3e} (paper: orders of magnitude down)")

    # Cross-validate the analytic backend against SPICE transients.
    print("\n== analytic vs transistor-level SPICE (sample cells, 300 K) ==")
    spice = SpiceCharacterizer(tech, 300.0)
    for cell in (make_inv(2), make_nand(2, 1)):
        slew, load = 8e-12, 3.2e-15
        measured = spice.measure_arc(cell, "A", "Y", True, slew, load)
        analytic = characterize_library(tech, 300.0, cells=[cell])[cell.name]
        arc = analytic.arcs[0]
        predicted = arc.cell_fall.lookup(slew, load)
        print(
            f"  {cell.name:8s} spice delay={measured.delay * 1e12:6.2f} ps,"
            f" analytic={predicted * 1e12:6.2f} ps"
            f" (ratio {predicted / measured.delay:4.2f})"
        )


if __name__ == "__main__":
    main()
