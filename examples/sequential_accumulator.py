"""Scenario: a clocked accumulator signed off at 10 K.

Everything before this example was combinational; a real cryogenic
controller is clocked.  This example builds a MAC-style accumulator
(acc' = acc + in, with synchronous clear), synthesizes the next-state
logic with the cryogenic-aware flow, instantiates characterized D
flip-flops, and reports the registered-path timing budget
(clk->q + logic + setup) and the power split between core and
registers.

Run:  python examples/sequential_accumulator.py [bits]
"""

import sys

from repro.charlib import default_library
from repro.core import make_accumulator, run_sequential


def main() -> None:
    bits = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    library = default_library(10.0)
    design = make_accumulator(bits)
    print(f"accumulator: {bits} bits, {design.core.num_ands} AIG nodes in the core")

    print(f"\n{'scenario':>10} {'Fmax [GHz]':>11} {'Tmin [ps]':>10} "
          f"{'core [uW]':>10} {'regs [uW]':>10}")
    for scenario in ("baseline", "p_a_d", "p_d_a"):
        result = run_sequential(design, library, scenario=scenario)
        print(
            f"{scenario:>10} {result.fmax / 1e9:11.2f}"
            f" {result.min_clock_period * 1e12:10.1f}"
            f" {result.core_power * 1e6:10.2f}"
            f" {result.register_power * 1e6:10.2f}"
        )

    result = run_sequential(design, library)
    print(
        f"\nregistered-path budget ({result.flop_cell}): "
        f"clk->q {result.clk_to_q * 1e12:.2f} ps"
        f" + logic {result.comb_delay * 1e12:.2f} ps"
        f" + setup {result.setup_time * 1e12:.2f} ps"
        f" = {result.min_clock_period * 1e12:.2f} ps"
    )


if __name__ == "__main__":
    main()
