"""Traced synthesis: watch where a `compare` run spends its time.

Runs the Fig. 3 scenario comparison on one EPFL circuit under a
``repro.obs`` tracer, writes the full JSONL trace, and prints the
span-tree summary — per-stage wall times, pass-level node deltas, and
the top counters (cut enumerations, SAT queries, STA lookups).

The same view is available from the CLI:

    python -m repro synthesize adder --scenario p_a_d --profile
    python -m repro compare ctrl --trace run.jsonl
    python -m repro report-trace run.jsonl

Run:  python examples/traced_synthesis.py
"""

from repro import obs
from repro.benchgen import build_circuit
from repro.charlib import default_library
from repro.core import run_scenarios

TRACE_PATH = "traced_synthesis.jsonl"


def main() -> None:
    aig = build_circuit("ctrl", "small")
    library = default_library(10.0)  # characterized outside the trace

    with obs.Tracer(sinks=[obs.JsonlSink(TRACE_PATH)]) as tracer:
        results = run_scenarios(aig, library)

    print(f"== {aig.name}: scenario comparison at 10 K ==")
    for scenario, result in results.items():
        print(
            f"{scenario:10s} {result.num_gates:4d} gates"
            f"  {result.critical_delay * 1e12:7.1f} ps"
            f"  {result.total_power * 1e6:8.2f} uW"
        )

    print()
    print("== where the time went ==")
    print(tracer.render_summary())
    print()
    print(f"full trace written to {TRACE_PATH} "
          f"(re-render with: python -m repro report-trace {TRACE_PATH})")


if __name__ == "__main__":
    main()
