"""Compact-model calibration against cryogenic measurements (Fig. 1).

Reproduces the paper's Section II loop end-to-end:

* a synthetic probe station ("Lakeshore CRX-VF + Keysight B1500A")
  measures a hidden 5 nm FinFET from 300 K down to 10 K at low and
  high drain bias,
* the cryogenic-aware BSIM-CMG surrogate is calibrated by bounded
  least squares on the measured log-currents,
* the validation table reports the per-condition residuals (the
  "lines through dots" agreement of Fig. 1 b/c) and the recovered
  physical parameters.

Run:  python examples/cryo_model_calibration.py
"""

import numpy as np

from repro.device import (
    CryoProbeStation,
    calibrate,
    default_nfet_5nm,
    default_pfet_5nm,
    parameter_recovery_error,
    perturbed_silicon,
    validate,
)

TEMPERATURES = (300.0, 200.0, 77.0, 10.0)
DRAIN_BIASES = (0.05, 0.75)  # the paper's 50 mV / 750 mV conditions


def run_polarity(polarity: str, seed: int) -> None:
    base = default_nfet_5nm() if polarity == "n" else default_pfet_5nm()
    silicon = perturbed_silicon(base, seed=seed)
    station = CryoProbeStation(silicon, seed=seed + 17)

    print(f"\n=== {polarity}-FinFET measurement campaign ===")
    sweeps = []
    for temperature in TEMPERATURES:
        for vds in DRAIN_BIASES:
            sweeps.append(station.sweep_ids_vgs(vds, temperature, points=36))
    print(f"collected {len(sweeps)} sweeps x 36 bias points")

    result = calibrate(sweeps, base)
    print(f"calibration converged: {result.converged}, "
          f"RMS log error {result.rms_log_error:.4f} decades "
          f"(max {result.max_log_error:.3f})")

    print(f"{'|Vds| [V]':>10} {'T [K]':>7} {'RMS log-I error':>16}")
    for (vds, temperature), rms in sorted(result.per_sweep_rms.items()):
        print(f"{abs(vds):10.2f} {temperature:7.0f} {rms:16.4f}")

    errors = parameter_recovery_error(result.params, silicon)
    print("recovered hidden parameters (relative error):")
    for name, err in sorted(errors.items()):
        print(f"  {name:22s} {err:8.2%}")

    # Hold-out validation at an unseen bias/temperature condition.
    held_out = [station.sweep_ids_vgs(0.40, 150.0, points=25)]
    report = validate(result.device(), held_out)
    print(f"hold-out (Vds=0.40 V, T=150 K) RMS: {list(report.values())[0]:.4f} decades")

    # Fig. 1-style curve table at the two headline conditions.
    device = result.device()
    sign = 1.0 if polarity == "n" else -1.0
    print(f"\nmodel transfer curves, |Vds|=0.75 V ({polarity}-FinFET):")
    print(f"{'|Vgs| [V]':>10} " + " ".join(f"{t:>11.0f}K" for t in TEMPERATURES))
    for vgs in np.linspace(0.0, 0.7, 8):
        row = [
            abs(float(device.ids(sign * vgs, sign * 0.75, t)))
            for t in TEMPERATURES
        ]
        print(f"{vgs:10.2f} " + " ".join(f"{i:12.3e}" for i in row))


def main() -> None:
    run_polarity("n", seed=2023)
    run_polarity("p", seed=2024)


if __name__ == "__main__":
    main()
