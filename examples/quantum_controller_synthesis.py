"""Scenario: a cryogenic qubit-controller datapath under a power budget.

The paper's motivating application: control electronics inside the
cryostat must stay within a tiny dissipation budget (a 10 K controller
gets ~100 mW total; an individual channel slice gets a sliver of
that).  This example builds a representative controller slice —
channel decoder, pulse-amplitude datapath, and round-robin channel
arbitration — then synthesizes it with the conventional power-aware
baseline and the cryogenic-aware (p->d->a) flow and checks the power
budget at the target clock.

Run:  python examples/quantum_controller_synthesis.py
"""

from repro.benchgen import WordBuilder
from repro.charlib import default_library
from repro.core import run_scenarios
from repro.io import write_verilog
from repro.synth.aig import AIG, lit_not


def build_controller_slice(channels_bits: int = 4, amp_bits: int = 6) -> AIG:
    """Channel decoder + amplitude scaler + arbitration, one slice."""
    wb = WordBuilder("qubit_ctrl_slice")
    channel = wb.input_word("chan", channels_bits)
    amplitude = wb.input_word("amp", amp_bits)
    gain = wb.input_word("gain", amp_bits)
    requests = wb.input_word("req", 1 << channels_bits)
    enable = wb.aig.add_pi("en")

    # One-hot channel decode, gated by enable.
    for value in range(1 << channels_bits):
        term = enable
        for bit in range(channels_bits):
            lit = channel[bit]
            if not (value >> bit) & 1:
                lit = lit_not(lit)
            term = wb.aig.add_and(term, lit)
        wb.aig.add_po(term, f"sel{value}")

    # Pulse amplitude scaling: amp * gain, truncated.
    product = wb.mul(amplitude, gain, width=amp_bits + 2)
    wb.output_word("pulse", product)

    # Priority arbitration over the request lines.
    from repro.synth.aig import CONST0

    blocked = CONST0
    for i, line in enumerate(requests):
        wb.aig.add_po(wb.aig.add_and(line, lit_not(blocked)), f"gnt{i}")
        blocked = wb.aig.add_or(blocked, line)
    return wb.aig.cleanup()


def main() -> None:
    circuit = build_controller_slice()
    print(f"controller slice: {circuit.num_pis} inputs, {circuit.num_pos} outputs, "
          f"{circuit.num_ands} AIG nodes")

    library = default_library(10.0)
    results = run_scenarios(circuit, library, vectors=256)
    baseline = results["baseline"]
    proposed = results["p_d_a"]

    clock = baseline.power.clock_period
    print(f"\nsignoff at common clock {clock * 1e12:.1f} ps "
          f"({1e-9 / clock:.2f} GHz), T = 10 K")
    print(f"{'flow':>22} {'gates':>6} {'area[um2]':>10} {'power[uW]':>10} {'delay[ps]':>10}")
    for name, result in results.items():
        print(
            f"{name:>22} {result.num_gates:6d} {result.area:10.2f}"
            f" {result.total_power * 1e6:10.2f}"
            f" {result.critical_delay * 1e12:10.1f}"
        )

    saving = 100.0 * (1.0 - proposed.total_power / baseline.total_power)
    print(f"\ncryogenic-aware (p->d->a) vs power-aware baseline: {saving:+.2f}% power")

    # A per-slice dissipation budget: with ~1000 slices sharing the
    # paper's 100 mW cryostat budget, each slice gets 100 uW.  Control
    # pulses update at 1 GHz, not at the circuit's maximum speed, so
    # the budget is checked at the 1 ns system clock.
    from repro.core import CryoSynthesisFlow

    budget = 100e-6
    system_clock = 1e-9
    flow = CryoSynthesisFlow(library, "p_d_a")
    at_system_clock = flow.signoff_power(proposed, system_clock, vectors=256)
    verdict = "MEETS" if at_system_clock.total <= budget else "EXCEEDS"
    print(f"slice budget 100 uW at the 1 GHz system clock: proposed flow "
          f"{verdict} the budget ({at_system_clock.total * 1e6:.1f} uW)")

    # Hand the netlist to the back-end.
    import os

    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "qubit_ctrl_slice.v")
    with open(path, "w") as handle:
        handle.write(write_verilog(proposed.netlist))
    print(f"wrote mapped netlist to {path}")


if __name__ == "__main__":
    main()
