"""Fig. 3 on demand: three synthesis scenarios on chosen EPFL circuits.

Runs the conventional power-aware baseline against the two proposed
cryogenic-aware cost hierarchies on a selection of the EPFL suite and
prints the per-circuit power-saving / delay-overhead table of Fig. 3.

Run:  python examples/epfl_synthesis_comparison.py [circuit ...]
      (default: a fast five-circuit selection; pass names like
       'adder bar dec priority voter' or 'all')
"""

import sys

from repro.benchgen import EPFL_SUITE
from repro.core import figure3_summary, figure3_synthesis_comparison

FAST_SELECTION = ["ctrl", "dec", "int2float", "priority", "router"]


def main() -> None:
    names = sys.argv[1:] or FAST_SELECTION
    if names == ["all"]:
        names = sorted(EPFL_SUITE)
    unknown = [n for n in names if n not in EPFL_SUITE]
    if unknown:
        raise SystemExit(f"unknown circuits: {unknown}; choose from {sorted(EPFL_SUITE)}")

    print(f"running scenarios on: {', '.join(names)} (10 K library)")
    rows = figure3_synthesis_comparison(circuits=names, preset="default", vectors=256)

    header = (
        f"{'circuit':12s} {'base P[uW]':>11} {'base D[ps]':>11}"
        f" {'p_a_d dP%':>10} {'p_a_d dD%':>10} {'p_d_a dP%':>10} {'p_d_a dD%':>10}"
    )
    print("\n" + header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.circuit:12s} {row.baseline_power * 1e6:11.2f}"
            f" {row.baseline_delay * 1e12:11.1f}"
            f" {row.power_saving('p_a_d'):+10.2f} {row.delay_overhead('p_a_d'):+10.2f}"
            f" {row.power_saving('p_d_a'):+10.2f} {row.delay_overhead('p_d_a'):+10.2f}"
        )

    summary = figure3_summary(rows)
    print("\nsummary (positive dP% = proposed flow saves power):")
    for scenario, stats in summary.items():
        print(
            f"  {scenario}: avg saving {stats['avg_power_saving']:+.2f}%"
            f" (max {stats['max_power_saving']:+.2f}%,"
            f" min {stats['min_power_saving']:+.2f}%),"
            f" improved {stats['circuits_improved']}/{len(rows)} circuits,"
            f" avg delay overhead {stats['avg_delay_overhead']:+.2f}%"
        )


if __name__ == "__main__":
    main()
