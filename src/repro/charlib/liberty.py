"""Liberty (.lib) writer and parser.

The paper's cell libraries are written in the industry-standard
liberty format so that commercial tools (Design Compiler, PrimeTime)
consume them unchanged.  This module produces real liberty text for
our characterized libraries and parses it back — the round trip is the
compatibility proof, and the parser doubles as the entry point for
externally supplied libraries.

Unit conventions (declared in the written file):
``time 1ns | capacitance 1pF | voltage 1V | leakage power 1nW``;
internal (energy) tables are written in ``fJ`` per event.
"""

from __future__ import annotations

import re
from typing import Iterator

from .nldm import Library, LibertyCell, NLDMTable, TimingArc

_TIME_SCALE = 1e9  # s -> ns
_CAP_SCALE = 1e12  # F -> pF
_LEAK_SCALE = 1e9  # W -> nW
_ENERGY_SCALE = 1e15  # J -> fJ


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def _fmt_floats(values, scale: float) -> str:
    return ", ".join(f"{v * scale:.6g}" for v in values)


def _write_table(name: str, table: NLDMTable, scale: float, indent: str) -> list[str]:
    lines = [f"{indent}{name} (tbl_7x7) {{"]
    lines.append(f'{indent}  index_1 ("{_fmt_floats(table.slews, _TIME_SCALE)}");')
    lines.append(f'{indent}  index_2 ("{_fmt_floats(table.loads, _CAP_SCALE)}");')
    lines.append(f"{indent}  values ( \\")
    for i, row in enumerate(table.values):
        terminator = " \\" if i < len(table.values) - 1 else ""
        lines.append(f'{indent}    "{_fmt_floats(row, scale)}"{"," if terminator else ""}{terminator}')
    lines.append(f"{indent}  );")
    lines.append(f"{indent}}}")
    return lines


def _state_to_when(state: str) -> str:
    """Convert ``"A=0 B=1"`` into the liberty when-string ``"!A&B"``."""
    terms = []
    for assign in state.split():
        pin, value = assign.split("=")
        terms.append(pin if value == "1" else f"!{pin}")
    return "&".join(terms)


def _when_to_state(when: str) -> str:
    """Inverse of :func:`_state_to_when`."""
    terms = []
    for token in when.split("&"):
        token = token.strip()
        if token.startswith("!"):
            terms.append(f"{token[1:]}=0")
        else:
            terms.append(f"{token}=1")
    return " ".join(terms)


def write_liberty(library: Library) -> str:
    """Render a :class:`Library` as liberty text."""
    out: list[str] = []
    out.append(f"library ({library.name}) {{")
    out.append('  delay_model : table_lookup;')
    out.append('  time_unit : "1ns";')
    out.append('  voltage_unit : "1V";')
    out.append('  current_unit : "1mA";')
    out.append('  leakage_power_unit : "1nW";')
    out.append("  capacitive_load_unit (1, pf);")
    out.append(f"  nom_temperature : {library.temperature:g};")
    out.append(f"  nom_voltage : {library.vdd:g};")
    out.append("  operating_conditions (typical) {")
    out.append(f"    temperature : {library.temperature:g};")
    out.append(f"    voltage : {library.vdd:g};")
    out.append("  }")
    out.append("  default_operating_conditions : typical;")

    for cell in library.cells.values():
        out.extend(_write_cell(cell))
    out.append("}")
    return "\n".join(out) + "\n"


def _write_cell(cell: LibertyCell) -> list[str]:
    lines = [f"  cell ({cell.name}) {{"]
    if cell.degraded_arcs:
        arcs = ", ".join(cell.degraded_arcs)
        lines.append(f"    /* degraded arcs (analytic fallback): {arcs} */")
    lines.append(f"    area : {cell.area:.6g};")
    if cell.footprint:
        lines.append(f'    cell_footprint : "{cell.footprint}";')
    lines.append(f"    cell_leakage_power : {cell.leakage_average * _LEAK_SCALE:.6g};")
    for state, power in cell.leakage_by_state.items():
        lines.append("    leakage_power () {")
        lines.append(f'      when : "{_state_to_when(state)}";')
        lines.append(f"      value : {power * _LEAK_SCALE:.6g};")
        lines.append("    }")
    if cell.is_sequential:
        lines.append("    ff (IQ, IQN) {")
        lines.append('      next_state : "D";')
        lines.append(f'      clocked_on : "{cell.clock_pin}";')
        lines.append("    }")
    pins = list(cell.input_pins)
    if cell.clock_pin and cell.clock_pin not in pins:
        pins.append(cell.clock_pin)
    for pin in pins:
        lines.append(f"    pin ({pin}) {{")
        lines.append("      direction : input;")
        if cell.clock_pin == pin:
            lines.append("      clock : true;")
        lines.append(
            f"      capacitance : {cell.input_caps.get(pin, 0.0) * _CAP_SCALE:.6g};"
        )
        for constraint in cell.constraints:
            if constraint.constrained_pin != pin:
                continue
            lines.append("      timing () {")
            lines.append(f'        related_pin : "{constraint.related_pin}";')
            lines.append(f"        timing_type : {constraint.timing_type};")
            for name, table in (
                ("rise_constraint", constraint.rise_constraint),
                ("fall_constraint", constraint.fall_constraint),
            ):
                lines.extend(_write_table(name, table, _TIME_SCALE, "        "))
            lines.append("      }")
        lines.append("    }")
    for pin in cell.output_pins:
        lines.append(f"    pin ({pin}) {{")
        lines.append("      direction : output;")
        if pin in cell.functions:
            lines.append(f'      function : "{cell.functions[pin]}";')
        elif cell.is_sequential:
            lines.append('      function : "IQ";')
        for arc in cell.arcs_to(pin):
            lines.append("      timing () {")
            lines.append(f'        related_pin : "{arc.related_pin}";')
            lines.append(f"        timing_sense : {arc.timing_sense};")
            if arc.timing_type != "combinational":
                lines.append(f"        timing_type : {arc.timing_type};")
            for name, table in (
                ("cell_rise", arc.cell_rise),
                ("cell_fall", arc.cell_fall),
                ("rise_transition", arc.rise_transition),
                ("fall_transition", arc.fall_transition),
            ):
                lines.extend(_write_table(name, table, _TIME_SCALE, "        "))
            lines.append("      }")
            lines.append("      internal_power () {")
            lines.append(f'        related_pin : "{arc.related_pin}";')
            for name, table in (
                ("rise_power", arc.rise_power),
                ("fall_power", arc.fall_power),
            ):
                lines.extend(_write_table(name, table, _ENERGY_SCALE, "        "))
            lines.append("      }")
        lines.append("    }")
    lines.append("  }")
    return lines


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
class _Group:
    """Generic parsed liberty group: ``name (args) { attrs, groups }``."""

    def __init__(self, kind: str, args: list[str]):
        self.kind = kind
        self.args = args
        self.attributes: dict[str, str] = {}
        self.complex_attributes: list[tuple[str, list[str]]] = []
        self.groups: list["_Group"] = []

    def first(self, kind: str) -> "_Group | None":
        for group in self.groups:
            if group.kind == kind:
                return group
        return None

    def all(self, kind: str) -> list["_Group"]:
        return [g for g in self.groups if g.kind == kind]


_TOKEN_RE = re.compile(
    r'"(?:[^"\\]|\\.)*"'  # quoted string
    r"|[A-Za-z_][\w.]*"  # identifier
    r"|[-+]?[\d.]+(?:[eE][-+]?\d+)?"  # number
    r"|[{}();:,]"
)


def _tokenize(text: str) -> Iterator[str]:
    # Strip comments and line continuations.
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    text = text.replace("\\\n", " ")
    for match in _TOKEN_RE.finditer(text):
        yield match.group(0)


def _parse_args(tokens: list[str], pos: int) -> tuple[list[str], int]:
    """Parse a parenthesized argument list starting at ``tokens[pos]``."""
    args: list[str] = []
    if pos < len(tokens) and tokens[pos] == "(":
        pos += 1
        while tokens[pos] != ")":
            if tokens[pos] != ",":
                args.append(tokens[pos].strip('"'))
            pos += 1
        pos += 1
    return args, pos


def _parse_body(tokens: list[str], pos: int, group: _Group) -> int:
    """Parse ``{ ... }`` into ``group``; returns position past '}'."""
    if tokens[pos] != "{":
        raise ValueError(f"expected '{{' at token {pos}, got {tokens[pos]!r}")
    pos += 1
    while tokens[pos] != "}":
        name = tokens[pos]
        if tokens[pos + 1] == ":":
            # Simple attribute: name : value ;
            value_tokens = []
            pos += 2
            while tokens[pos] != ";":
                value_tokens.append(tokens[pos].strip('"'))
                pos += 1
            group.attributes[name] = " ".join(value_tokens)
            pos += 1  # skip ';'
        elif tokens[pos + 1] == "(":
            args, pos = _parse_args(tokens, pos + 1)
            if pos < len(tokens) and tokens[pos] == "{":
                sub = _Group(name, args)
                pos = _parse_body(tokens, pos, sub)
                group.groups.append(sub)
            else:
                group.complex_attributes.append((name, args))
                if pos < len(tokens) and tokens[pos] == ";":
                    pos += 1
        else:
            raise ValueError(f"unexpected token {tokens[pos + 1]!r} after {name!r}")
    return pos + 1


def _parse_root(text: str) -> _Group:
    tokens = list(_tokenize(text))
    if not tokens or tokens[0] != "library":
        raise ValueError("not a liberty file: missing 'library' group")
    args, pos = _parse_args(tokens, 1)
    group = _Group("library", args)
    _parse_body(tokens, pos, group)
    return group


def _floats(text: str) -> tuple[float, ...]:
    return tuple(float(x) for x in re.split(r"[,\s]+", text.strip()) if x)


def _read_table(group: _Group, scale: float) -> NLDMTable:
    index_1 = index_2 = None
    rows: list[tuple[float, ...]] = []
    for name, args in group.complex_attributes:
        joined = " ".join(args)
        if name == "index_1":
            index_1 = _floats(joined)
        elif name == "index_2":
            index_2 = _floats(joined)
        elif name == "values":
            rows = [tuple(v / scale for v in _floats(arg)) for arg in args]
    if index_1 is None or index_2 is None or not rows:
        raise ValueError(f"incomplete NLDM table in group {group.kind}")
    slews = tuple(v / _TIME_SCALE for v in index_1)
    loads = tuple(v / _CAP_SCALE for v in index_2)
    return NLDMTable(slews, loads, tuple(rows))


def parse_liberty(text: str) -> Library:
    """Parse liberty text back into a :class:`Library`."""
    root = _parse_root(text)
    conditions = root.first("operating_conditions")
    temperature = float(
        (conditions.attributes.get("temperature") if conditions else None)
        or root.attributes.get("nom_temperature", "300")
    )
    vdd = float(
        (conditions.attributes.get("voltage") if conditions else None)
        or root.attributes.get("nom_voltage", "0.7")
    )
    library = Library(name=root.args[0] if root.args else "parsed", temperature=temperature, vdd=vdd)

    for cell_group in root.all("cell"):
        library.add(_read_cell(cell_group))
    return library


def _read_cell(group: _Group) -> LibertyCell:
    name = group.args[0]
    area = float(group.attributes.get("area", "0"))
    footprint = group.attributes.get("cell_footprint", "").strip('"')

    input_pins: list[str] = []
    output_pins: list[str] = []
    input_caps: dict[str, float] = {}
    functions: dict[str, str] = {}
    clock_pin = None
    arcs: list[TimingArc] = []

    leakage_by_state: dict[str, float] = {}
    for leak in group.all("leakage_power"):
        when = leak.attributes.get("when", "")
        value = float(leak.attributes.get("value", "0")) / _LEAK_SCALE
        leakage_by_state[_when_to_state(when)] = value

    is_sequential = group.first("ff") is not None

    constraints: list = []
    for pin_group in group.all("pin"):
        pin_name = pin_group.args[0]
        direction = pin_group.attributes.get("direction", "input")
        if direction == "input":
            if pin_group.attributes.get("clock", "false") == "true":
                clock_pin = pin_name
            else:
                input_pins.append(pin_name)
            input_caps[pin_name] = (
                float(pin_group.attributes.get("capacitance", "0")) / _CAP_SCALE
            )
            for timing in pin_group.all("timing"):
                timing_type = timing.attributes.get("timing_type", "")
                if not timing_type.startswith(("setup", "hold")):
                    continue
                tables = {g.kind: g for g in timing.groups}
                from .nldm import ConstraintArc

                constraints.append(
                    ConstraintArc(
                        constrained_pin=pin_name,
                        related_pin=timing.attributes.get("related_pin", "CLK"),
                        timing_type=timing_type,
                        rise_constraint=_read_table(tables["rise_constraint"], _TIME_SCALE),
                        fall_constraint=_read_table(tables["fall_constraint"], _TIME_SCALE),
                    )
                )
        else:
            output_pins.append(pin_name)
            function = pin_group.attributes.get("function")
            if function and function != "IQ":
                functions[pin_name] = function
            power_groups = {
                g.attributes.get("related_pin", ""): g
                for g in pin_group.all("internal_power")
            }
            for timing in pin_group.all("timing"):
                related = timing.attributes.get("related_pin", "")
                power = power_groups.get(related)
                tables = {g.kind: g for g in timing.groups}
                power_tables = {g.kind: g for g in (power.groups if power else [])}
                arcs.append(
                    TimingArc(
                        related_pin=related,
                        output_pin=pin_name,
                        timing_sense=timing.attributes.get("timing_sense", "non_unate"),
                        timing_type=timing.attributes.get("timing_type", "combinational"),
                        cell_rise=_read_table(tables["cell_rise"], _TIME_SCALE),
                        cell_fall=_read_table(tables["cell_fall"], _TIME_SCALE),
                        rise_transition=_read_table(tables["rise_transition"], _TIME_SCALE),
                        fall_transition=_read_table(tables["fall_transition"], _TIME_SCALE),
                        rise_power=_read_table(power_tables["rise_power"], _ENERGY_SCALE),
                        fall_power=_read_table(power_tables["fall_power"], _ENERGY_SCALE),
                    )
                )

    cell = LibertyCell(
        name=name,
        area=area,
        input_pins=tuple(input_pins),
        output_pins=tuple(output_pins),
        functions=functions,
        truth_tables={},
        input_caps=input_caps,
        leakage_by_state=leakage_by_state,
        arcs=arcs,
        constraints=constraints,
        is_sequential=is_sequential,
        clock_pin=clock_pin,
        footprint=footprint,
    )
    _rebuild_truth_tables(cell)
    return cell


def _rebuild_truth_tables(cell: LibertyCell) -> None:
    """Recompute packed truth tables from parsed function strings."""
    from ..pdk.boolexpr import truth_table as expr_truth_table
    from .function_parser import parse_function

    for out, function in cell.functions.items():
        try:
            expr = parse_function(function)
        except ValueError:
            continue
        names = list(cell.input_pins)
        if all(v in names for v in expr.variables()):
            cell.truth_tables[out] = expr_truth_table(expr, names)
