"""Analytic (effective-current) characterization backend.

The paper characterizes 200 cells x 7x7 conditions x multiple arcs with
more than 10^6 SPICE simulations on a compute farm.  A pure-Python
transient simulator cannot absorb that budget, so this backend plays
the role of SiliconSmart's fast characterization mode: every current,
capacitance, and leakage figure is drawn from the *same cryogenic
compact model* the SPICE engine uses, but cell timing is computed with
the effective-current / RC method instead of full transient solves:

* stage resistance ``R_eff = V_dd / (2 I_eff)`` with
  ``I_eff = (I_d(V_dd, V_dd) + I_d(V_dd, V_dd/2)) / 2`` — series
  stacks are fin-upsized by their depth at netlist generation, so the
  single-device current of the stage's drive size is representative,
* stage delay ``ln 2 * R_eff * C_out`` plus an input-slew penalty,
* output transition ``2.31 * R_eff * C_out`` (20/80 RC, rescaled to
  full swing),
* internal energy = internal-node charge + a short-circuit term
  proportional to the input slew and the stage's drive current,
* leakage per input state from OFF-network path enumeration with a
  physically solved series-stack suppression factor.

The SPICE backend (:mod:`repro.charlib.spice_char`) cross-validates
this model on a cell subset; the full-library runs behind Fig. 2 use
this backend at both 300 K and 10 K.
"""

from __future__ import annotations

import math

from ..device.bsimcmg import CryoFinFET
from ..pdk.boolexpr import And, Expr, Lit, Or
from ..pdk.cells import CellTemplate, Stage
from ..pdk.technology import Technology
from ..resilience import faults
from .nldm import LibertyCell, NLDMTable, TimingArc

LN2 = math.log(2.0)
#: 20/80 transition of an RC node, rescaled to full swing.
SLEW_FACTOR = math.log(4.0) / 0.6
#: Fraction of the input slew added to the first-stage delay.
SLEW_DELAY_COEFF = 0.18
#: Short-circuit energy coefficient (fraction of I_eff * slew * V_dd).
SC_COEFF = 0.05
#: Extra fixed pin capacitance (wiring/diffusion) per pin [F].
PIN_WIRE_CAP = 2.0e-17


def _pdn_paths(expr: Expr) -> list[list[str]]:
    """All series paths (gate-name lists) through a pull-down network."""
    if isinstance(expr, Lit):
        return [[expr.name]]
    if isinstance(expr, And):  # series
        return [a + b for a in _pdn_paths(expr.left) for b in _pdn_paths(expr.right)]
    if isinstance(expr, Or):  # parallel
        return _pdn_paths(expr.left) + _pdn_paths(expr.right)
    raise TypeError(f"unexpected node {expr!r}")


def _pun_paths(expr: Expr) -> list[list[str]]:
    """All series paths through the dual pull-up network."""
    if isinstance(expr, Lit):
        return [[expr.name]]
    if isinstance(expr, And):  # parallel in the dual
        return _pun_paths(expr.left) + _pun_paths(expr.right)
    if isinstance(expr, Or):  # series in the dual
        return [a + b for a in _pun_paths(expr.left) for b in _pun_paths(expr.right)]
    raise TypeError(f"unexpected node {expr!r}")


def _literal_counts(expr: Expr) -> dict[str, int]:
    """Occurrences of each gate node in a network expression."""
    counts: dict[str, int] = {}

    def walk(node: Expr) -> None:
        if isinstance(node, Lit):
            counts[node.name] = counts.get(node.name, 0) + 1
            return
        if isinstance(node, (And, Or)):
            walk(node.left)
            walk(node.right)
            return
        raise TypeError(f"unexpected node {node!r}")

    walk(expr)
    return counts


class AnalyticCharacterizer:
    """Characterizes cell templates at one temperature corner."""

    def __init__(self, tech: Technology, temperature_k: float):
        self.tech = tech
        self.temperature_k = temperature_k
        self._n1 = tech.nfet_device(1)
        self._p1 = tech.pfet_device(1)
        self._stack_penalty = {
            "n": self._solve_stack_penalty(self._n1, sign=1.0),
            "p": self._solve_stack_penalty(self._p1, sign=-1.0),
        }
        # Per-corner caches: every table point re-uses these.
        self._ieff_n1 = self._ieff(self._n1)
        self._ieff_p1 = self._ieff(self._p1)
        self._gate_cap_n1 = float(self._n1.gate_capacitance(temperature_k=temperature_k))
        self._gate_cap_p1 = float(self._p1.gate_capacitance(temperature_k=temperature_k))
        self._node_load_cache: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # Device-derived primitives
    # ------------------------------------------------------------------
    def _ieff(self, device: CryoFinFET) -> float:
        """Effective switching current [A] of a device (per its fins)."""
        vdd = self.tech.vdd
        sign = 1.0 if device.params.polarity == "n" else -1.0
        i_sat = abs(float(device.ids(sign * vdd, sign * vdd, self.temperature_k)))
        i_mid = abs(float(device.ids(sign * vdd, sign * vdd / 2.0, self.temperature_k)))
        return 0.5 * (i_sat + i_mid)

    def resistance_n(self, nfin: int) -> float:
        """Pull-down effective resistance [ohm] at ``nfin`` fins."""
        return self.tech.vdd / (2.0 * self._ieff_n1 * nfin)

    def resistance_p(self, nfin: int) -> float:
        """Pull-up effective resistance [ohm] at ``nfin`` fins."""
        return self.tech.vdd / (2.0 * self._ieff_p1 * nfin)

    def gate_cap(self, polarity: str, nfin: int) -> float:
        """Gate capacitance [F] of a device at this temperature."""
        unit = self._gate_cap_n1 if polarity == "n" else self._gate_cap_p1
        return unit * nfin

    def off_current(self, polarity: str, nfin: int) -> float:
        """Single-device OFF current [A]."""
        device = self._n1 if polarity == "n" else self._p1
        return device.off_current(self.tech.vdd, self.temperature_k) * nfin

    def _solve_stack_penalty(self, device: CryoFinFET, sign: float) -> float:
        """Leakage suppression factor of a 2-high OFF stack.

        Solves the intermediate-node voltage where the bottom device
        (V_gs = 0, V_ds = v_x) and the top device (V_gs = -v_x,
        V_ds = V_dd - v_x) carry equal current, then returns
        ``I_off(single) / I_off(stack)``.
        """
        vdd = self.tech.vdd
        t = self.temperature_k

        def mismatch(vx: float) -> float:
            i_bottom = abs(float(device.ids(0.0 * sign, sign * vx, t)))
            i_top = abs(float(device.ids(-sign * vx, sign * (vdd - vx), t)))
            return i_bottom - i_top

        lo, hi = 1e-6, vdd / 2.0
        if mismatch(lo) * mismatch(hi) > 0:
            return 1.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if mismatch(lo) * mismatch(mid) <= 0:
                hi = mid
            else:
                lo = mid
        vx = 0.5 * (lo + hi)
        i_single = device.off_current(vdd, t)
        i_stack = abs(float(device.ids(0.0, sign * vx, t)))
        if i_stack <= 0.0:
            return 1.0
        return max(1.0, i_single / i_stack)

    # ------------------------------------------------------------------
    # Cell structure helpers
    # ------------------------------------------------------------------
    def _stage_fins(self, stage: Stage) -> tuple[int, int]:
        """(n_fins, p_fins) of the stage's drive devices."""
        return stage.drive_fins, self.tech.pfin_for(stage.drive_fins)

    def _stage_input_cap(self, stage: Stage, node: str) -> float:
        """Gate capacitance stage ``stage`` presents to ``node``."""
        counts = _literal_counts(stage.pull_down)
        occurrences = counts.get(node, 0)
        if occurrences == 0:
            return 0.0
        # Series devices are depth-upsized; approximate the per-gate
        # load with the stack-aware fin counts used at netlist time.
        depth_n = max(len(p) for p in _pdn_paths(stage.pull_down))
        depth_p = max(len(p) for p in _pun_paths(stage.pull_down))
        nfin_n = stage.drive_fins * depth_n
        nfin_p = self.tech.pfin_for(stage.drive_fins) * depth_p
        per_gate = self.gate_cap("n", nfin_n) + self.gate_cap("p", nfin_p)
        return occurrences * per_gate

    def _node_load(self, cell: CellTemplate, node: str) -> float:
        """Intrinsic capacitive load on a node (no external load)."""
        key = (cell.name, node)
        cached = self._node_load_cache.get(key)
        if cached is not None:
            return cached
        total = 0.0
        driver = None
        for stage in cell.stages:
            if stage.output == node:
                driver = stage
            total += self._stage_input_cap(stage, node)
        if driver is not None:
            total += self.tech.output_wire_cap_per_fin * driver.drive_fins * 4.0
            # Drain diffusion of the driver itself.
            nfin_n, nfin_p = self._stage_fins(driver)
            total += 0.3 * (self.gate_cap("n", nfin_n) + self.gate_cap("p", nfin_p))
        self._node_load_cache[key] = total
        return total

    def _paths_to_output(self, cell: CellTemplate, pin: str, output: str) -> list[list[Stage]]:
        """All stage paths from an input pin to an output stage."""
        by_output = {stage.output: stage for stage in cell.stages}
        target = by_output[output]
        paths: list[list[Stage]] = []

        def extend(stage: Stage, suffix: list[Stage], visited: set[str]) -> None:
            refs = set(stage.pull_down.variables())
            if pin in refs:
                paths.append([stage] + suffix)
            for ref in refs:
                if ref in by_output and ref not in visited:
                    extend(by_output[ref], [stage] + suffix, visited | {ref})

        extend(target, [], {output})
        return paths

    # ------------------------------------------------------------------
    # Timing/power along a path
    # ------------------------------------------------------------------
    def _path_metrics(
        self,
        cell: CellTemplate,
        path: list[Stage],
        output_rising: bool,
        input_slew: float,
        external_load: float,
    ) -> tuple[float, float, float]:
        """(delay, output slew, internal energy) along one stage path.

        Every stage is inverting, so transition directions alternate
        backwards from the requested output direction.
        """
        n_stages = len(path)
        delay = 0.0
        slew = input_slew
        energy = 0.0
        for i, stage in enumerate(path):
            # Direction of this stage's output.
            inversions_after = n_stages - 1 - i
            rising = output_rising if inversions_after % 2 == 0 else not output_rising
            nfin_n, nfin_p = self._stage_fins(stage)
            resistance = self.resistance_p(nfin_p) if rising else self.resistance_n(nfin_n)
            load = self._node_load(cell, stage.output)
            if i == n_stages - 1:
                load += external_load
            delay += LN2 * resistance * load + SLEW_DELAY_COEFF * slew
            # Short-circuit energy while the stage input ramps.
            ieff = (self._ieff_p1 * nfin_p) if rising else (self._ieff_n1 * nfin_n)
            energy += SC_COEFF * ieff * slew * self.tech.vdd
            # Internal node charge (not the external load; that's
            # counted as switching power by the signoff tool).
            internal_c = self._node_load(cell, stage.output)
            energy += 0.5 * internal_c * self.tech.vdd**2
            slew = SLEW_FACTOR * resistance * load
        return delay, slew, energy

    # ------------------------------------------------------------------
    # Arc sense
    # ------------------------------------------------------------------
    @staticmethod
    def _arc_sense(cell: CellTemplate, pin: str, output: str) -> str:
        table = cell.output_truth_table(output)
        pin_index = cell.inputs.index(pin)
        n = len(cell.inputs)
        positive = negative = False
        for i in range(1 << n):
            if (i >> pin_index) & 1:
                continue
            lo = (table >> i) & 1
            hi = (table >> (i | (1 << pin_index))) & 1
            if lo < hi:
                positive = True
            elif lo > hi:
                negative = True
        if positive and negative:
            return "non_unate"
        if negative:
            return "negative_unate"
        return "positive_unate"

    # ------------------------------------------------------------------
    # Leakage
    # ------------------------------------------------------------------
    def _stage_leakage(self, stage: Stage, states: dict[str, bool]) -> float:
        """Leakage [W] of one stage given steady node states."""
        output_high = states[stage.output]
        nfin_n, nfin_p = self._stage_fins(stage)
        depth_n = max(len(p) for p in _pdn_paths(stage.pull_down))
        depth_p = max(len(p) for p in _pun_paths(stage.pull_down))
        total = 0.0
        if output_high:
            # PDN is off: every series path leaks with stack suppression.
            penalty = self._stack_penalty["n"]
            i_unit = self.off_current("n", nfin_n * depth_n)
            for path in _pdn_paths(stage.pull_down):
                off_count = sum(1 for gate in path if not states[gate])
                if off_count == 0:
                    continue  # conducting path; state machine handles it
                total += i_unit / (penalty ** (off_count - 1))
        else:
            penalty = self._stack_penalty["p"]
            i_unit = self.off_current("p", nfin_p * depth_p)
            for path in _pun_paths(stage.pull_down):
                off_count = sum(1 for gate in path if states[gate])
                if off_count == 0:
                    continue
                total += i_unit / (penalty ** (off_count - 1))
        return total * self.tech.vdd

    def _cell_leakage(self, cell: CellTemplate) -> dict[str, float]:
        """Leakage power per input state."""
        pins = list(cell.inputs)
        if cell.clock_pin:
            pins = pins + [cell.clock_pin]
        if len(pins) > 10:
            raise ValueError(f"cell {cell.name} has too many pins for state enumeration")
        result: dict[str, float] = {}
        for i in range(1 << len(pins)):
            inputs = {pin: bool((i >> j) & 1) for j, pin in enumerate(pins)}
            states = cell.node_states(inputs)
            power = sum(self._stage_leakage(stage, states) for stage in cell.stages)
            key = " ".join(f"{pin}={int(inputs[pin])}" for pin in pins)
            result[key] = power
        return result

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def input_capacitance(self, cell: CellTemplate, pin: str) -> float:
        total = PIN_WIRE_CAP
        for stage in cell.stages:
            total += self._stage_input_cap(stage, pin)
        return total

    def characterize_cell(
        self,
        cell: CellTemplate,
        slews: tuple[float, ...] | None = None,
        loads: tuple[float, ...] | None = None,
    ) -> LibertyCell:
        """Characterize one cell into a :class:`LibertyCell`."""
        slews = slews or self.tech.slew_grid
        loads = loads or self.tech.load_grid
        pins = list(cell.inputs)
        input_caps = {pin: self.input_capacitance(cell, pin) for pin in pins}
        if cell.clock_pin:
            input_caps[cell.clock_pin] = self.input_capacitance(cell, cell.clock_pin)

        functions = {}
        truth_tables = {}
        if not cell.is_sequential:
            for out in cell.outputs:
                functions[out] = cell.output_function(out).to_liberty()
                truth_tables[out] = cell.output_truth_table(out)

        result = LibertyCell(
            name=cell.name,
            area=cell.area_um2(self.tech),
            input_pins=tuple(pins),
            output_pins=cell.outputs,
            functions=functions,
            truth_tables=truth_tables,
            input_caps=input_caps,
            leakage_by_state=self._cell_leakage(cell),
            is_sequential=cell.is_sequential,
            clock_pin=cell.clock_pin,
            footprint=cell.footprint,
        )

        if cell.is_sequential:
            self._add_sequential_arcs(cell, result, slews, loads)
            self._add_constraint_arcs(cell, result, slews)
        else:
            self._add_combinational_arcs(cell, result, slews, loads)
        return result

    def _add_constraint_arcs(self, cell, result, slews) -> None:
        """Setup/hold characterization of the data (and control) pins.

        The master latch must settle before the capturing edge: the
        setup time is modeled as the master-loop settle time (three
        internal stage delays) plus a data-slew-proportional term,
        reduced slightly by a slower clock edge; hold is the short
        race window of the input transmission stage.  Tables are
        indexed (data slew, clock slew) per the liberty convention.
        """
        from .nldm import ConstraintArc

        stage_r = self.resistance_n(1)
        stage_c = self._node_load_internal_estimate(cell)
        stage_delay = LN2 * stage_r * stage_c

        def setup_fn(data_slew: float, clock_slew: float) -> float:
            return 3.0 * stage_delay + 0.6 * data_slew - 0.15 * clock_slew + 1e-12

        def hold_fn(data_slew: float, clock_slew: float) -> float:
            value = stage_delay + 0.3 * clock_slew - 0.4 * data_slew
            return max(value, 0.0)

        for pin in cell.inputs:
            for timing_type, fn in (("setup_rising", setup_fn), ("hold_rising", hold_fn)):
                table = NLDMTable.from_function(slews, slews, fn)
                result.constraints.append(
                    ConstraintArc(
                        constrained_pin=pin,
                        related_pin=cell.clock_pin or "CLK",
                        timing_type=timing_type,
                        rise_constraint=table,
                        fall_constraint=table,
                    )
                )

    def _node_load_internal_estimate(self, cell) -> float:
        """Typical internal-node load of the cell's latch stages [F]."""
        loads = [
            self._node_load(cell, stage.output)
            for stage in cell.stages
            if stage.output not in cell.outputs
        ]
        if not loads:
            return self.gate_cap("n", 1) + self.gate_cap("p", 2)
        return sum(loads) / len(loads)

    def _add_combinational_arcs(self, cell, result, slews, loads) -> None:
        for out in cell.outputs:
            support = self._support(cell, out)
            for pin in cell.inputs:
                if pin not in support:
                    continue
                paths = self._paths_to_output(cell, pin, out)
                if not paths:
                    continue
                sense = self._arc_sense(cell, pin, out)

                def table(kind: str, rising: bool):
                    def fn(slew: float, load: float) -> float:
                        best_delay = 0.0
                        best_slew = 0.0
                        best_energy = 0.0
                        for path in paths:
                            d, s, e = self._path_metrics(cell, path, rising, slew, load)
                            if d > best_delay:
                                best_delay, best_slew, best_energy = d, s, e
                        if kind == "delay":
                            return faults.corrupt_value("charlib.measure", best_delay)
                        if kind == "slew":
                            return best_slew
                        return best_energy

                    return NLDMTable.from_function(slews, loads, fn)

                result.arcs.append(
                    TimingArc(
                        related_pin=pin,
                        output_pin=out,
                        timing_sense=sense,
                        cell_rise=table("delay", True),
                        cell_fall=table("delay", False),
                        rise_transition=table("slew", True),
                        fall_transition=table("slew", False),
                        rise_power=table("energy", True),
                        fall_power=table("energy", False),
                    )
                )

    def _add_sequential_arcs(self, cell, result, slews, loads) -> None:
        """Clock-to-Q arc approximated through the output stage chain."""
        out = cell.outputs[0]
        by_output = {s.output: s for s in cell.stages}
        # Output chain: the stage driving Q plus its driver, plus a
        # fixed latch-internal offset of two typical stages.
        path = [by_output[out]]
        refs = path[0].pull_down.variables()
        if refs and refs[0] in by_output:
            path.insert(0, by_output[refs[0]])
        offset_stage = self.resistance_n(1) * self._node_load(cell, path[0].output)

        def table(kind: str, rising: bool):
            def fn(slew: float, load: float) -> float:
                d, s, e = self._path_metrics(cell, path, rising, slew, load)
                if kind == "delay":
                    return d + 2.0 * LN2 * offset_stage
                if kind == "slew":
                    return s
                return e + 4.0 * 0.5 * self._node_load(cell, path[0].output) * self.tech.vdd**2

            return NLDMTable.from_function(slews, loads, fn)

        result.arcs.append(
            TimingArc(
                related_pin=cell.clock_pin or "CLK",
                output_pin=out,
                timing_sense="non_unate",
                cell_rise=table("delay", True),
                cell_fall=table("delay", False),
                rise_transition=table("slew", True),
                fall_transition=table("slew", False),
                rise_power=table("energy", True),
                fall_power=table("energy", False),
                timing_type="rising_edge",
            )
        )

    @staticmethod
    def _support(cell: CellTemplate, output: str) -> set[str]:
        """Input pins the output functionally depends on."""
        table = cell.output_truth_table(output)
        n = len(cell.inputs)
        support = set()
        for j, pin in enumerate(cell.inputs):
            for i in range(1 << n):
                if (i >> j) & 1:
                    continue
                if ((table >> i) & 1) != ((table >> (i | (1 << j))) & 1):
                    support.add(pin)
                    break
        return support
