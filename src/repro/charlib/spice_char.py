"""Transistor-level (SPICE) characterization backend.

This is the reference backend: it builds the cell's transistor netlist
from the PDK templates and runs full Newton/trapezoidal transients
through :mod:`repro.spice`, measuring delay, output transition, and
supply energy exactly the way SiliconSmart drives a SPICE engine.

It is orders of magnitude slower than the analytic backend, so the
full-library characterization uses the analytic model while this
backend provides:

* ground truth for cross-validation tests (same temperature trends,
  bounded delay-model error),
* a drop-in ``backend="spice"`` option for small cell subsets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import obs
from ..pdk.cells import CellTemplate
from ..pdk.technology import Technology
from ..resilience import faults
from ..resilience.errors import MeasurementError
from ..spice.batch import BatchedSimulator, TrajectorySpec
from ..spice.engine import ConvergenceError, Simulator, TransientResult
from ..spice.kernels import SimulatorSettings
from ..spice.analysis import propagation_delay, supply_energy, transition_time
from ..spice.netlist import Circuit
from ..spice.waveforms import DC, ramp
from .nldm import LibertyCell, NLDMTable, TimingArc
from .analytic import AnalyticCharacterizer

#: Liberty slew thresholds span 20..80 % -> full-swing conversion.
_SLEW_TO_FULL = 1.0 / 0.6


def _instance_label(
    cell: CellTemplate, pin: str, output: str, input_rising: bool,
    slew: float, load: float,
) -> str:
    """Stable per-transient label for fault-injection scoping.

    The serial loop and the trajectory batch both scope their fault
    checks by this label, so each grid point consumes an identical
    deterministic fault stream no matter how the grid is executed —
    the property the fault-differential tests rely on.
    """
    edge = "r" if input_rising else "f"
    return f"{cell.name}:{pin}->{output}:{edge}:{slew!r}:{load!r}"


@dataclass(frozen=True)
class ArcMeasurement:
    """One transient characterization point."""

    delay: float
    output_slew: float
    energy: float


class SpiceCharacterizer:
    """Characterizes cells by transistor-level transient simulation."""

    def __init__(
        self,
        tech: Technology,
        temperature_k: float,
        settings: SimulatorSettings | None = None,
    ):
        self.tech = tech
        self.temperature_k = temperature_k
        #: SPICE engine settings used for every arc transient; the
        #: default picks the kernel from :envvar:`REPRO_KERNEL`
        #: (``batch`` unless overridden — see docs/PERFORMANCE.md).
        self.settings = settings if settings is not None else SimulatorSettings()
        # Sense/sensitization logic is shared with the analytic backend.
        self._analytic = AnalyticCharacterizer(tech, temperature_k)

    # ------------------------------------------------------------------
    def _sensitizing_assignment(
        self, cell: CellTemplate, pin: str, output: str
    ) -> dict[str, bool]:
        """Side-input values under which ``output`` toggles with ``pin``."""
        table = cell.output_truth_table(output)
        pin_index = cell.inputs.index(pin)
        n = len(cell.inputs)
        for i in range(1 << n):
            if (i >> pin_index) & 1:
                continue
            lo = (table >> i) & 1
            hi = (table >> (i | (1 << pin_index))) & 1
            if lo != hi:
                return {
                    name: bool((i >> j) & 1)
                    for j, name in enumerate(cell.inputs)
                    if name != pin
                }
        raise ValueError(f"{cell.name}: output {output} insensitive to {pin}")

    def _arc_stimulus(
        self,
        cell: CellTemplate,
        pin: str,
        output: str,
        input_rising: bool,
        slew: float,
        load: float,
    ) -> tuple[Circuit, float, float, float]:
        """Build one arc transient: ``(circuit, t_edge, t_stop, dt)``.

        ``slew`` is the Liberty transition time of the driving ramp
        (20/80 rescaled); ``load`` the external output capacitance.
        """
        vdd = self.tech.vdd
        sides = self._sensitizing_assignment(cell, pin, output)
        circuit = cell.to_circuit(self.tech, load_caps={output: load})
        for name, value in sides.items():
            circuit.add_vsource(f"v_{name}", name, "0", DC(vdd if value else 0.0))
        t_edge = 5e-11
        full_ramp = slew * _SLEW_TO_FULL
        v_from, v_to = (0.0, vdd) if input_rising else (vdd, 0.0)
        circuit.add_vsource(f"v_{pin}", pin, "0", ramp(t_edge, full_ramp, v_from, v_to))

        # Conservative horizon: stimulus + generous settling.
        t_stop = t_edge + full_ramp + 3e-10 + 200.0 * load
        dt = min(2e-12, full_ramp / 8.0)
        return circuit, t_edge, t_stop, dt

    def _extract(
        self,
        result: TransientResult,
        cell: CellTemplate,
        pin: str,
        output: str,
        input_rising: bool,
        t_edge: float,
    ) -> ArcMeasurement:
        """Measure delay/slew/energy from one arc transient."""
        vdd = self.tech.vdd
        delay = propagation_delay(result, pin, output, vdd, input_rising, after=t_edge * 0.5)
        wave = result.voltage(output)
        output_rising = wave[-1] > wave[0]
        out_slew = transition_time(result, output, vdd, rising=output_rising, after=t_edge * 0.5)
        energy = supply_energy(result, "vdd_supply", vdd, t_start=t_edge * 0.5)
        delay = faults.corrupt_value("charlib.measure", delay)
        if not all(math.isfinite(v) for v in (delay, out_slew, energy)):
            raise MeasurementError(
                f"{cell.name}: non-finite measurement on arc {pin}->{output} "
                f"(delay={delay!r}, slew={out_slew!r}, energy={energy!r})",
                site="charlib.measure",
            )
        return ArcMeasurement(delay=delay, output_slew=out_slew, energy=energy)

    def measure_arc(
        self,
        cell: CellTemplate,
        pin: str,
        output: str,
        input_rising: bool,
        slew: float,
        load: float,
    ) -> ArcMeasurement:
        """Run one transient and extract delay/slew/energy.

        Fault checks run under the grid point's instance scope so the
        serial loop and the trajectory batch consume identical
        per-instance fault streams.
        """
        circuit, t_edge, t_stop, dt = self._arc_stimulus(
            cell, pin, output, input_rising, slew, load
        )
        obs.count(f"charlib.spice.kernel.{self.settings.kernel}")
        with faults.instance_scope(
            _instance_label(cell, pin, output, input_rising, slew, load)
        ):
            result = Simulator(
                circuit, self.temperature_k, settings=self.settings
            ).transient(t_stop, dt)
            return self._extract(result, cell, pin, output, input_rising, t_edge)

    # ------------------------------------------------------------------
    def characterize_cell(
        self,
        cell: CellTemplate,
        slews: tuple[float, ...] | None = None,
        loads: tuple[float, ...] | None = None,
    ) -> LibertyCell:
        """Full characterization via transient sweeps.

        Defaults to a reduced 3x3 grid (the full 7x7 is available by
        passing the technology grids explicitly, at proportional cost).
        Sequential cells are delegated to the analytic backend — their
        feedback loops need initialization sequences that are out of
        scope for the reference backend.

        Graceful degradation: if an arc's transients fail even after
        the Newton retry ladder (or a measurement comes back
        non-finite), that arc falls back to its analytic tables and is
        recorded in :attr:`LibertyCell.degraded_arcs` rather than
        aborting the whole library.
        """
        if cell.is_sequential:
            return self._analytic.characterize_cell(cell, slews, loads)
        slews = slews or self.tech.slew_grid[1::3]
        loads = loads or self.tech.load_grid[1::3]

        analytic_cell = self._analytic.characterize_cell(cell, slews, loads)
        result = LibertyCell(
            name=cell.name,
            area=analytic_cell.area,
            input_pins=analytic_cell.input_pins,
            output_pins=analytic_cell.output_pins,
            functions=analytic_cell.functions,
            truth_tables=analytic_cell.truth_tables,
            input_caps=analytic_cell.input_caps,
            leakage_by_state=analytic_cell.leakage_by_state,
            is_sequential=False,
            clock_pin=None,
            footprint=cell.footprint,
        )

        degraded: list[str] = []
        for template_arc in analytic_cell.arcs:
            pin, out = template_arc.related_pin, template_arc.output_pin
            try:
                arc = self._characterize_arc(cell, template_arc, slews, loads)
            except (ConvergenceError, MeasurementError):
                obs.count("charlib.arc.degraded")
                degraded.append(f"{pin}->{out}")
                arc = template_arc  # analytic fallback tables
            result.arcs.append(arc)
        result.degraded_arcs = tuple(degraded)
        return result

    def _characterize_arc(
        self,
        cell: CellTemplate,
        template_arc: TimingArc,
        slews: tuple[float, ...],
        loads: tuple[float, ...],
    ) -> TimingArc:
        """Measure one arc's full (slew x load) grid by transients.

        Under the ``batch`` kernel the whole grid (every slew x load
        point, both edge directions) is submitted as one trajectory
        batch; the serial per-point loop below is the reference path
        for the ``vector``/``scalar`` kernels.
        """
        if self.settings.kernel == "batch":
            return self._characterize_arc_batched(cell, template_arc, slews, loads)
        pin, out = template_arc.related_pin, template_arc.output_pin
        rise_d, fall_d, rise_s, fall_s, rise_e, fall_e = ([] for _ in range(6))
        for slew in slews:
            rd_row, fd_row, rs_row, fs_row, re_row, fe_row = ([] for _ in range(6))
            for load in loads:
                rising_out = self._measure_for_output_dir(
                    cell, pin, out, True, slew, load, template_arc.timing_sense
                )
                falling_out = self._measure_for_output_dir(
                    cell, pin, out, False, slew, load, template_arc.timing_sense
                )
                rd_row.append(rising_out.delay)
                rs_row.append(rising_out.output_slew)
                re_row.append(max(rising_out.energy, 0.0))
                fd_row.append(falling_out.delay)
                fs_row.append(falling_out.output_slew)
                fe_row.append(max(falling_out.energy, 0.0))
            rise_d.append(tuple(rd_row))
            fall_d.append(tuple(fd_row))
            rise_s.append(tuple(rs_row))
            fall_s.append(tuple(fs_row))
            rise_e.append(tuple(re_row))
            fall_e.append(tuple(fe_row))

        def table(rows):
            return NLDMTable(tuple(slews), tuple(loads), tuple(rows))

        return TimingArc(
            related_pin=pin,
            output_pin=out,
            timing_sense=template_arc.timing_sense,
            cell_rise=table(rise_d),
            cell_fall=table(fall_d),
            rise_transition=table(rise_s),
            fall_transition=table(fall_s),
            rise_power=table(rise_e),
            fall_power=table(fall_e),
        )

    def _characterize_arc_batched(
        self,
        cell: CellTemplate,
        template_arc: TimingArc,
        slews: tuple[float, ...],
        loads: tuple[float, ...],
    ) -> TimingArc:
        """Measure one arc's grid as a single trajectory batch.

        Builds the same 2 x len(slews) x len(loads) transients the
        serial loop would run — in the same order, under the same
        per-instance fault labels — and advances them in lockstep
        through :class:`BatchedSimulator`.  The waveforms (and thus the
        tables) are bit-identical to the serial vector path.
        """
        pin, out = template_arc.related_pin, template_arc.output_pin
        sense = template_arc.timing_sense

        specs: list[TrajectorySpec] = []
        meta: list[tuple[float, bool]] = []  # (t_edge, input_rising)
        for slew in slews:
            for load in loads:
                for output_rising in (True, False):
                    if sense == "negative_unate":
                        input_rising = not output_rising
                    else:
                        input_rising = output_rising
                    circuit, t_edge, t_stop, dt = self._arc_stimulus(
                        cell, pin, out, input_rising, slew, load
                    )
                    specs.append(
                        TrajectorySpec(
                            circuit, t_stop, dt,
                            label=_instance_label(
                                cell, pin, out, input_rising, slew, load
                            ),
                        )
                    )
                    meta.append((t_edge, input_rising))
        obs.count(f"charlib.spice.kernel.{self.settings.kernel}", len(specs))

        results = BatchedSimulator(
            specs, self.temperature_k, settings=self.settings
        ).transient_all()
        measurements: list[ArcMeasurement] = []
        for spec, result, (t_edge, input_rising) in zip(specs, results, meta):
            with faults.instance_scope(spec.label):
                measurements.append(
                    self._extract(result, cell, pin, out, input_rising, t_edge)
                )

        rise_d, fall_d, rise_s, fall_s, rise_e, fall_e = ([] for _ in range(6))
        it = iter(measurements)
        for _slew in slews:
            rd_row, fd_row, rs_row, fs_row, re_row, fe_row = ([] for _ in range(6))
            for _load in loads:
                rising_out = next(it)
                falling_out = next(it)
                rd_row.append(rising_out.delay)
                rs_row.append(rising_out.output_slew)
                re_row.append(max(rising_out.energy, 0.0))
                fd_row.append(falling_out.delay)
                fs_row.append(falling_out.output_slew)
                fe_row.append(max(falling_out.energy, 0.0))
            rise_d.append(tuple(rd_row))
            fall_d.append(tuple(fd_row))
            rise_s.append(tuple(rs_row))
            fall_s.append(tuple(fs_row))
            rise_e.append(tuple(re_row))
            fall_e.append(tuple(fe_row))

        def table(rows):
            return NLDMTable(tuple(slews), tuple(loads), tuple(rows))

        return TimingArc(
            related_pin=pin,
            output_pin=out,
            timing_sense=template_arc.timing_sense,
            cell_rise=table(rise_d),
            cell_fall=table(fall_d),
            rise_transition=table(rise_s),
            fall_transition=table(fall_s),
            rise_power=table(rise_e),
            fall_power=table(fall_e),
        )

    def _measure_for_output_dir(
        self,
        cell: CellTemplate,
        pin: str,
        out: str,
        output_rising: bool,
        slew: float,
        load: float,
        sense: str,
    ) -> ArcMeasurement:
        """Measure with the input direction that produces the requested
        output direction (by the arc's unateness; non-unate arcs use
        the positive path)."""
        if sense == "negative_unate":
            input_rising = not output_rising
        else:
            input_rising = output_rising
        return self.measure_arc(cell, pin, out, input_rising, slew, load)
