"""Parser for Liberty ``function`` expression strings.

Grammar (standard liberty Boolean syntax):

    expr   := term ( ('|' | '+') term )*
    term   := factor ( ('&' | '*') factor )*
    factor := '!' factor | '(' expr ')' | identifier [ "'" ]

Produces :class:`repro.pdk.boolexpr.Expr` trees, so parsed libraries
plug into the same truth-table machinery as generated ones.
"""

from __future__ import annotations

import re

from ..pdk.boolexpr import And, Expr, Lit, Not, Or

_TOKEN_RE = re.compile(r"[A-Za-z_]\w*|[!&|()*+']|\S")


class _Parser:
    def __init__(self, text: str):
        self.tokens = _TOKEN_RE.findall(text)
        self.pos = 0

    def peek(self) -> str | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ValueError("unexpected end of function expression")
        self.pos += 1
        return token

    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while self.peek() in ("|", "+"):
            self.take()
            left = Or(left, self.parse_term())
        return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        # Liberty allows implicit AND by juxtaposition; we require an
        # explicit operator (that is what our writer emits).
        while self.peek() in ("&", "*"):
            self.take()
            left = And(left, self.parse_factor())
        return left

    def parse_factor(self) -> Expr:
        token = self.take()
        if token == "!":
            return Not(self.parse_factor())
        if token == "(":
            inner = self.parse_expr()
            if self.take() != ")":
                raise ValueError("unbalanced parentheses in function expression")
            return self._postfix(inner)
        if re.fullmatch(r"[A-Za-z_]\w*", token):
            return self._postfix(Lit(token))
        raise ValueError(f"unexpected token {token!r} in function expression")

    def _postfix(self, expr: Expr) -> Expr:
        # Postfix apostrophe negation: A' == !A.
        while self.peek() == "'":
            self.take()
            expr = Not(expr)
        return expr


def parse_function(text: str) -> Expr:
    """Parse a liberty function string into an expression tree."""
    text = text.strip().strip('"')
    if not text:
        raise ValueError("empty function expression")
    parser = _Parser(text)
    expr = parser.parse_expr()
    if parser.peek() is not None:
        raise ValueError(f"trailing tokens in function expression: {parser.tokens[parser.pos:]}")
    return expr
