"""Non-linear delay model (NLDM) table structures.

The industry ``liberty`` format stores cell timing and power as 2-D
lookup tables indexed by input slew and output load.  This module
implements those tables with the standard bilinear interpolation (and
clamped extrapolation) that signoff tools apply.

All quantities are SI in memory (seconds, farads, joules, watts); unit
conversion happens only in the Liberty writer/reader.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class NLDMTable:
    """A 2-D lookup table over (input slew, output load).

    ``values[i][j]`` corresponds to ``slews[i]`` and ``loads[j]``.
    """

    slews: tuple[float, ...]
    loads: tuple[float, ...]
    values: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.slews):
            raise ValueError("row count must match slew axis")
        for row in self.values:
            if len(row) != len(self.loads):
                raise ValueError("column count must match load axis")
        if any(b <= a for a, b in zip(self.slews, self.slews[1:])):
            raise ValueError("slew axis must be strictly increasing")
        if any(b <= a for a, b in zip(self.loads, self.loads[1:])):
            raise ValueError("load axis must be strictly increasing")

    @classmethod
    def from_function(cls, slews, loads, fn) -> "NLDMTable":
        """Build a table by evaluating ``fn(slew, load)`` on the grid."""
        values = tuple(
            tuple(float(fn(slew, load)) for load in loads) for slew in slews
        )
        return cls(tuple(float(s) for s in slews), tuple(float(l) for l in loads), values)

    def lookup(self, slew: float, load: float) -> float:
        """Bilinear interpolation with clamped extrapolation."""
        from bisect import bisect_right

        s, l, v = self.slews, self.loads, self.values
        slew = min(max(slew, s[0]), s[-1])
        load = min(max(load, l[0]), l[-1])
        i = min(max(bisect_right(s, slew) - 1, 0), len(s) - 2)
        j = min(max(bisect_right(l, load) - 1, 0), len(l) - 2)
        fs = (slew - s[i]) / (s[i + 1] - s[i])
        fl = (load - l[j]) / (l[j + 1] - l[j])
        return (
            v[i][j] * (1 - fs) * (1 - fl)
            + v[i + 1][j] * fs * (1 - fl)
            + v[i][j + 1] * (1 - fs) * fl
            + v[i + 1][j + 1] * fs * fl
        )

    def max_value(self) -> float:
        return float(np.max(np.asarray(self.values)))

    def min_value(self) -> float:
        return float(np.min(np.asarray(self.values)))

    def mid_value(self) -> float:
        """Value at the center of the characterized grid."""
        mid_s = self.slews[len(self.slews) // 2]
        mid_l = self.loads[len(self.loads) // 2]
        return self.lookup(mid_s, mid_l)


@dataclass(frozen=True)
class TimingArc:
    """One input-pin -> output-pin timing/power arc."""

    related_pin: str
    output_pin: str
    timing_sense: str  # positive_unate / negative_unate / non_unate
    cell_rise: NLDMTable
    cell_fall: NLDMTable
    rise_transition: NLDMTable
    fall_transition: NLDMTable
    #: Internal switching energy per output rise/fall event [J].
    rise_power: NLDMTable
    fall_power: NLDMTable
    #: "combinational" or "rising_edge" (sequential clk->q).
    timing_type: str = "combinational"

    def worst_delay(self, slew: float, load: float) -> float:
        """Max of rise/fall delay at an operating point."""
        return max(self.cell_rise.lookup(slew, load), self.cell_fall.lookup(slew, load))

    def average_energy(self, slew: float, load: float) -> float:
        """Mean of rise/fall internal energy at an operating point."""
        return 0.5 * (
            self.rise_power.lookup(slew, load) + self.fall_power.lookup(slew, load)
        )


@dataclass(frozen=True)
class ConstraintArc:
    """A setup/hold constraint between a data pin and the clock.

    Constraint tables are indexed (data slew, clock slew) — the
    liberty convention for ``setup_rising`` / ``hold_rising`` groups —
    and give the minimum time the data pin must be stable before
    (setup) or after (hold) the active clock edge [s].
    """

    constrained_pin: str
    related_pin: str
    timing_type: str  # setup_rising / hold_rising
    rise_constraint: NLDMTable
    fall_constraint: NLDMTable

    def worst(self, data_slew: float, clock_slew: float) -> float:
        return max(
            self.rise_constraint.lookup(data_slew, clock_slew),
            self.fall_constraint.lookup(data_slew, clock_slew),
        )


@dataclass
class LibertyCell:
    """Characterized standard cell (the Liberty ``cell`` group)."""

    name: str
    area: float
    input_pins: tuple[str, ...]
    output_pins: tuple[str, ...]
    #: Liberty function string per output pin.
    functions: dict[str, str]
    #: Packed truth table per output pin (over ``input_pins`` order).
    truth_tables: dict[str, int]
    #: Input pin capacitance [F].
    input_caps: dict[str, float]
    #: Leakage power [W] per input-state string like "A=0 B=1".
    leakage_by_state: dict[str, float]
    arcs: list[TimingArc] = field(default_factory=list)
    constraints: list[ConstraintArc] = field(default_factory=list)
    is_sequential: bool = False
    clock_pin: str | None = None
    footprint: str = ""
    #: Arcs (``"A->Y"``) whose tables came from a fallback path —
    #: analytic stand-ins for failed SPICE transients, or sanitized
    #: non-finite measurements.  See ``docs/ROBUSTNESS.md``.
    degraded_arcs: tuple[str, ...] = ()

    def constraint(self, constrained_pin: str, timing_type: str) -> ConstraintArc:
        for arc in self.constraints:
            if arc.constrained_pin == constrained_pin and arc.timing_type == timing_type:
                return arc
        raise KeyError(
            f"{self.name}: no {timing_type} constraint on {constrained_pin!r}"
        )

    @property
    def leakage_average(self) -> float:
        """State-averaged leakage power [W]."""
        if not self.leakage_by_state:
            return 0.0
        return sum(self.leakage_by_state.values()) / len(self.leakage_by_state)

    def arcs_to(self, output_pin: str) -> list[TimingArc]:
        return [arc for arc in self.arcs if arc.output_pin == output_pin]

    def arc(self, related_pin: str, output_pin: str) -> TimingArc:
        for candidate in self.arcs:
            if candidate.related_pin == related_pin and candidate.output_pin == output_pin:
                return candidate
        raise KeyError(f"{self.name}: no arc {related_pin} -> {output_pin}")

    def typical_delay(self) -> float:
        """Representative cell delay: worst arc at the grid midpoint [s]."""
        if not self.arcs:
            return 0.0
        mids = []
        for arc in self.arcs:
            mid_s = arc.cell_rise.slews[len(arc.cell_rise.slews) // 2]
            mid_l = arc.cell_rise.loads[len(arc.cell_rise.loads) // 2]
            mids.append(arc.worst_delay(mid_s, mid_l))
        return max(mids)

    def typical_energy(self) -> float:
        """Representative switching energy: mean arc energy at midpoint [J]."""
        if not self.arcs:
            return 0.0
        values = []
        for arc in self.arcs:
            mid_s = arc.rise_power.slews[len(arc.rise_power.slews) // 2]
            mid_l = arc.rise_power.loads[len(arc.rise_power.loads) // 2]
            values.append(arc.average_energy(mid_s, mid_l))
        return float(np.mean(values))


@dataclass
class Library:
    """A characterized standard-cell library at one (V_dd, T) corner."""

    name: str
    temperature: float
    vdd: float
    cells: dict[str, LibertyCell] = field(default_factory=dict)

    def add(self, cell: LibertyCell) -> None:
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell {cell.name}")
        self.cells[cell.name] = cell
        self.__dict__.pop("_fingerprint", None)

    def fingerprint(self) -> str:
        """Content address of the characterized library (SHA-256 hex).

        Digests the corner (name, temperature, Vdd) and every cell's
        structure and tables, iterating cells in sorted-name order so
        the digest is independent of insertion order.  Two libraries
        share a fingerprint iff signoff against them is
        indistinguishable; :mod:`repro.core.artifacts` uses this as
        the library component of mapping/STA cache keys.

        The digest is memoized on the instance and invalidated by
        :meth:`add`; mutating cells in place after the first call is
        not supported.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        import hashlib

        h = hashlib.sha256()

        def feed(*parts: object) -> None:
            for part in parts:
                h.update(repr(part).encode())
                h.update(b"\0")

        def feed_table(table: NLDMTable) -> None:
            feed(table.slews, table.loads, table.values)

        feed(self.name, self.temperature, self.vdd)
        for name in sorted(self.cells):
            cell = self.cells[name]
            feed(
                cell.name, cell.area, cell.input_pins, cell.output_pins,
                sorted(cell.functions.items()),
                sorted(cell.truth_tables.items()),
                sorted(cell.input_caps.items()),
                sorted(cell.leakage_by_state.items()),
                cell.is_sequential, cell.clock_pin, cell.footprint,
                cell.degraded_arcs,
            )
            for arc in cell.arcs:
                feed(arc.related_pin, arc.output_pin, arc.timing_sense, arc.timing_type)
                for table in (arc.cell_rise, arc.cell_fall, arc.rise_transition,
                              arc.fall_transition, arc.rise_power, arc.fall_power):
                    feed_table(table)
            for constraint in cell.constraints:
                feed(constraint.constrained_pin, constraint.related_pin,
                     constraint.timing_type)
                feed_table(constraint.rise_constraint)
                feed_table(constraint.fall_constraint)
        digest = h.hexdigest()
        self.__dict__["_fingerprint"] = digest
        return digest

    def degraded_arcs(self) -> list[str]:
        """Qualified (``"CELL:A->Y"``) degraded arcs, sorted by cell."""
        out: list[str] = []
        for name in sorted(self.cells):
            out.extend(f"{name}:{arc}" for arc in self.cells[name].degraded_arcs)
        return out

    @property
    def is_degraded(self) -> bool:
        """True when any cell carries fallback-quality arcs."""
        return any(cell.degraded_arcs for cell in self.cells.values())

    def __getitem__(self, name: str) -> LibertyCell:
        return self.cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __len__(self) -> int:
        return len(self.cells)

    def combinational_cells(self) -> list[LibertyCell]:
        return [c for c in self.cells.values() if not c.is_sequential]

    def delay_distribution(self) -> np.ndarray:
        """Typical delay of every cell [s] (Fig. 2a data)."""
        return np.array([c.typical_delay() for c in self.cells.values() if c.arcs])

    def energy_distribution(self) -> np.ndarray:
        """Typical switching energy of every cell [J] (Fig. 2b data)."""
        return np.array([c.typical_energy() for c in self.cells.values() if c.arcs])

    def leakage_distribution(self) -> np.ndarray:
        """State-averaged leakage of every cell [W]."""
        return np.array([c.leakage_average for c in self.cells.values()])
