"""Cryogenic-aware standard-cell library characterization.

Implements the paper's Section III: NLDM table models, the analytic
(SiliconSmart-surrogate) and SPICE characterization backends, the
liberty writer/parser, and the orchestration that produces full
200-cell libraries at arbitrary temperature corners.
"""

from .nldm import ConstraintArc, Library, LibertyCell, NLDMTable, TimingArc
from .analytic import AnalyticCharacterizer
from .spice_char import ArcMeasurement, SpiceCharacterizer
from .engine import characterize_library, default_library
from .liberty import parse_liberty, write_liberty
from .function_parser import parse_function

__all__ = [
    "ConstraintArc",
    "Library",
    "LibertyCell",
    "NLDMTable",
    "TimingArc",
    "AnalyticCharacterizer",
    "ArcMeasurement",
    "SpiceCharacterizer",
    "characterize_library",
    "default_library",
    "parse_liberty",
    "write_liberty",
    "parse_function",
]
