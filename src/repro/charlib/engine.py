"""Library characterization orchestration.

The Fig. 2 experiments need the whole 200-cell catalog characterized
at both 300 K and 10 K.  This module drives a backend over the catalog
(or any cell subset), assembles the :class:`Library`, and routes the
result through the content-addressed artifact cache
(:mod:`repro.core.artifacts`): a characterized corner is computed once
per (technology, temperature, backend, grid, cell set) and reused
across scenarios, figures, and — with a disk-backed cache — process
restarts, where a warm cache skips characterization entirely
(``cache.hit.charlib`` in the obs summary).
"""

from __future__ import annotations

import dataclasses
import math
from functools import lru_cache
from typing import Sequence

from .. import obs
from ..resilience import faults, guards
from ..resilience.errors import GuardViolation
from ..resilience.isolation import task_heartbeat
from ..pdk.catalog import standard_cell_catalog
from ..pdk.cells import CellTemplate
from ..pdk.technology import Technology, cryo5_technology
from .analytic import AnalyticCharacterizer
from .nldm import Library, LibertyCell, NLDMTable
from .spice_char import SpiceCharacterizer

BACKENDS = ("analytic", "spice")

#: Bump when characterization semantics change, to invalidate every
#: persisted library artifact at once.
CHARACTERIZATION_VERSION = 1


def _characterization_key(
    tech: Technology,
    temperature_k: float,
    cells: Sequence[CellTemplate],
    backend: str,
    slews: tuple[float, ...] | None,
    loads: tuple[float, ...] | None,
    name: str | None,
) -> str:
    """Content address of one characterization run.

    Cell templates are defined in code, so their names + count (plus
    :data:`CHARACTERIZATION_VERSION`) stand in for their content; the
    technology is a plain dataclass and digests field by field.
    """
    from ..core.artifacts import cache_key

    return cache_key(
        "charlib",
        CHARACTERIZATION_VERSION,
        tech,
        temperature_k,
        tuple(cell.name for cell in cells),
        backend,
        slews,
        loads,
        name,
    )


def _sanitize_table(table: NLDMTable) -> tuple[NLDMTable, int]:
    """Repair non-finite table entries with the worst finite value.

    Downstream consumers (interpolation, STA, the Liberty writer)
    assume finite tables; a NaN from a corrupted measurement would
    otherwise poison every lookup that touches its grid cell.  Using
    the table's *worst* (largest) finite value keeps the repair
    conservative for delay/slew/power alike.  Returns the repaired
    table and the number of points touched (0 -> the original table).
    """
    flat = [v for row in table.values for v in row]
    if all(math.isfinite(v) for v in flat):
        return table, 0
    finite = [v for v in flat if math.isfinite(v)]
    worst = max(finite) if finite else 0.0
    repaired = 0
    rows = []
    for row in table.values:
        new_row = []
        for v in row:
            if math.isfinite(v):
                new_row.append(v)
            else:
                new_row.append(worst)
                repaired += 1
        rows.append(tuple(new_row))
    return NLDMTable(table.slews, table.loads, tuple(rows)), repaired


_ARC_TABLE_FIELDS = (
    "cell_rise",
    "cell_fall",
    "rise_transition",
    "fall_transition",
    "rise_power",
    "fall_power",
)


def _sanitize_cell(cell: LibertyCell) -> LibertyCell:
    """Repair non-finite NLDM points in place of failing the build.

    Any arc with repaired points is recorded in
    :attr:`LibertyCell.degraded_arcs` so the degradation is visible in
    flow results, the Liberty output, and ``--strict`` runs.
    """
    degraded = list(cell.degraded_arcs)
    for i, arc in enumerate(cell.arcs):
        replacements: dict[str, NLDMTable] = {}
        repaired_points = 0
        for field in _ARC_TABLE_FIELDS:
            table, repaired = _sanitize_table(getattr(arc, field))
            if repaired:
                replacements[field] = table
                repaired_points += repaired
        if not replacements:
            continue
        cell.arcs[i] = dataclasses.replace(arc, **replacements)
        obs.count("charlib.sanitized_points", repaired_points)
        key = f"{arc.related_pin}->{arc.output_pin}"
        if key not in degraded:
            obs.count("charlib.arc.degraded")
            degraded.append(key)
    cell.degraded_arcs = tuple(degraded)
    return cell


def characterize_library(
    tech: Technology,
    temperature_k: float,
    cells: Sequence[CellTemplate] | None = None,
    backend: str = "analytic",
    slews: tuple[float, ...] | None = None,
    loads: tuple[float, ...] | None = None,
    name: str | None = None,
    cache=None,
) -> Library:
    """Characterize a cell set into a :class:`Library` at one corner.

    Parameters
    ----------
    backend:
        ``"analytic"`` (fast effective-current model, used for full
        libraries) or ``"spice"`` (transistor-level transients, used
        for validation subsets).
    cache:
        An :class:`repro.core.artifacts.ArtifactCache`; pass ``False``
        to force characterization, ``None`` for the process default.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if cells is None:
        cells = standard_cell_catalog()

    def build() -> Library:
        characterizer = (
            AnalyticCharacterizer(tech, temperature_k)
            if backend == "analytic"
            else SpiceCharacterizer(tech, temperature_k)
        )
        library = Library(
            name=name or f"{tech.name}_{temperature_k:g}K",
            temperature=temperature_k,
            vdd=tech.vdd,
        )
        with obs.span(
            "charlib.library", backend=backend, temperature_k=temperature_k
        ) as sp:
            for cell in cells:
                # Liveness mark for the isolation watchdog: inside a
                # worker subprocess each characterized cell counts as
                # progress; elsewhere this is a no-op.
                task_heartbeat()
                with obs.span("charlib.cell", cell=cell.name):
                    result = _sanitize_cell(
                        characterizer.characterize_cell(cell, slews, loads)
                    )
                    obs.count("charlib.cells")
                    obs.count("charlib.arcs", len(result.arcs))
                library.add(result)
            sp.set(cells=len(library), degraded_arcs=len(library.degraded_arcs()))
        if guards.mode() != "off":
            violations = guards.check_library_invariants(library)
            if violations:
                obs.count("guard.violation")
                obs.count("guard.violation.charlib")
                if guards.mode() == "enforce":
                    # Raised inside build(): the broken library never
                    # reaches the cache.
                    raise GuardViolation(
                        f"characterized library {library.name!r} violates "
                        f"structural invariants: " + "; ".join(violations[:5]),
                        site="guard.charlib",
                        stage="charlib",
                        violations=violations,
                    )
        return library

    if cache is False:
        return build()
    if cache is None:
        from ..core.artifacts import default_cache

        cache = default_cache()
    key = _characterization_key(tech, temperature_k, cells, backend, slews, loads, name)
    # Degraded libraries (fault-injection runs, flaky transients) must
    # never poison a shared cache with fallback-quality tables.
    return cache.get_or_compute(key, build, cache_if=lambda lib: not lib.is_degraded)


@lru_cache(maxsize=8)
def _default_library_memo(temperature_k: float) -> Library:
    return characterize_library(cryo5_technology(), temperature_k)


def default_library(temperature_k: float, cache=None) -> Library:
    """Memoized full-catalog library of the default technology.

    This is the library every synthesis experiment maps against.  With
    no explicit cache the per-process memo keeps the historical
    guarantee that repeated calls return the *same object*; an
    explicit ``cache`` routes through it directly (e.g. a warm disk
    cache loads the corner instead of recharacterizing it).

    While a fault-injection plan is active the memo is bypassed in
    both directions: the faulted run must not be served a healthy
    memoized library (hiding the injected degradation), and a degraded
    library must never be memoized for later healthy runs.
    """
    if cache is not None:
        return characterize_library(cryo5_technology(), temperature_k, cache=cache)
    if faults.active_plan() is not None:
        return characterize_library(cryo5_technology(), temperature_k, cache=False)
    return _default_library_memo(temperature_k)
