"""Library characterization orchestration.

The Fig. 2 experiments need the whole 200-cell catalog characterized
at both 300 K and 10 K.  This module drives a backend over the catalog
(or any cell subset), assembles the :class:`Library`, and memoizes the
default-technology corners so that tests and benchmarks share one
characterization run per temperature.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

from .. import obs
from ..pdk.catalog import standard_cell_catalog
from ..pdk.cells import CellTemplate
from ..pdk.technology import Technology, cryo5_technology
from .analytic import AnalyticCharacterizer
from .nldm import Library
from .spice_char import SpiceCharacterizer

BACKENDS = ("analytic", "spice")


def characterize_library(
    tech: Technology,
    temperature_k: float,
    cells: Sequence[CellTemplate] | None = None,
    backend: str = "analytic",
    slews: tuple[float, ...] | None = None,
    loads: tuple[float, ...] | None = None,
    name: str | None = None,
) -> Library:
    """Characterize a cell set into a :class:`Library` at one corner.

    Parameters
    ----------
    backend:
        ``"analytic"`` (fast effective-current model, used for full
        libraries) or ``"spice"`` (transistor-level transients, used
        for validation subsets).
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if cells is None:
        cells = standard_cell_catalog()
    characterizer = (
        AnalyticCharacterizer(tech, temperature_k)
        if backend == "analytic"
        else SpiceCharacterizer(tech, temperature_k)
    )
    library = Library(
        name=name or f"{tech.name}_{temperature_k:g}K",
        temperature=temperature_k,
        vdd=tech.vdd,
    )
    with obs.span(
        "charlib.library", backend=backend, temperature_k=temperature_k
    ) as sp:
        for cell in cells:
            with obs.span("charlib.cell", cell=cell.name):
                result = characterizer.characterize_cell(cell, slews, loads)
                obs.count("charlib.cells")
                obs.count("charlib.arcs", len(result.arcs))
            library.add(result)
        sp.set(cells=len(library))
    return library


@lru_cache(maxsize=8)
def default_library(temperature_k: float) -> Library:
    """Memoized full-catalog library of the default technology.

    This is the library every synthesis experiment maps against; the
    cache makes repeated benchmark/test invocations cheap.
    """
    return characterize_library(cryo5_technology(), temperature_k)
