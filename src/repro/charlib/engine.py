"""Library characterization orchestration.

The Fig. 2 experiments need the whole 200-cell catalog characterized
at both 300 K and 10 K.  This module drives a backend over the catalog
(or any cell subset), assembles the :class:`Library`, and routes the
result through the content-addressed artifact cache
(:mod:`repro.core.artifacts`): a characterized corner is computed once
per (technology, temperature, backend, grid, cell set) and reused
across scenarios, figures, and — with a disk-backed cache — process
restarts, where a warm cache skips characterization entirely
(``cache.hit.charlib`` in the obs summary).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from .. import obs
from ..pdk.catalog import standard_cell_catalog
from ..pdk.cells import CellTemplate
from ..pdk.technology import Technology, cryo5_technology
from .analytic import AnalyticCharacterizer
from .nldm import Library
from .spice_char import SpiceCharacterizer

BACKENDS = ("analytic", "spice")

#: Bump when characterization semantics change, to invalidate every
#: persisted library artifact at once.
CHARACTERIZATION_VERSION = 1


def _characterization_key(
    tech: Technology,
    temperature_k: float,
    cells: Sequence[CellTemplate],
    backend: str,
    slews: tuple[float, ...] | None,
    loads: tuple[float, ...] | None,
    name: str | None,
) -> str:
    """Content address of one characterization run.

    Cell templates are defined in code, so their names + count (plus
    :data:`CHARACTERIZATION_VERSION`) stand in for their content; the
    technology is a plain dataclass and digests field by field.
    """
    from ..core.artifacts import cache_key

    return cache_key(
        "charlib",
        CHARACTERIZATION_VERSION,
        tech,
        temperature_k,
        tuple(cell.name for cell in cells),
        backend,
        slews,
        loads,
        name,
    )


def characterize_library(
    tech: Technology,
    temperature_k: float,
    cells: Sequence[CellTemplate] | None = None,
    backend: str = "analytic",
    slews: tuple[float, ...] | None = None,
    loads: tuple[float, ...] | None = None,
    name: str | None = None,
    cache=None,
) -> Library:
    """Characterize a cell set into a :class:`Library` at one corner.

    Parameters
    ----------
    backend:
        ``"analytic"`` (fast effective-current model, used for full
        libraries) or ``"spice"`` (transistor-level transients, used
        for validation subsets).
    cache:
        An :class:`repro.core.artifacts.ArtifactCache`; pass ``False``
        to force characterization, ``None`` for the process default.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if cells is None:
        cells = standard_cell_catalog()

    def build() -> Library:
        characterizer = (
            AnalyticCharacterizer(tech, temperature_k)
            if backend == "analytic"
            else SpiceCharacterizer(tech, temperature_k)
        )
        library = Library(
            name=name or f"{tech.name}_{temperature_k:g}K",
            temperature=temperature_k,
            vdd=tech.vdd,
        )
        with obs.span(
            "charlib.library", backend=backend, temperature_k=temperature_k
        ) as sp:
            for cell in cells:
                with obs.span("charlib.cell", cell=cell.name):
                    result = characterizer.characterize_cell(cell, slews, loads)
                    obs.count("charlib.cells")
                    obs.count("charlib.arcs", len(result.arcs))
                library.add(result)
            sp.set(cells=len(library))
        return library

    if cache is False:
        return build()
    if cache is None:
        from ..core.artifacts import default_cache

        cache = default_cache()
    key = _characterization_key(tech, temperature_k, cells, backend, slews, loads, name)
    return cache.get_or_compute(key, build)


@lru_cache(maxsize=8)
def _default_library_memo(temperature_k: float) -> Library:
    return characterize_library(cryo5_technology(), temperature_k)


def default_library(temperature_k: float, cache=None) -> Library:
    """Memoized full-catalog library of the default technology.

    This is the library every synthesis experiment maps against.  With
    no explicit cache the per-process memo keeps the historical
    guarantee that repeated calls return the *same object*; an
    explicit ``cache`` routes through it directly (e.g. a warm disk
    cache loads the corner instead of recharacterizing it).
    """
    if cache is not None:
        return characterize_library(cryo5_technology(), temperature_k, cache=cache)
    return _default_library_memo(temperature_k)
