"""Process/voltage/temperature (PVT) corner modeling.

Signoff happens at corners, not at nominal: slow/fast process skews
combined with supply and temperature extremes.  This module derives
corner parameter sets from a nominal :class:`FinFETParams` using the
standard first-order skews (threshold shift, mobility scale) and
bundles them with a supply and temperature into named corners the
characterization engine can consume directly.

The cryogenic flow cares about two axes the conventional PVT matrix
does not cover: the deep-cryogenic temperature points and the
band-tail parameter spread (the dominant device-to-device variation
mechanism reported at 10 K).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .bsimcmg import FinFETParams


#: First-order process skews: (vth shift [V], mobility scale).
_PROCESS_SKEWS: dict[str, tuple[float, float]] = {
    "ss": (+0.03, 0.90),
    "tt": (0.0, 1.00),
    "ff": (-0.03, 1.10),
}


@dataclass(frozen=True)
class Corner:
    """One PVT corner: skewed devices + operating conditions."""

    name: str
    process: str
    vdd: float
    temperature: float
    nfet: FinFETParams
    pfet: FinFETParams


def skew_device(params: FinFETParams, process: str) -> FinFETParams:
    """Apply a process skew to one device parameter set."""
    if process not in _PROCESS_SKEWS:
        raise ValueError(f"unknown process corner {process!r}; use ss/tt/ff")
    vth_shift, mobility_scale = _PROCESS_SKEWS[process]
    return replace(
        params,
        vth0=params.vth0 + vth_shift,
        mu_phonon_300=params.mu_phonon_300 * mobility_scale,
        mu_saturation=params.mu_saturation * mobility_scale,
    )


def make_corner(
    name: str,
    nfet: FinFETParams,
    pfet: FinFETParams,
    process: str = "tt",
    vdd: float = 0.7,
    temperature: float = 300.0,
) -> Corner:
    """Build a corner from nominal devices."""
    if vdd <= 0.0:
        raise ValueError("supply must be positive")
    if temperature <= 0.0:
        raise ValueError("temperature must be positive")
    return Corner(
        name=name,
        process=process,
        vdd=vdd,
        temperature=temperature,
        nfet=skew_device(nfet, process),
        pfet=skew_device(pfet, process),
    )


def standard_corner_set(
    nfet: FinFETParams,
    pfet: FinFETParams,
    vdd_nominal: float = 0.7,
    vdd_margin: float = 0.05,
) -> dict[str, Corner]:
    """The signoff corner matrix extended with cryogenic points.

    Conventional: (ss, low-V, hot) worst-delay / (ff, high-V, cold)
    worst-leakage at the classical temperature range; cryogenic:
    the same skews at 10 K, where "cold" stops meaning "leaky".
    """
    low = vdd_nominal * (1.0 - vdd_margin)
    high = vdd_nominal * (1.0 + vdd_margin)
    corners = {
        "wc_delay": make_corner("wc_delay", nfet, pfet, "ss", low, 398.0),
        "typical": make_corner("typical", nfet, pfet, "tt", vdd_nominal, 300.0),
        "wc_leakage": make_corner("wc_leakage", nfet, pfet, "ff", high, 398.0),
        "cryo_typical": make_corner("cryo_typical", nfet, pfet, "tt", vdd_nominal, 10.0),
        "cryo_wc_delay": make_corner("cryo_wc_delay", nfet, pfet, "ss", low, 10.0),
        "cryo_bc_delay": make_corner("cryo_bc_delay", nfet, pfet, "ff", high, 10.0),
    }
    return corners


def corner_technology(corner: Corner):
    """Build a :class:`repro.pdk.Technology` for a corner."""
    from dataclasses import replace as dc_replace

    from ..pdk.technology import cryo5_technology

    tech = cryo5_technology(nfet=corner.nfet, pfet=corner.pfet)
    return dc_replace(tech, vdd=corner.vdd)
