"""Temperature-dependent semiconductor physics for cryogenic operation.

These are the physics-based extensions the paper adds to the BSIM-CMG
compact model (Section II-A), following the cryogenic modeling approach
of Pahwa et al. (TED 2021):

* **Threshold voltage** rises as the temperature drops (Fermi level
  moves toward the band edge, incomplete ionization).  We use the
  standard linear temperature coefficient with a mild saturation below
  the carrier freeze-out knee.

* **Subthreshold swing** no longer follows the Boltzmann limit
  ``n * kT/q * ln 10`` at deep-cryogenic temperatures.  Band-tail
  states pin the swing to a finite floor (a few mV/dec).  We model this
  with an *effective thermal voltage* that smoothly saturates at a
  band-tail temperature ``T_bt``.

* **Carrier mobility** improves at low temperature because phonon
  scattering freezes out, but saturates once surface-roughness and
  Coulomb scattering dominate.  Matthiessen's rule combines the two
  limits.

* **Saturation velocity** increases slightly at low temperature.

Every function is smooth and differentiable in its arguments so that
the compact model built on top remains Newton-friendly.
"""

from __future__ import annotations

import math

from .constants import BOLTZMANN_EV, LN10, T_REF


def effective_thermal_voltage(temperature_k: float, band_tail_temperature_k: float) -> float:
    """Band-tail-limited effective thermal voltage [V].

    Uses the smooth saturation ``v_t,eff = (k_B/q) * sqrt(T^2 + T_bt^2)``.
    At room temperature this is within ~1 % of the physical ``kT/q``;
    below ``T_bt`` it freezes at ``(k_B/q) * T_bt``, which reproduces
    the experimentally observed subthreshold-swing floor.
    """
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k} K")
    if band_tail_temperature_k < 0.0:
        raise ValueError("band-tail temperature must be non-negative")
    t_eff = math.sqrt(temperature_k**2 + band_tail_temperature_k**2)
    return BOLTZMANN_EV * t_eff


def subthreshold_swing(
    temperature_k: float,
    band_tail_temperature_k: float,
    ideality: float = 1.0,
) -> float:
    """Subthreshold swing [V/decade] including the cryogenic floor.

    ``SS = n * ln(10) * v_t,eff``.  At 300 K with n = 1 this evaluates
    to ~60 mV/dec; at 10 K with a 35 K band-tail temperature it
    saturates near 7 mV/dec instead of the (unphysical) Boltzmann value
    of 2 mV/dec.
    """
    if ideality < 1.0:
        raise ValueError(f"ideality factor must be >= 1, got {ideality}")
    return ideality * LN10 * effective_thermal_voltage(temperature_k, band_tail_temperature_k)


def threshold_shift(
    temperature_k: float,
    vth_temp_coeff_v_per_k: float,
    freezeout_knee_k: float = 50.0,
) -> float:
    """Threshold-voltage shift [V] relative to the 300 K value.

    The shift follows the familiar linear ``dVth/dT`` behaviour from
    300 K down to the freeze-out knee and then flattens smoothly — the
    measured 5 nm FinFET V_th keeps rising below 50 K, but more slowly
    than the linear extrapolation.  A positive ``vth_temp_coeff_v_per_k``
    means V_th *increases* as temperature *decreases*.

    The smooth knee uses a softplus so that the shift (and therefore
    the drain current) stays differentiable in T.
    """
    if freezeout_knee_k <= 0.0:
        raise ValueError("freeze-out knee must be positive")
    # Effective temperature that never goes below ~knee/2 contribution:
    # softplus-smoothed clamp of T at the knee.
    knee = freezeout_knee_k
    t_eff = knee * math.log1p(math.exp(temperature_k / knee - 1.0)) + knee * (1.0 - math.log(2.0))
    t_eff_ref = knee * math.log1p(math.exp(T_REF / knee - 1.0)) + knee * (1.0 - math.log(2.0))
    return vth_temp_coeff_v_per_k * (t_eff_ref - t_eff)


def phonon_limited_mobility(temperature_k: float, mu_phonon_300: float, exponent: float = 1.5) -> float:
    """Phonon-scattering-limited mobility [m^2/Vs].

    Classic power law ``mu_ph(T) = mu_ph(300) * (300/T)^alpha`` — the
    component that *improves* dramatically at cryogenic temperatures.
    """
    if mu_phonon_300 <= 0.0:
        raise ValueError("phonon mobility must be positive")
    if temperature_k <= 0.0:
        raise ValueError("temperature must be positive")
    return mu_phonon_300 * (T_REF / temperature_k) ** exponent


def effective_mobility(
    temperature_k: float,
    mu_phonon_300: float,
    mu_saturation: float,
    exponent: float = 1.5,
) -> float:
    """Matthiessen-combined effective mobility [m^2/Vs].

    ``1/mu = 1/mu_ph(T) + 1/mu_sat`` where ``mu_sat`` lumps the
    temperature-insensitive surface-roughness and Coulomb scattering
    limits.  As T -> 0 the mobility saturates at ``mu_sat``, matching
    the ~58 % improvement reported for 10 nm-class FinFETs rather than
    diverging.
    """
    if mu_saturation <= 0.0:
        raise ValueError("saturation mobility must be positive")
    mu_ph = phonon_limited_mobility(temperature_k, mu_phonon_300, exponent)
    return 1.0 / (1.0 / mu_ph + 1.0 / mu_saturation)


def saturation_velocity(temperature_k: float, vsat_300: float, temp_coeff: float = 4.0e-4) -> float:
    """Carrier saturation velocity [m/s], mildly increasing at low T."""
    if vsat_300 <= 0.0:
        raise ValueError("saturation velocity must be positive")
    return vsat_300 * (1.0 + temp_coeff * (T_REF - temperature_k))


def gate_capacitance_factor(temperature_k: float, cryo_reduction: float = 0.04) -> float:
    """Relative gate-capacitance factor vs. 300 K (dimensionless).

    Cryogenic surface-potential shifts slightly reduce the effective
    gate capacitance (the paper attributes the lower switching energy
    at 10 K to exactly this effect).  The factor moves linearly from
    1.0 at 300 K to ``1 - cryo_reduction`` at 0 K.
    """
    if not 0.0 <= cryo_reduction < 1.0:
        raise ValueError("cryo capacitance reduction must be in [0, 1)")
    return 1.0 - cryo_reduction * (T_REF - temperature_k) / T_REF
