"""Physical constants and reference conditions used across the device models.

All quantities are in SI units unless stated otherwise.  The module keeps
the constants in one place so that the compact model, the measurement
substrate, and the characterization engine cannot drift apart.
"""

from __future__ import annotations

#: Boltzmann constant [J/K].
BOLTZMANN: float = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE: float = 1.602176634e-19

#: Boltzmann constant expressed in eV/K (k_B / q).
BOLTZMANN_EV: float = BOLTZMANN / ELEMENTARY_CHARGE

#: Vacuum permittivity [F/m].
EPSILON_0: float = 8.8541878128e-12

#: Relative permittivity of SiO2.
EPS_R_SIO2: float = 3.9

#: Relative permittivity of silicon.
EPS_R_SI: float = 11.7

#: Reference (room) temperature [K] used for parameter normalization.
T_REF: float = 300.0

#: Lowest temperature the paper's probe station can hold stably [K].
T_MIN_STABLE: float = 10.0

#: ln(10), used for subthreshold-swing conversions.
LN10: float = 2.302585092994046


def thermal_voltage(temperature_k: float) -> float:
    """Return the thermal voltage k_B*T/q [V] at ``temperature_k``.

    This is the *physical* thermal voltage; the cryogenic compact model
    replaces it with a band-tail-limited effective value below ~40 K
    (see :mod:`repro.device.thermal`).
    """
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k} K")
    return BOLTZMANN_EV * temperature_k
