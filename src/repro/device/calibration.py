"""Compact-model calibration against (synthetic) cryogenic measurements.

Mirrors Section II-C of the paper: the cryogenic-aware BSIM-CMG
surrogate is fitted to measured I_ds-V_gs sweeps covering the full
temperature range (300 K .. 10 K) and both drain biases, then validated
by the residual between model (lines) and measurement (dots).

The fit is a bounded nonlinear least squares (``scipy.optimize``) on
the *logarithm* of the drain current, which weights the subthreshold
decades and the on-state equally — the standard practice for compact
model extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace, fields
from typing import Sequence

import numpy as np
from scipy.optimize import least_squares

from .. import obs
from ..resilience import faults
from ..resilience.errors import CalibrationError
from .bsimcmg import CryoFinFET, FinFETParams
from .measurement import SweepResult


#: Parameters the extraction is allowed to move, with (lower, upper)
#: bounds as multiples of the initial guess.
FIT_PARAMETERS: dict[str, tuple[float, float]] = {
    "vth0": (0.5, 1.8),
    "ideality": (0.8, 1.6),
    "vth_temp_coeff": (0.3, 3.0),
    "band_tail_temperature": (0.3, 3.0),
    "mu_phonon_300": (0.4, 2.5),
    "mu_saturation": (0.4, 2.5),
    "dibl": (0.3, 3.0),
    "clm": (0.3, 3.0),
}

#: Currents below this are treated as instrument floor during fitting [A].
FIT_CURRENT_FLOOR: float = 3.0e-12

#: Replacement residual for non-finite entries [decades].  Larger than
#: any physical log-current mismatch, so the optimizer is steered hard
#: away from parameter regions that produce NaN/inf currents instead
#: of crashing inside scipy.
RESIDUAL_CEILING: float = 12.0


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a compact-model extraction run."""

    params: FinFETParams
    rms_log_error: float
    max_log_error: float
    per_sweep_rms: dict[tuple[float, float], float]
    n_points: int
    converged: bool

    def device(self) -> CryoFinFET:
        """Return the calibrated device model."""
        return CryoFinFET(self.params)


def _clipped_log_current(ids: np.ndarray) -> np.ndarray:
    return np.log10(np.maximum(np.abs(ids), FIT_CURRENT_FLOOR))


def _pack(params: FinFETParams, names: Sequence[str]) -> np.ndarray:
    return np.array([getattr(params, name) for name in names], dtype=float)


def _unpack(base: FinFETParams, names: Sequence[str], values: np.ndarray) -> FinFETParams:
    updates = {name: float(value) for name, value in zip(names, values)}
    if "ideality" in updates:
        updates["ideality"] = max(1.0, updates["ideality"])
    return replace(base, **updates)


def calibrate(
    sweeps: Sequence[SweepResult],
    initial: FinFETParams,
    max_iterations: int = 120,
) -> CalibrationResult:
    """Fit the compact model to measured sweeps.

    Parameters
    ----------
    sweeps:
        Measurement sweeps spanning the temperatures and drain biases
        of interest (mixing both is what constrains the temperature
        coefficients and DIBL).
    initial:
        Starting parameter set (typically the published defaults for
        the technology).
    """
    if not sweeps:
        raise CalibrationError(
            "need at least one measurement sweep to calibrate",
            site="calibration",
        )
    names = list(FIT_PARAMETERS)
    x0 = _pack(initial, names)
    lower = np.array([FIT_PARAMETERS[n][0] for n in names]) * np.abs(x0)
    upper = np.array([FIT_PARAMETERS[n][1] for n in names]) * np.abs(x0)

    targets = [_clipped_log_current(sweep.ids) for sweep in sweeps]

    def residuals(x: np.ndarray) -> np.ndarray:
        candidate = CryoFinFET(_unpack(initial, names, x))
        res = []
        for sweep, target in zip(sweeps, targets):
            model_ids = candidate.ids(
                sweep.vgs, np.full_like(sweep.vgs, sweep.vds), sweep.temperature_setpoint
            )
            res.append(_clipped_log_current(np.asarray(model_ids)) - target)
        stacked = np.concatenate(res)
        if faults.should_fire("calibration.residual"):
            stacked = stacked.copy()
            stacked[0] = float("nan")
        bad = ~np.isfinite(stacked)
        if bad.any():
            # scipy's trust-region step would crash on NaN/inf; clamp
            # to the ceiling so the optimizer backs away instead.
            stacked = np.where(bad, RESIDUAL_CEILING, stacked)
            obs.count("resilience.sanitized.calibration", int(bad.sum()))
        if obs.current_tracer() is not None:
            obs.count("calibration.residual_evals")
            obs.observe(
                "calibration.rms_trace", float(np.sqrt(np.mean(stacked**2)))
            )
        return stacked

    with obs.span("calibration.fit", sweeps=len(sweeps), parameters=len(names)) as sp:
        solution = least_squares(
            residuals, x0, bounds=(lower, upper), max_nfev=max_iterations, method="trf"
        )
        sp.set(nfev=int(solution.nfev), converged=bool(solution.success))
        obs.count("calibration.fit_iterations", int(solution.nfev))
    fitted = _unpack(initial, names, solution.x)
    final_residuals = residuals(solution.x)

    per_sweep: dict[tuple[float, float], float] = {}
    offset = 0
    for sweep in sweeps:
        n = len(sweep.vgs)
        chunk = final_residuals[offset : offset + n]
        per_sweep[(sweep.vds, sweep.temperature_setpoint)] = float(
            np.sqrt(np.mean(chunk**2))
        )
        offset += n

    rms = float(np.sqrt(np.mean(final_residuals**2)))
    if not np.isfinite(rms):
        raise CalibrationError(
            f"extraction produced a non-finite residual (rms={rms!r}); "
            "the fitted parameters are unusable",
            site="calibration",
        )
    obs.gauge("calibration.rms_log_error", rms)
    return CalibrationResult(
        params=fitted,
        rms_log_error=rms,
        max_log_error=float(np.max(np.abs(final_residuals))),
        per_sweep_rms=per_sweep,
        n_points=len(final_residuals),
        converged=bool(solution.success),
    )


def validate(
    device: CryoFinFET, sweeps: Sequence[SweepResult]
) -> dict[tuple[float, float], float]:
    """RMS log-current error of ``device`` against held-out sweeps.

    This is the Fig. 1 validation: SPICE model (lines) versus
    measurement (dots), per (V_ds, T) condition.
    """
    report: dict[tuple[float, float], float] = {}
    for sweep in sweeps:
        model_ids = device.ids(
            sweep.vgs, np.full_like(sweep.vgs, sweep.vds), sweep.temperature_setpoint
        )
        err = _clipped_log_current(np.asarray(model_ids)) - _clipped_log_current(sweep.ids)
        report[(sweep.vds, sweep.temperature_setpoint)] = float(np.sqrt(np.mean(err**2)))
    return report


def parameter_recovery_error(fitted: FinFETParams, truth: FinFETParams) -> dict[str, float]:
    """Relative error per fitted parameter vs. the hidden silicon truth.

    Only meaningful with the synthetic probe station, where the true
    silicon parameters are known; used by the validation tests.
    """
    report = {}
    valid_names = {f.name for f in fields(FinFETParams)}
    for name in FIT_PARAMETERS:
        if name not in valid_names:
            continue
        true_value = getattr(truth, name)
        if true_value == 0.0:
            continue
        report[name] = abs(getattr(fitted, name) - true_value) / abs(true_value)
    return report
