"""Synthetic cryogenic measurement substrate.

The paper measures commercial 5 nm FinFETs on a Lakeshore CRX-VF
cryogenic probe station driven by a Keysight B1500A semiconductor
analyzer (Section II-B).  We do not have that hardware, so this module
implements the closest synthetic equivalent that exercises the same
code path:

* a **hidden silicon instance** — a :class:`CryoFinFET` whose
  parameters are perturbed from the published defaults by a seeded
  random draw (the "process" the experimenter does not know),
* **instrument behaviour** — multiplicative gain noise, additive
  current noise, and a 1 pA-class measurement floor, mirroring an SMU,
* **stage thermal fluctuation** — the paper reports 3.5 K .. 8.5 K of
  probe-induced fluctuation, which is why 10 K is the lowest stable
  setpoint; we jitter the true device temperature accordingly and
  refuse setpoints below the stable limit.

The calibration module fits the compact model to data produced here,
exactly as the authors fit BSIM-CMG to their measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from .constants import T_MIN_STABLE
from .bsimcmg import CryoFinFET, FinFETParams, default_nfet_5nm, default_pfet_5nm


#: Relative perturbations applied to the hidden silicon parameters.
_PROCESS_SIGMA = {
    "vth0": 0.04,
    "ideality": 0.03,
    "vth_temp_coeff": 0.10,
    "band_tail_temperature": 0.10,
    "mu_phonon_300": 0.08,
    "mu_saturation": 0.08,
    "dibl": 0.10,
    "clm": 0.10,
}


@dataclass(frozen=True)
class MeasurementPoint:
    """One stimulus/response sample from the probe station."""

    vgs: float
    vds: float
    temperature_setpoint: float
    ids: float


@dataclass(frozen=True)
class SweepResult:
    """A full transfer-characteristic sweep at one (V_ds, T) condition."""

    vgs: np.ndarray
    ids: np.ndarray
    vds: float
    temperature_setpoint: float


def perturbed_silicon(base: FinFETParams, seed: int) -> FinFETParams:
    """Return a hidden 'real silicon' parameter set near ``base``.

    The perturbation magnitudes model die-to-die process variation plus
    the model-form error between our surrogate and true silicon.
    """
    rng = np.random.default_rng(seed)
    updates = {}
    for name, sigma in _PROCESS_SIGMA.items():
        value = getattr(base, name)
        updates[name] = value * float(1.0 + rng.normal(0.0, sigma))
    # Keep physical constraints intact.
    updates["ideality"] = max(1.0, updates["ideality"])
    updates["band_tail_temperature"] = max(5.0, updates["band_tail_temperature"])
    return replace(base, **updates)


class CryoProbeStation:
    """Synthetic Lakeshore CRX-VF + Keysight B1500A measurement rig.

    Parameters
    ----------
    silicon:
        The hidden device under test.  Use :func:`perturbed_silicon`
        to build one the calibration code has not seen.
    seed:
        Seed for instrument noise (kept separate from the process seed).
    gain_noise:
        1-sigma relative gain error of the SMU current readout.
    noise_floor:
        Additive RMS current noise [A] — the pA-class floor of a real
        B1500A at these integration settings.
    thermal_jitter:
        1-sigma stage-temperature fluctuation [K] induced by probe heat
        flux (paper: 3.5 K .. 8.5 K span).
    """

    def __init__(
        self,
        silicon: FinFETParams,
        seed: int = 0,
        gain_noise: float = 0.01,
        noise_floor: float = 1.0e-12,
        thermal_jitter: float = 1.5,
    ):
        self._device = CryoFinFET(silicon)
        self._rng = np.random.default_rng(seed)
        self.gain_noise = gain_noise
        self.noise_floor = noise_floor
        self.thermal_jitter = thermal_jitter
        self.min_stable_temperature = T_MIN_STABLE

    @property
    def polarity(self) -> str:
        """Polarity of the device currently on the chuck."""
        return self._device.params.polarity

    def _true_temperature(self, setpoint: float) -> float:
        jitter = float(self._rng.normal(0.0, self.thermal_jitter))
        return max(2.0, setpoint + jitter)

    def measure_point(self, vgs: float, vds: float, temperature_setpoint: float) -> MeasurementPoint:
        """Apply one bias point and read back the drain current."""
        if temperature_setpoint < self.min_stable_temperature:
            raise ValueError(
                f"setpoint {temperature_setpoint} K below the stable limit "
                f"({self.min_stable_temperature} K): probe heat flux makes "
                "lower temperatures unstable"
            )
        t_true = self._true_temperature(temperature_setpoint)
        ids = float(self._device.ids(vgs, vds, t_true))
        gain = 1.0 + float(self._rng.normal(0.0, self.gain_noise))
        noise = float(self._rng.normal(0.0, self.noise_floor))
        return MeasurementPoint(vgs, vds, temperature_setpoint, ids * gain + noise)

    def sweep_ids_vgs(
        self,
        vds: float,
        temperature_setpoint: float,
        vgs_stop: float = 0.7,
        points: int = 71,
    ) -> SweepResult:
        """Run a transfer-characteristic sweep (the Fig. 1 stimulus).

        For p-devices the sweep is reflected to negative gate/drain
        voltages automatically, matching how the instrument script
        would drive the opposite polarity.
        """
        sign = 1.0 if self.polarity == "n" else -1.0
        vgs_values = sign * np.linspace(0.0, abs(vgs_stop), points)
        vds_signed = sign * abs(vds)
        currents = np.empty(points)
        for i, vgs in enumerate(vgs_values):
            currents[i] = self.measure_point(float(vgs), float(vds_signed), temperature_setpoint).ids
        return SweepResult(vgs_values, currents, float(vds_signed), temperature_setpoint)


def paper_measurement_campaign(
    seed: int = 2023,
    temperatures: Sequence[float] = (300.0, 200.0, 77.0, 10.0),
    vds_low: float = 0.05,
    vds_high: float = 0.75,
) -> dict[str, list[SweepResult]]:
    """Reproduce the paper's full measurement campaign (Fig. 1 b, c).

    Measures n- and p-FinFETs at low (50 mV) and high (750 mV) |V_ds|
    across the temperature ladder from 300 K down to 10 K.  Returns a
    dict keyed by polarity with all sweeps.
    """
    results: dict[str, list[SweepResult]] = {"n": [], "p": []}
    for polarity, base in (("n", default_nfet_5nm()), ("p", default_pfet_5nm())):
        silicon = perturbed_silicon(base, seed=seed if polarity == "n" else seed + 1)
        station = CryoProbeStation(silicon, seed=seed + 17)
        for temperature in temperatures:
            for vds in (vds_low, vds_high):
                results[polarity].append(station.sweep_ids_vgs(vds, temperature))
    return results
