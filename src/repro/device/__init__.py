"""Cryogenic-aware FinFET device layer.

Implements the paper's Section II: a BSIM-CMG-class compact model with
cryogenic physics extensions, a synthetic measurement substrate
standing in for the 5 nm FinFET probe-station campaign, and the
calibration/validation loop between the two.
"""

from .constants import BOLTZMANN, ELEMENTARY_CHARGE, T_REF, T_MIN_STABLE, thermal_voltage
from .bsimcmg import (
    CryoFinFET,
    FinFETParams,
    default_nfet_5nm,
    default_pfet_5nm,
    sweep_ids_vgs,
)
from .measurement import (
    CryoProbeStation,
    MeasurementPoint,
    SweepResult,
    paper_measurement_campaign,
    perturbed_silicon,
)
from .calibration import CalibrationResult, calibrate, validate, parameter_recovery_error

__all__ = [
    "BOLTZMANN",
    "ELEMENTARY_CHARGE",
    "T_REF",
    "T_MIN_STABLE",
    "thermal_voltage",
    "CryoFinFET",
    "FinFETParams",
    "default_nfet_5nm",
    "default_pfet_5nm",
    "sweep_ids_vgs",
    "CryoProbeStation",
    "MeasurementPoint",
    "SweepResult",
    "paper_measurement_campaign",
    "perturbed_silicon",
    "CalibrationResult",
    "calibrate",
    "validate",
    "parameter_recovery_error",
]
