"""Monte-Carlo process-variation analysis.

Samples device parameter sets around the calibrated nominal (the same
die-to-die spread model the synthetic probe station uses), rebuilds
the technology per sample, and collects cell-level figure-of-merit
distributions.  The cryogenic literature's key observation is
reproduced by construction: at deep-cryogenic temperatures the
band-tail parameter spread dominates subthreshold behaviour, while at
room temperature the classical V_th/mobility spread governs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .. import obs
from ..pdk.technology import Technology, cryo5_technology
from .bsimcmg import CryoFinFET, FinFETParams

#: 1-sigma relative spreads per parameter (die-to-die).
VARIATION_SIGMA: dict[str, float] = {
    "vth0": 0.03,
    "ideality": 0.02,
    "band_tail_temperature": 0.08,
    "mu_phonon_300": 0.05,
    "mu_saturation": 0.05,
}


def sample_params(base: FinFETParams, rng: np.random.Generator) -> FinFETParams:
    """Draw one process sample around ``base``."""
    updates = {}
    for name, sigma in VARIATION_SIGMA.items():
        value = getattr(base, name)
        updates[name] = value * float(1.0 + rng.normal(0.0, sigma))
    updates["ideality"] = max(1.0, updates["ideality"])
    updates["band_tail_temperature"] = max(1.0, updates["band_tail_temperature"])
    return replace(base, **updates)


@dataclass(frozen=True)
class MonteCarloResult:
    """Distribution summary of one figure of merit."""

    temperature: float
    samples: np.ndarray

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples))

    @property
    def sigma_over_mu(self) -> float:
        """Relative spread — the variability metric designers track."""
        return self.std / self.mean if self.mean else 0.0


def mc_device_metric(
    metric,
    base: FinFETParams,
    temperature: float,
    n_samples: int = 64,
    seed: int = 0,
    jobs: int = 1,
) -> MonteCarloResult:
    """Monte-Carlo sweep of a scalar device metric.

    ``metric(device, temperature) -> float`` is evaluated on each
    sampled :class:`CryoFinFET`.  All parameter sets are drawn up
    front from one sequential RNG stream, so the result is identical
    for any ``jobs`` value; the metric evaluations then fan out over
    ``jobs`` workers (:func:`repro.obs.parallel_map`).
    """
    if n_samples < 2:
        raise ValueError("need at least two samples")
    rng = np.random.default_rng(seed)
    devices = [CryoFinFET(sample_params(base, rng)) for _ in range(n_samples)]
    values = np.asarray(
        obs.parallel_map(lambda dev: float(metric(dev, temperature)), devices, jobs=jobs)
    )
    return MonteCarloResult(temperature, values)


def _sample_technologies(
    technology: Technology, n_samples: int, seed: int
) -> list[Technology]:
    """Draw ``n_samples`` perturbed technologies from one RNG stream."""
    rng = np.random.default_rng(seed)
    return [
        replace(
            technology,
            nfet=sample_params(technology.nfet, rng),
            pfet=sample_params(technology.pfet, rng),
        )
        for _ in range(n_samples)
    ]


def mc_cell_delay(
    cell_template,
    temperature: float,
    n_samples: int = 48,
    seed: int = 0,
    technology: Technology | None = None,
    jobs: int = 1,
) -> MonteCarloResult:
    """Monte-Carlo distribution of one cell's typical delay [s].

    Each sample perturbs both device polarities and re-characterizes
    the cell with the analytic backend; the per-sample
    characterizations fan out over ``jobs`` workers with results
    independent of the worker count (sampling happens up front).
    """
    from ..charlib.analytic import AnalyticCharacterizer

    if n_samples < 2:
        raise ValueError("need at least two samples")
    technology = technology or cryo5_technology()

    def one(tech_i: Technology) -> float:
        characterizer = AnalyticCharacterizer(tech_i, temperature)
        return characterizer.characterize_cell(cell_template).typical_delay()

    samples = _sample_technologies(technology, n_samples, seed)
    values = np.asarray(obs.parallel_map(one, samples, jobs=jobs))
    return MonteCarloResult(temperature, values)


def mc_cell_leakage(
    cell_template,
    temperature: float,
    n_samples: int = 48,
    seed: int = 0,
    technology: Technology | None = None,
    jobs: int = 1,
) -> MonteCarloResult:
    """Monte-Carlo distribution of one cell's average leakage [W]."""
    from ..charlib.analytic import AnalyticCharacterizer

    if n_samples < 2:
        raise ValueError("need at least two samples")
    technology = technology or cryo5_technology()

    def one(tech_i: Technology) -> float:
        characterizer = AnalyticCharacterizer(tech_i, temperature)
        return characterizer.characterize_cell(cell_template).leakage_average

    samples = _sample_technologies(technology, n_samples, seed)
    values = np.asarray(obs.parallel_map(one, samples, jobs=jobs))
    return MonteCarloResult(temperature, values)
