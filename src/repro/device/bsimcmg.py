"""Cryogenic-aware FinFET compact model (BSIM-CMG surrogate).

This module implements the charge-based surrogate of the industry
standard BSIM-CMG model that the paper extends for cryogenic operation
(Section II).  The drain-current core follows the EKV formulation

    I_ds = I_s * [ F((V_p - V_s)/v_t) - F((V_p - V_d)/v_t) ],
    F(u)  = ln(1 + exp(u / 2))^2,

which interpolates smoothly between weak inversion (exponential
subthreshold conduction) and strong inversion (square-law / velocity
saturated conduction).  On top of the core we apply the cryogenic
physics from :mod:`repro.device.thermal`:

* temperature-dependent threshold voltage with freeze-out knee,
* band-tail-limited effective thermal voltage (subthreshold-swing
  saturation at deep-cryogenic temperatures),
* Matthiessen mobility (phonon + surface-roughness limits),
* temperature-dependent saturation velocity,
* DIBL and channel-length modulation,
* a cryogenic gate-capacitance reduction factor.

The model is smooth and vectorized (numpy-friendly) so it can serve
both the Newton-based SPICE engine (:mod:`repro.spice`) and the
library-characterization backends (:mod:`repro.charlib`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np

from .constants import T_REF
from . import thermal


def _softplus(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable ``ln(1 + exp(x))``."""
    x = np.asarray(x, dtype=float)
    out = np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))
    return out


def ids_core(
    vgs: np.ndarray | float,
    vds: np.ndarray | float,
    *,
    sign: np.ndarray | float,
    vt: np.ndarray | float,
    ideality: np.ndarray | float,
    vth_base: np.ndarray | float,
    dibl: np.ndarray | float,
    i_spec: np.ndarray | float,
    ec_l: np.ndarray | float,
    clm: np.ndarray | float,
    floor_mag: np.ndarray | float,
) -> np.ndarray:
    """The EKV drain-current core as a pure elementwise kernel.

    Every parameter may be a scalar or an array broadcast against the
    bias arrays — this single function backs both the per-device
    :meth:`CryoFinFET.ids` evaluation (scalar parameters) and the
    batched SPICE stamping kernel, which precomputes the
    temperature-derived parameter arrays once per simulator and
    evaluates all devices of a circuit in one call
    (:meth:`CryoFinFET.kernel_params` provides the parameter tuple).
    Keeping one formula is what makes the scalar and vector kernel
    paths differentially comparable to ~1e-15.
    """
    vg = sign * np.asarray(vgs, dtype=float)
    vd = sign * np.asarray(vds, dtype=float)

    # Drain/source swap for negative vds so the model stays
    # symmetric (SPICE convention).
    swap = vd < 0.0
    vd_eff = np.abs(vd)
    vg_eff = np.where(swap, vg - vd, vg)

    vth = vth_base - dibl * vd_eff

    # EKV pinch-off voltage and forward/reverse currents.
    u_f = (vg_eff - vth) / (ideality * vt)
    u_r = u_f - vd_eff / vt
    sp_fwd = _softplus(u_f / 2.0)
    f_fwd = sp_fwd**2
    f_rev = _softplus(u_r / 2.0) ** 2
    i_core = i_spec * (f_fwd - f_rev)

    # Velocity saturation: degrade with the smooth overdrive.
    v_ov = 2.0 * ideality * vt * sp_fwd
    i_core = i_core / (1.0 + v_ov / ec_l)

    # Channel-length modulation.
    i_core = i_core * (1.0 + clm * vd_eff)

    # Leakage floor (does not freeze out at cryo).
    floor = floor_mag * np.tanh(vd_eff / 0.05)
    i_core = i_core + floor

    return sign * np.where(swap, -i_core, i_core)


@dataclass(frozen=True)
class FinFETParams:
    """Parameter set of the cryogenic-aware FinFET surrogate model.

    The defaults describe a commercial-5 nm-class n-FinFET.  All
    parameters are physical SI quantities; ``polarity`` selects n- or
    p-type behaviour (the p-device is modeled by source/drain/gate
    voltage reflection with its own parameter values).
    """

    polarity: str = "n"
    #: Threshold voltage at 300 K [V] (magnitude).
    vth0: float = 0.25
    #: Subthreshold ideality factor n (>= 1).
    ideality: float = 1.25
    #: Threshold temperature coefficient [V/K]; V_th rises by this much
    #: per kelvin of cooling (before the freeze-out knee flattens it).
    vth_temp_coeff: float = 4.5e-4
    #: Freeze-out knee temperature [K] for the V_th(T) law.
    freezeout_knee: float = 50.0
    #: Band-tail temperature [K] pinning the subthreshold swing floor.
    band_tail_temperature: float = 35.0
    #: Phonon-limited mobility at 300 K [m^2/Vs].
    mu_phonon_300: float = 0.040
    #: Temperature-insensitive mobility limit [m^2/Vs]
    #: (surface roughness + Coulomb scattering).
    mu_saturation: float = 0.065
    #: Phonon mobility exponent alpha in (300/T)^alpha.
    mu_exponent: float = 1.5
    #: Saturation velocity at 300 K [m/s].
    vsat_300: float = 1.0e5
    #: DIBL coefficient [V/V].
    dibl: float = 0.055
    #: Channel-length modulation [1/V].
    clm: float = 0.08
    #: Gate length [m].
    length: float = 18e-9
    #: Fin height [m].
    fin_height: float = 50e-9
    #: Fin (body) thickness [m].
    fin_thickness: float = 6e-9
    #: Number of fins.
    nfin: int = 2
    #: Gate-oxide capacitance per area [F/m^2] (EOT ~ 0.8 nm).
    cox: float = 0.0431
    #: Gate-overlap (parasitic) capacitance per fin [F].
    overlap_cap_per_fin: float = 2.0e-17
    #: Relative gate-capacitance reduction at 0 K (surface-potential shift).
    cryo_cap_reduction: float = 0.04
    #: Leakage floor per fin [A] (GIDL / junction / gate components that
    #: do not freeze out); keeps OFF current physical at deep cryo.
    ioff_floor_per_fin: float = 5.0e-16

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.vth0 <= 0.0:
            raise ValueError("vth0 is a magnitude and must be positive")
        if self.ideality < 1.0:
            raise ValueError("ideality factor must be >= 1")
        if self.nfin < 1:
            raise ValueError("device needs at least one fin")
        for name in ("length", "fin_height", "fin_thickness", "cox"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")

    @property
    def width(self) -> float:
        """Effective electrical width [m]: nfin * (2 h_fin + t_fin)."""
        return self.nfin * (2.0 * self.fin_height + self.fin_thickness)

    def with_fins(self, nfin: int) -> "FinFETParams":
        """Return a copy of the parameter set with a different fin count."""
        return replace(self, nfin=nfin)


def default_nfet_5nm(nfin: int = 2) -> FinFETParams:
    """Parameters of the commercial-5 nm-class n-FinFET used in the paper."""
    return FinFETParams(polarity="n", nfin=nfin)


def default_pfet_5nm(nfin: int = 2) -> FinFETParams:
    """Parameters of the commercial-5 nm-class p-FinFET used in the paper.

    The p-device carries the usual mobility penalty (holes) which the
    layout compensates with wider fins / more fins at the cell level.
    """
    return FinFETParams(
        polarity="p",
        vth0=0.27,
        ideality=1.30,
        vth_temp_coeff=5.0e-4,
        mu_phonon_300=0.022,
        mu_saturation=0.038,
        vsat_300=0.85e5,
        dibl=0.060,
        nfin=nfin,
    )


class CryoFinFET:
    """Evaluatable cryogenic-aware FinFET device.

    The class binds a :class:`FinFETParams` set and exposes the
    terminal current and small-signal quantities as functions of
    terminal voltages and temperature.  Sign conventions follow SPICE:
    for an n-FET, positive ``vgs``/``vds`` and positive ``ids`` flowing
    drain->source; the p-FET accepts negative ``vgs``/``vds`` and
    returns negative ``ids``.
    """

    def __init__(self, params: FinFETParams):
        self.params = params

    # ------------------------------------------------------------------
    # Temperature-dependent derived quantities
    # ------------------------------------------------------------------
    def threshold_voltage(self, temperature_k: float) -> float:
        """V_th magnitude [V] at the given temperature."""
        p = self.params
        return p.vth0 + thermal.threshold_shift(
            temperature_k, p.vth_temp_coeff, p.freezeout_knee
        )

    def effective_thermal_voltage(self, temperature_k: float) -> float:
        """Band-tail-limited effective thermal voltage [V]."""
        return thermal.effective_thermal_voltage(
            temperature_k, self.params.band_tail_temperature
        )

    def subthreshold_swing(self, temperature_k: float) -> float:
        """Subthreshold swing [V/dec] at the given temperature."""
        return thermal.subthreshold_swing(
            temperature_k, self.params.band_tail_temperature, self.params.ideality
        )

    def mobility(self, temperature_k: float) -> float:
        """Effective channel mobility [m^2/Vs] at the given temperature."""
        p = self.params
        return thermal.effective_mobility(
            temperature_k, p.mu_phonon_300, p.mu_saturation, p.mu_exponent
        )

    def specific_current(self, temperature_k: float) -> float:
        """EKV specific current I_s [A] at the given temperature."""
        p = self.params
        vt = self.effective_thermal_voltage(temperature_k)
        mu = self.mobility(temperature_k)
        return 2.0 * p.ideality * mu * p.cox * (p.width / p.length) * vt * vt

    # ------------------------------------------------------------------
    # Terminal current
    # ------------------------------------------------------------------
    def kernel_params(self, temperature_k: float = T_REF) -> dict[str, float]:
        """Temperature-resolved parameter set for :func:`ids_core`.

        The batched SPICE kernel calls this once per device at
        simulator-build time, stacks the values into arrays, and then
        evaluates :func:`ids_core` for the whole circuit in one shot
        per Newton iteration — the temperature-derived quantities
        (threshold shift, band-tail thermal voltage, Matthiessen
        mobility, velocity saturation) are never recomputed on the
        iteration hot path.
        """
        p = self.params
        mu = self.mobility(temperature_k)
        vsat = thermal.saturation_velocity(temperature_k, p.vsat_300)
        return {
            "sign": 1.0 if p.polarity == "n" else -1.0,
            "vt": self.effective_thermal_voltage(temperature_k),
            "ideality": p.ideality,
            "vth_base": self.threshold_voltage(temperature_k),
            "dibl": p.dibl,
            "i_spec": self.specific_current(temperature_k),
            "ec_l": 2.0 * vsat / mu * p.length,
            "clm": p.clm,
            "floor_mag": p.ioff_floor_per_fin * p.nfin,
        }

    def ids(
        self,
        vgs: np.ndarray | float,
        vds: np.ndarray | float,
        temperature_k: float = T_REF,
    ) -> np.ndarray | float:
        """Drain current [A] (vectorized over ``vgs``/``vds``).

        For p-devices pass the physically signed (negative) voltages;
        the returned current is negative (conventional drain current).
        """
        result = ids_core(vgs, vds, **self.kernel_params(temperature_k))
        if np.isscalar(vgs) and np.isscalar(vds):
            return float(result)
        return result

    # ------------------------------------------------------------------
    # Small-signal quantities (central differences; the model is smooth)
    # ------------------------------------------------------------------
    def gm(
        self,
        vgs: np.ndarray | float,
        vds: np.ndarray | float,
        temperature_k: float = T_REF,
        dv: float = 1e-4,
    ) -> np.ndarray | float:
        """Transconductance dI_ds/dV_gs [S] (vectorized like :meth:`ids`)."""
        vgs_arr = np.asarray(vgs, dtype=float)
        hi = self.ids(vgs_arr + dv, vds, temperature_k)
        lo = self.ids(vgs_arr - dv, vds, temperature_k)
        result = (np.asarray(hi) - np.asarray(lo)) / (2.0 * dv)
        if np.isscalar(vgs) and np.isscalar(vds):
            return float(result)
        return result

    def gds(
        self,
        vgs: np.ndarray | float,
        vds: np.ndarray | float,
        temperature_k: float = T_REF,
        dv: float = 1e-4,
    ) -> np.ndarray | float:
        """Output conductance dI_ds/dV_ds [S] (vectorized like :meth:`ids`)."""
        vds_arr = np.asarray(vds, dtype=float)
        hi = self.ids(vgs, vds_arr + dv, temperature_k)
        lo = self.ids(vgs, vds_arr - dv, temperature_k)
        result = (np.asarray(hi) - np.asarray(lo)) / (2.0 * dv)
        if np.isscalar(vgs) and np.isscalar(vds):
            return float(result)
        return result

    def ids_gm_gds(
        self,
        vgs: np.ndarray | float,
        vds: np.ndarray | float,
        temperature_k: float = T_REF,
        dv: float = 1e-4,
    ) -> tuple[np.ndarray | float, np.ndarray | float, np.ndarray | float]:
        """Batched ``(I_ds, g_m, g_ds)`` evaluation in one model call.

        This is the hot-path kernel behind the vectorized SPICE stamping
        (``REPRO_KERNEL=vector``): all five bias points of the central-
        difference stencil for every device are concatenated into a
        single :meth:`ids` evaluation, so the per-call numpy dispatch
        overhead is paid once per device *group* instead of five times
        per device.  The derivatives use the same ``dv`` stencil as
        :meth:`gm`/:meth:`gds`, keeping the two paths differentially
        comparable.
        """
        scalar_in = np.isscalar(vgs) and np.isscalar(vds)
        vgs_arr, vds_arr = np.broadcast_arrays(
            np.atleast_1d(np.asarray(vgs, dtype=float)),
            np.atleast_1d(np.asarray(vds, dtype=float)),
        )
        n = vgs_arr.shape[0]
        vg_stencil = np.concatenate(
            [vgs_arr, vgs_arr + dv, vgs_arr - dv, vgs_arr, vgs_arr]
        )
        vd_stencil = np.concatenate(
            [vds_arr, vds_arr, vds_arr, vds_arr + dv, vds_arr - dv]
        )
        i = np.asarray(self.ids(vg_stencil, vd_stencil, temperature_k))
        ids = i[:n]
        gm = (i[n : 2 * n] - i[2 * n : 3 * n]) / (2.0 * dv)
        gds = (i[3 * n : 4 * n] - i[4 * n : 5 * n]) / (2.0 * dv)
        if scalar_in:
            return float(ids[0]), float(gm[0]), float(gds[0])
        return ids, gm, gds

    # ------------------------------------------------------------------
    # Charge / capacitance
    # ------------------------------------------------------------------
    def gate_capacitance(
        self,
        vgs: float | np.ndarray = None,
        temperature_k: float = T_REF,
    ) -> float | np.ndarray:
        """Total gate capacitance [F].

        A logistic transition from the parasitic overlap floor (deep
        depletion) to full ``C_ox * W * L`` plus overlap (inversion),
        scaled by the cryogenic surface-potential factor.  With
        ``vgs=None`` the strong-inversion (worst-case) value is
        returned — this is what the characterization engine uses for
        input-pin capacitance.
        """
        p = self.params
        factor = thermal.gate_capacitance_factor(temperature_k, p.cryo_cap_reduction)
        c_ox_full = p.cox * p.width * p.length * factor
        c_par = p.overlap_cap_per_fin * p.nfin * 2.0  # source + drain overlap
        if vgs is None:
            return c_ox_full + c_par
        sign = 1.0 if p.polarity == "n" else -1.0
        vg = sign * np.asarray(vgs, dtype=float)
        vth = self.threshold_voltage(temperature_k)
        vt = self.effective_thermal_voltage(temperature_k)
        occupancy = 1.0 / (1.0 + np.exp(-(vg - vth) / (4.0 * max(vt, 0.005))))
        result = c_par + c_ox_full * (0.35 + 0.65 * occupancy)
        if np.isscalar(vgs):
            return float(result)
        return result

    # ------------------------------------------------------------------
    # Figures of merit
    # ------------------------------------------------------------------
    def on_current(self, vdd: float, temperature_k: float = T_REF) -> float:
        """|I_on| [A] at |V_gs| = |V_ds| = V_dd."""
        sign = 1.0 if self.params.polarity == "n" else -1.0
        return abs(float(self.ids(sign * vdd, sign * vdd, temperature_k)))

    def off_current(self, vdd: float, temperature_k: float = T_REF) -> float:
        """|I_off| [A] at V_gs = 0, |V_ds| = V_dd."""
        sign = 1.0 if self.params.polarity == "n" else -1.0
        return abs(float(self.ids(0.0, sign * vdd, temperature_k)))


def sweep_ids_vgs(
    device: CryoFinFET,
    vgs_values: Iterable[float],
    vds: float,
    temperature_k: float,
) -> np.ndarray:
    """Convenience transfer-characteristic sweep -> I_ds array [A]."""
    vgs_arr = np.asarray(list(vgs_values), dtype=float)
    return np.asarray(device.ids(vgs_arr, np.full_like(vgs_arr, vds), temperature_k))
