"""cryo-eda: reproduction of "Design Automation for Cryogenic CMOS
Circuits" (DAC 2023).

Subpackages follow the paper's abstraction ladder:

- :mod:`repro.device`   -- cryogenic-aware FinFET compact model (Sec. II)
- :mod:`repro.spice`    -- circuit simulation substrate
- :mod:`repro.pdk`      -- ASAP7-class cells and technology
- :mod:`repro.charlib`  -- standard-cell characterization + liberty (Sec. III)
- :mod:`repro.sat`      -- CDCL solver / equivalence checking
- :mod:`repro.synth`    -- AIG logic synthesis algorithms (Sec. IV-A)
- :mod:`repro.mapping`  -- technology mapping with cost-priority lists (Sec. IV-B)
- :mod:`repro.sta`      -- signoff timing and power analysis
- :mod:`repro.benchgen` -- EPFL benchmark circuit generators
- :mod:`repro.io`       -- AIGER / BLIF / Verilog / liberty interchange
- :mod:`repro.core`     -- the end-to-end flow + experiments (Sec. V)
"""

__version__ = "1.0.0"
