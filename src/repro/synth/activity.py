"""Switching-activity estimation.

ABC's power-aware algorithms "simulate the switching activity of each
node in the given network assuming a certain activation rate for each
primary input" (Section IV-B).  Two estimators are provided:

* **probabilistic** — static signal probabilities propagated under the
  independence assumption; activity per node is the temporal toggle
  probability ``2 p (1 - p)``;
* **simulation** — bit-parallel random-vector simulation counting
  actual toggles between consecutive vectors (the reference).

Both return per-node activity in toggles per cycle.
"""

from __future__ import annotations

import random

from .aig import AIG, lit_is_compl, lit_var

#: Default primary-input activation rate (probability of logic 1).
DEFAULT_PI_PROBABILITY = 0.5


def signal_probabilities(aig: AIG, pi_probability: float = DEFAULT_PI_PROBABILITY) -> list[float]:
    """Probability of each node being 1 (independence assumption)."""
    if not 0.0 <= pi_probability <= 1.0:
        raise ValueError("PI probability must lie in [0, 1]")
    prob = [0.0] * aig.num_nodes
    for node in aig.pis:
        prob[node] = pi_probability
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        p0 = prob[lit_var(f0)]
        if lit_is_compl(f0):
            p0 = 1.0 - p0
        p1 = prob[lit_var(f1)]
        if lit_is_compl(f1):
            p1 = 1.0 - p1
        prob[node] = p0 * p1
    return prob


def node_activities(aig: AIG, pi_probability: float = DEFAULT_PI_PROBABILITY) -> list[float]:
    """Toggle rate per node: ``2 p (1-p)`` under temporal independence."""
    return [2.0 * p * (1.0 - p) for p in signal_probabilities(aig, pi_probability)]


def simulated_activities(aig: AIG, vectors: int = 512, seed: int = 0) -> list[float]:
    """Toggle rate per node measured on random vector pairs."""
    if vectors < 2:
        raise ValueError("need at least two vectors to observe toggles")
    rng = random.Random(seed)
    words = [rng.getrandbits(vectors) for _ in aig.pis]
    values = aig.simulate_nodes(words, vectors)
    result = [0.0] * aig.num_nodes
    pair_mask = (1 << (vectors - 1)) - 1
    for node in range(1, aig.num_nodes):
        word = values[node]
        toggles = bin((word ^ (word >> 1)) & pair_mask).count("1")
        result[node] = toggles / (vectors - 1)
    return result
