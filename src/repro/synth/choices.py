"""Structural choices (ABC's ``dch``).

Running several synthesis recipes produces structurally different but
functionally equivalent networks; ``dch`` superimposes them so that
the mapper can pick, cut by cut, whichever structure maps best.  The
implementation:

1. builds snapshot variants (original, rewritten, balanced,
   refactored) over shared primary inputs,
2. unions them into one combined AIG (structural hashing merges the
   common parts),
3. groups nodes into equivalence classes by bit-parallel simulation
   signatures and proves each class member against its representative
   with the CDCL solver (budgeted; unproven members are dropped).

The result feeds :func:`repro.synth.lutmap.map_luts`, which merges the
cut sets of all class members.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..sat.solver import Solver
from ..sat.tseitin import AIGEncoder
from .aig import AIG, CONST0, lit_var
from .balance import balance
from .refactor import refactor
from .rewrite import rewrite


@dataclass
class ChoiceAIG:
    """A choice-augmented network.

    ``aig`` contains all variants; ``representative[n]`` is the class
    representative node of ``n`` (the smallest id), and ``phase[n]``
    is True when ``n`` implements the *complement* of its
    representative.  ``members[r]`` lists the class of representative
    ``r`` (including ``r`` itself).
    """

    aig: AIG
    representative: list[int]
    phase: list[bool]
    members: dict[int, list[int]] = field(default_factory=dict)

    @property
    def num_classes_with_choices(self) -> int:
        return sum(1 for nodes in self.members.values() if len(nodes) > 1)


def _default_scripts() -> list:
    return [
        lambda aig: aig,
        lambda aig: rewrite(aig),
        lambda aig: balance(aig),
        lambda aig: refactor(aig),
    ]


def compute_choices(
    aig: AIG,
    scripts: list | None = None,
    patterns: int = 256,
    sat_conflict_limit: int = 300,
    max_sat_proofs: int = 500,
    seed: int = 0,
) -> ChoiceAIG:
    """Build the choice-augmented network from snapshot variants.

    ``max_sat_proofs`` bounds the total SAT effort: once exhausted,
    remaining signature groups keep their members unproven (they are
    simply not offered as choices -- never guessed equivalent).
    """
    scripts = scripts if scripts is not None else _default_scripts()
    variants = [script(aig) for script in scripts]

    # Union all variants over shared PIs.
    combined = AIG(aig.name)
    pi_lits = [combined.add_pi(name) for name in aig.pi_names]
    po_lits: list[int] = []
    for v_index, variant in enumerate(variants):
        if variant.num_pis != aig.num_pis or variant.num_pos != aig.num_pos:
            raise ValueError("choice script changed the network interface")
        mapping: dict[int, int] = {0: CONST0}
        for i, node in enumerate(variant.pis):
            mapping[node] = pi_lits[i]
        for node in variant.and_nodes():
            f0, f1 = variant.fanins(node)
            a = mapping[lit_var(f0)] ^ (f0 & 1)
            b = mapping[lit_var(f1)] ^ (f1 & 1)
            mapping[node] = combined.add_and(a, b)
        if v_index == 0:
            for po, name in zip(variant.pos, variant.po_names):
                po_lits.append(mapping[lit_var(po)] ^ (po & 1))
                combined.add_po(po_lits[-1], name)

    # Signatures on the combined network.
    rng = random.Random(seed)
    words = [rng.getrandbits(patterns) for _ in combined.pis]
    values = combined.simulate_nodes(words, patterns)
    mask = (1 << patterns) - 1

    groups: dict[int, list[tuple[int, bool]]] = {}
    for node in range(1, combined.num_nodes):
        sig = values[node]
        canon = min(sig, sig ^ mask)
        groups.setdefault(canon, []).append((node, sig != canon))

    representative = list(range(combined.num_nodes))
    phase = [False] * combined.num_nodes
    members: dict[int, list[int]] = {}

    solver = Solver()
    encoder = AIGEncoder(solver)
    node_var = encoder.encode(combined)

    proofs = [0]

    def proved_equal(a_var: int, b_var: int) -> bool:
        if proofs[0] >= max_sat_proofs:
            return False
        proofs[0] += 1
        x = solver.new_var()
        solver.add_clause([-x, a_var, b_var])
        solver.add_clause([-x, -a_var, -b_var])
        result = solver.solve(assumptions=[x], conflict_limit=sat_conflict_limit)
        solver.add_clause([-x])
        return result is False

    for canon, entries in groups.items():
        if len(entries) < 2:
            node, _ = entries[0]
            members[node] = [node]
            continue
        entries.sort()
        repr_node, repr_flipped = entries[0]
        cls = [repr_node]
        for node, flipped in entries[1:]:
            rel_phase = flipped != repr_flipped
            a = node_var[repr_node]
            b = node_var[node] * (-1 if rel_phase else 1)
            if proved_equal(a, b):
                representative[node] = repr_node
                phase[node] = rel_phase
                cls.append(node)
            else:
                members.setdefault(node, [node])
        members[repr_node] = cls

    return ChoiceAIG(combined, representative, phase, members)
