"""DAG-aware cut rewriting (the AIG counterpart of ABC's ``rewrite``).

For every AND node, 4-feasible cuts are enumerated, NPN-canonicalized,
and looked up in a structure library; a replacement is accepted when
the nodes it frees (the cut's MFFC) outweigh the nodes it adds.  The
structure library is built on demand: each canonical class gets a
compact implementation from ISOP + algebraic factoring, with optimal
hand-crafted structures seeded for the ubiquitous classes (XOR, MUX,
MAJ) where factoring is weak.

Replacements are chosen greedily over disjoint MFFCs and applied in a
single reconstruction pass, which keeps the transformation linear and
trivially verifiable (the pass is self-checked by CEC in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from .aig import AIG, CONST0, lit_not, lit_var
from .cuts import Cut, cut_cone_nodes, enumerate_cuts, mffc_size
from .isop import build_function
from .truth import npn_canon, tt_mask


@dataclass
class Structure:
    """A replacement structure: a mini-AIG over ``k`` inputs."""

    aig: AIG
    output: int

    @property
    def cost(self) -> int:
        return self.aig.num_ands

    def instantiate(self, target: AIG, leaf_lits: list[int]) -> int:
        """Copy the structure into ``target`` on the given leaves."""
        mapping = {0: CONST0}
        for i, node in enumerate(self.aig.pis):
            mapping[node] = leaf_lits[i]
        for node in self.aig.and_nodes():
            f0, f1 = self.aig.fanins(node)
            a = mapping[lit_var(f0)] ^ (f0 & 1)
            b = mapping[lit_var(f1)] ^ (f1 & 1)
            mapping[node] = target.add_and(a, b)
        return mapping[lit_var(self.output)] ^ (self.output & 1)


class StructureLibrary:
    """NPN-class -> best known structure, built lazily."""

    def __init__(self, k: int = 4):
        self.k = k
        self._by_canon: dict[int, Structure] = {}
        self._seed_special_classes()

    def _seed_special_classes(self) -> None:
        """Register optimal structures for XOR/MUX/MAJ-type classes."""

        def register(build) -> None:
            # Determine the builder's function and its canonical class.
            probe = AIG()
            probe_lits = [probe.add_pi() for _ in range(self.k)]
            probe_out = build(probe, probe_lits)
            probe.add_po(probe_out)
            tt = self._structure_tt(probe, probe_out)
            canon, perm, neg_mask, out_neg = npn_canon(tt, self.k)
            # Build a structure that implements the canonical
            # representative itself: canon(y) = out_neg ^ tt(x) with
            # x[perm[p]] = y[p] ^ neg(perm[p]).
            mini = AIG()
            y = [mini.add_pi() for _ in range(self.k)]
            x = [CONST0] * self.k
            for p in range(self.k):
                lit = y[p]
                if (neg_mask >> perm[p]) & 1:
                    lit = lit_not(lit)
                x[perm[p]] = lit
            out = build(mini, x)
            if out_neg:
                out = lit_not(out)
            mini.add_po(out)
            current = self._by_canon.get(canon)
            if current is None or mini.num_ands < current.cost:
                self._by_canon[canon] = Structure(mini, out)

        register(lambda g, x: g.add_xor(x[0], x[1]))
        register(lambda g, x: g.add_xor(g.add_xor(x[0], x[1]), x[2]))
        register(lambda g, x: g.add_mux(x[0], x[1], x[2]))
        register(lambda g, x: g.add_maj(x[0], x[1], x[2]))
        register(lambda g, x: g.add_xor(g.add_and(x[0], x[1]), x[2]))
        register(lambda g, x: g.add_xor(g.add_xor(x[0], x[1]), g.add_xor(x[2], x[3])))

    def _structure_tt(self, mini: AIG, out: int) -> int:
        from .truth import tt_var

        words = [tt_var(i, self.k) for i in range(self.k)]
        value = mini.simulate(words, width=1 << self.k)
        return value[0]

    def lookup(self, tt: int, n_leaves: int) -> tuple[Structure, tuple[int, ...], int, bool]:
        """Best structure for a function, with its NPN transform.

        Returns ``(structure, perm, input_neg_mask, output_neg)``; see
        :func:`repro.synth.truth.npn_canon` for transform semantics.
        The caller instantiates the structure on transformed leaves.
        """
        # Work in the library's fixed arity: pad to k inputs.
        tt_padded = tt
        if n_leaves < self.k:
            for _ in range(n_leaves, self.k):
                tt_padded = tt_padded | (tt_padded << (1 << n_leaves))
                n_leaves += 1
            tt_padded &= tt_mask(self.k)
        canon, perm, neg_mask, out_neg = npn_canon(tt_padded, self.k)
        structure = self._by_canon.get(canon)
        if structure is None:
            mini = AIG()
            leaves = [mini.add_pi() for _ in range(self.k)]
            out = build_function(mini, canon, leaves)
            mini.add_po(out)
            structure = Structure(mini, out)
            self._by_canon[canon] = structure
        return structure, perm, neg_mask, out_neg


def _transformed_leaves(
    leaves: list[int], perm: tuple[int, ...], neg_mask: int, k: int
) -> list[int]:
    """Leaf literals to feed the canonical structure.

    ``canon = out_neg( permute( flip(tt, neg), perm ) )`` means the
    canonical function's input ``i`` corresponds to original input
    ``perm[i]``, complemented when bit ``perm[i]`` of ``neg_mask`` is
    set.
    """
    result = []
    for i in range(k):
        source = perm[i]
        lit = leaves[source] if source < len(leaves) else CONST0
        if (neg_mask >> source) & 1:
            lit = lit_not(lit)
        result.append(lit)
    return result


def rewrite(aig: AIG, k: int = 4, max_cuts: int = 8, use_zero_gain: bool = False) -> AIG:
    """One DAG-aware rewriting pass; returns the rewritten network."""
    if aig.num_ands == 0:
        return aig.cleanup()
    library = StructureLibrary(k)
    cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts)
    fanouts = aig.fanout_counts()

    # Phase 1: pick candidates.
    candidates: list[tuple[int, int, Cut, Structure, tuple, int, bool]] = []
    for node in aig.and_nodes():
        best = None
        for cut in cuts[node]:
            if not 2 <= len(cut.leaves) <= k:
                continue
            if node in cut.leaves:
                continue
            structure, perm, neg_mask, out_neg = library.lookup(cut.table, len(cut.leaves))
            saved = mffc_size(aig, node, cut.leaves, fanouts)
            gain = saved - structure.cost
            if gain > 0 or (use_zero_gain and gain == 0):
                if best is None or gain > best[0]:
                    best = (gain, node, cut, structure, perm, neg_mask, out_neg)
        if best is not None:
            candidates.append(best)

    # Phase 2: greedy disjoint selection by gain.
    candidates.sort(key=lambda c: -c[0])
    claimed: set[int] = set()
    selected: dict[int, tuple[Cut, Structure, tuple, int, bool]] = {}
    for gain, node, cut, structure, perm, neg_mask, out_neg in candidates:
        cone = cut_cone_nodes(aig, node, cut.leaves)
        if cone & claimed:
            continue
        claimed |= cone
        selected[node] = (cut, structure, perm, neg_mask, out_neg)

    obs.count("synth.rewrite.candidates", len(candidates))
    obs.count("synth.rewrite.applied", len(selected))

    if not selected:
        return aig.cleanup()

    # Phase 3: reconstruct.
    new = AIG(aig.name)
    mapping: dict[int, int] = {0: CONST0}
    for i, node in enumerate(aig.pis):
        mapping[node] = new.add_pi(aig.pi_names[i])
    for node in aig.and_nodes():
        replacement = selected.get(node)
        if replacement is not None:
            cut, structure, perm, neg_mask, out_neg = replacement
            leaf_lits = [mapping[leaf] for leaf in cut.leaves]
            lits = _transformed_leaves(leaf_lits, perm, neg_mask, library.k)
            lit = structure.instantiate(new, lits)
            mapping[node] = lit_not(lit) if out_neg else lit
        else:
            f0, f1 = aig.fanins(node)
            a = mapping[lit_var(f0)] ^ (f0 & 1)
            b = mapping[lit_var(f1)] ^ (f1 & 1)
            mapping[node] = new.add_and(a, b)
    for po, name in zip(aig.pos, aig.po_names):
        new.add_po(mapping[lit_var(po)] ^ (po & 1), name)
    return new.cleanup()
