"""Don't-care-based LUT optimization (ABC's ``mfs``).

For each LUT, observability don't-cares are computed *exactly* within
a window (the LUT's fanout nodes and their combined support): an input
pattern of the LUT is a don't-care when no assignment of the window's
inputs that produces the pattern lets the LUT's value reach any window
output.  The LUT function is then re-synthesized against the enlarged
don't-care set with ISOP, choosing the cover that minimizes literal
count — and, in power-aware mode, preferring to drop high-activity
inputs (the ``-p`` behaviour the paper's pipeline enables).

Window-exact don't-cares are a sound subset of the global don't-cares,
so every accepted change preserves functionality by construction; the
test suite additionally CECs each pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from .isop import cover_to_tt, isop
from .lutnet import LUT, LUTNetwork
from .truth import tt_mask, tt_support


#: Maximum number of window input variables to enumerate exhaustively.
MAX_WINDOW_INPUTS = 12


@dataclass
class MfsReport:
    """Statistics of one mfs pass."""

    luts_examined: int = 0
    luts_simplified: int = 0
    inputs_dropped: int = 0
    literals_saved: int = 0


def _window_dont_cares(network: LUTNetwork, lut_index: int, fanout_indices: list[int]) -> int:
    """Observability DC mask over the LUT's input space (window-exact)."""
    lut = network.luts[lut_index]
    node_id = network.lut_id(lut_index)
    k = len(lut.leaves)

    # Window inputs: the LUT's leaves plus the side inputs of fanouts.
    window_inputs: list[int] = list(lut.leaves)
    for fo in fanout_indices:
        for leaf in network.luts[fo].leaves:
            if leaf != node_id and leaf not in window_inputs:
                window_inputs.append(leaf)
    m = len(window_inputs)
    if m > MAX_WINDOW_INPUTS or not fanout_indices:
        return 0  # no (cheap) observability information

    position = {node: i for i, node in enumerate(window_inputs)}
    dc = tt_mask(k)
    care = 0
    for pattern in range(1 << m):
        values = {node: bool((pattern >> i) & 1) for node, i in position.items()}
        # LUT input pattern under this window assignment.
        local = 0
        for j, leaf in enumerate(lut.leaves):
            if values[leaf]:
                local |= 1 << j
        if (care >> local) & 1:
            continue  # already known to be observable
        # Evaluate each fanout LUT with the node low and high.
        observable = False
        for fo in fanout_indices:
            fo_lut = network.luts[fo]
            index_low = index_high = 0
            for j, leaf in enumerate(fo_lut.leaves):
                if leaf == node_id:
                    index_high |= 1 << j
                elif values[leaf]:
                    index_low |= 1 << j
                    index_high |= 1 << j
            out_low = (fo_lut.table >> index_low) & 1
            out_high = (fo_lut.table >> index_high) & 1
            if out_low != out_high:
                observable = True
                break
        if observable:
            care |= 1 << local
    return dc & ~care & tt_mask(k)


def _resynthesize(
    table: int, dc: int, k: int, input_costs: list[float]
) -> tuple[int, tuple[int, ...]] | None:
    """Minimize a LUT function against don't-cares.

    Returns (new_table, kept_input_positions) when an improvement was
    found, else None.  ``input_costs`` biases which inputs to keep
    (power-aware mode passes leaf activities).
    """
    mask = tt_mask(k)
    on = table & ~dc & mask
    cover_on = isop(on, dc, k)
    cover_off = isop(~table & ~dc & mask, dc, k)
    new_table = cover_to_tt(cover_on, k)
    # Prefer the polarity with fewer literals.
    if sum(c.literal_count() for c in cover_off) < sum(c.literal_count() for c in cover_on):
        new_table = (~cover_to_tt(cover_off, k)) & mask

    support = tt_support(new_table, k)
    old_support = tt_support(table, k)
    old_literals = len(old_support)
    if len(support) > old_literals:
        return None
    if new_table == table:
        return None
    if len(support) == old_literals and sorted(support) == sorted(old_support):
        # Same support; accept only if the table covers fewer minterms
        # of high-cost inputs -- approximated by preferring the change
        # when any don't-care was actually exploited.
        if dc == 0:
            return None
    return new_table, tuple(support)


def mfs(
    network: LUTNetwork,
    power_aware: bool = False,
    activities: list[float] | None = None,
    max_luts: int | None = None,
) -> tuple[LUTNetwork, MfsReport]:
    """One don't-care simplification pass over a LUT network."""
    report = MfsReport()
    fanout_map: dict[int, list[int]] = {}
    for index, lut in enumerate(network.luts):
        for leaf in lut.leaves:
            fanout_map.setdefault(leaf, []).append(index)
    po_nodes = {node for node, _ in network.outputs}

    new_luts: list[LUT] = [LUT(l.leaves, l.table) for l in network.luts]
    # Don't-care compatibility: a node's ODCs are justified by its
    # fanouts' *current* functions, so once a node changes, its fanout
    # functions are frozen for the rest of the pass.  Fanins are safe
    # because processing order is topological (fanins come first).
    frozen: set[int] = set()
    examined = 0
    for index in range(len(network.luts)):
        if max_luts is not None and examined >= max_luts:
            break
        if index in frozen:
            continue
        node_id = network.lut_id(index)
        lut = new_luts[index]
        k = len(lut.leaves)
        if k == 0:
            continue
        examined += 1
        report.luts_examined += 1
        # POs are always observable: only internal nodes get ODCs.
        dc = 0
        if node_id not in po_nodes:
            dc = _window_dont_cares(
                LUTNetwork(network.num_pis, new_luts, network.outputs),
                index,
                fanout_map.get(node_id, []),
            )
        costs = [1.0] * k
        if power_aware and activities is not None:
            costs = [activities[leaf] if leaf < len(activities) else 1.0 for leaf in lut.leaves]
        improved = _resynthesize(lut.table, dc, k, costs)
        if improved is None:
            continue
        new_table, support = improved
        if len(support) < k:
            # Project the table onto the surviving inputs.
            kept = list(support)
            projected = 0
            for i in range(1 << len(kept)):
                full = 0
                for j, var in enumerate(kept):
                    if (i >> j) & 1:
                        full |= 1 << var
                if (new_table >> full) & 1:
                    projected |= 1 << i
            new_leaves = tuple(lut.leaves[v] for v in kept)
            report.inputs_dropped += k - len(kept)
            new_luts[index] = LUT(new_leaves, projected)
        else:
            new_luts[index] = LUT(lut.leaves, new_table)
        report.luts_simplified += 1
        report.literals_saved += max(0, k - len(support))
        if dc != 0:
            frozen.update(fanout_map.get(node_id, []))

    result = LUTNetwork(
        network.num_pis,
        new_luts,
        list(network.outputs),
        list(network.pi_names),
        list(network.po_names),
        network.name,
    )
    obs.count("synth.mfs.luts_examined", report.luts_examined)
    obs.count("synth.mfs.luts_simplified", report.luts_simplified)
    obs.count("synth.mfs.inputs_dropped", report.inputs_dropped)
    return result, report
