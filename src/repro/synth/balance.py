"""AND-tree balancing (the AIG counterpart of ABC's ``balance``).

Maximal multi-input conjunctions are collected by walking through
non-complemented, single-fanout AND edges, then rebuilt as
minimum-depth trees: operands are combined two-at-a-time starting from
the shallowest, the Huffman-style construction that minimizes the tree
depth for given operand arrival levels.
"""

from __future__ import annotations

import heapq

from .aig import AIG, CONST0, lit_is_compl, lit_var


def _collect_conjunction(
    aig: AIG, node: int, fanouts: list[int], roots: set[int]
) -> list[int]:
    """Leaves (literals) of the maximal AND-tree rooted at ``node``."""
    leaves: list[int] = []
    stack = [aig.fanins(node)[0], aig.fanins(node)[1]]
    while stack:
        lit = stack.pop()
        child = lit_var(lit)
        if (
            not lit_is_compl(lit)
            and aig.is_and(child)
            and fanouts[child] == 1
            and child not in roots
        ):
            f0, f1 = aig.fanins(child)
            stack.append(f0)
            stack.append(f1)
        else:
            leaves.append(lit)
    return leaves


def balance(aig: AIG) -> AIG:
    """One balancing pass; returns the depth-optimized network."""
    if aig.num_ands == 0:
        return aig.cleanup()
    fanouts = aig.fanout_counts()

    # Tree roots: AND nodes referenced by a PO, by a complemented edge,
    # or by more than one fanout — everything except pure internal
    # tree nodes.
    roots: set[int] = set()
    for node in aig.and_nodes():
        if fanouts[node] != 1:
            roots.add(node)
    for po in aig.pos:
        if aig.is_and(lit_var(po)):
            roots.add(lit_var(po))
    for node in aig.and_nodes():
        for lit in aig.fanins(node):
            child = lit_var(lit)
            if lit_is_compl(lit) and aig.is_and(child):
                roots.add(child)

    new = AIG(aig.name)
    mapping: dict[int, int] = {0: CONST0}
    level: dict[int, int] = {CONST0: 0}
    for i, node in enumerate(aig.pis):
        mapping[node] = new.add_pi(aig.pi_names[i])

    def new_level(lit: int) -> int:
        node = lit_var(lit)
        if node == 0 or new.is_pi(node):
            return 0
        return level.get(node, 0)

    for node in aig.and_nodes():
        if node not in roots and fanouts[node] == 1:
            continue  # internal tree node; handled by its root
        leaves = _collect_conjunction(aig, node, fanouts, roots)
        # Map leaves into the new network.
        heap: list[tuple[int, int, int]] = []
        for order, lit in enumerate(leaves):
            mapped = mapping[lit_var(lit)] ^ (lit & 1)
            heapq.heappush(heap, (new_level(mapped), order, mapped))
        while len(heap) > 1:
            la, _, a = heapq.heappop(heap)
            lb, order, b = heapq.heappop(heap)
            combined = new.add_and(a, b)
            lvl = max(la, lb) + 1
            level[lit_var(combined)] = max(level.get(lit_var(combined), 0), lvl)
            heapq.heappush(heap, (new_level(combined), order, combined))
        mapping[node] = heap[0][2]

    for po, name in zip(aig.pos, aig.po_names):
        new.add_po(mapping[lit_var(po)] ^ (po & 1), name)
    return new.cleanup()
