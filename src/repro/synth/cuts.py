"""K-feasible cut enumeration with priority cuts.

Cuts are the unit of work for rewriting, LUT mapping, and standard-
cell matching (Section IV-A2 of the paper): a cut of node ``n`` is a
set of nodes (leaves) whose removal separates ``n`` from the primary
inputs and whose truth table is small enough to compute.  The
priority-cut scheme keeps only the best ``C`` cuts per node, which
bounds the quadratic blow-up of exhaustive enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from .aig import AIG, lit_is_compl, lit_var
from .truth import tt_expand, tt_mask, tt_not, tt_var


@dataclass(frozen=True)
class Cut:
    """A cut: sorted leaf node ids plus the truth table of the root
    over those leaves (positive polarity of the root node)."""

    leaves: tuple[int, ...]
    table: int

    def size(self) -> int:
        return len(self.leaves)

    def dominates(self, other: "Cut") -> bool:
        """True if this cut's leaves are a subset of the other's."""
        return set(self.leaves) <= set(other.leaves)


#: Sentinel table value for cuts enumerated without truth tables.
NO_TABLE = -1


def _merge_cuts(
    cut_a: Cut, cut_b: Cut, compl_a: bool, compl_b: bool, k: int, with_tables: bool
) -> Cut | None:
    """Merge fanin cuts into a candidate cut of the AND node."""
    leaves = tuple(sorted(set(cut_a.leaves) | set(cut_b.leaves)))
    if len(leaves) > k:
        return None
    if not with_tables:
        return Cut(leaves, NO_TABLE)
    n = len(leaves)
    position = {leaf: i for i, leaf in enumerate(leaves)}
    table_a = tt_expand(
        cut_a.table, [position[l] for l in cut_a.leaves], len(cut_a.leaves), n
    )
    table_b = tt_expand(
        cut_b.table, [position[l] for l in cut_b.leaves], len(cut_b.leaves), n
    )
    if compl_a:
        table_a = tt_not(table_a, n)
    if compl_b:
        table_b = tt_not(table_b, n)
    return Cut(leaves, table_a & table_b)


def _filter_dominated(cuts: list[Cut]) -> list[Cut]:
    result: list[Cut] = []
    for cut in cuts:
        if any(other.dominates(cut) for other in result):
            continue
        result = [other for other in result if not cut.dominates(other)]
        result.append(cut)
    return result


def enumerate_cuts(
    aig: AIG,
    k: int = 4,
    max_cuts: int = 8,
    include_trivial: bool = True,
    compute_tables: bool = True,
) -> dict[int, list[Cut]]:
    """Priority-cut enumeration.

    Returns node-id -> cut list.  Every node carries its trivial cut
    ``({n}, x0)`` (needed so larger cuts can stop at internal nodes).
    Cut lists are pruned to ``max_cuts`` by (size, leaf-id) preference
    after dominance filtering.

    With ``compute_tables=False`` the per-merge truth-table expansion
    (the dominant cost at k = 6) is skipped; tables carry the
    :data:`NO_TABLE` sentinel and consumers compute them on demand
    (see :func:`cut_function`).
    """
    if k < 2:
        raise ValueError("cut size must be at least 2")
    cuts: dict[int, list[Cut]] = {}
    trivial_table = tt_var(0, 1) if compute_tables else NO_TABLE

    for node in aig.pis:
        cuts[node] = [Cut((node,), trivial_table)]
    cuts[0] = [Cut((), 0 if compute_tables else NO_TABLE)]

    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        v0, v1 = lit_var(f0), lit_var(f1)
        c0, c1 = lit_is_compl(f0), lit_is_compl(f1)
        merged: list[Cut] = []
        seen: set[tuple[int, ...]] = set()
        for cut_a in cuts[v0]:
            for cut_b in cuts[v1]:
                candidate = _merge_cuts(cut_a, cut_b, c0, c1, k, compute_tables)
                if candidate is None:
                    continue
                if not compute_tables:
                    if candidate.leaves in seen:
                        continue
                    seen.add(candidate.leaves)
                merged.append(candidate)
        merged = _filter_dominated(merged)
        merged.sort(key=lambda c: (len(c.leaves), c.leaves))
        merged = merged[:max_cuts]
        if include_trivial:
            merged.append(Cut((node,), trivial_table))
        cuts[node] = merged
    if obs.current_tracer() is not None:
        obs.count("synth.cuts.enumerated", sum(len(v) for v in cuts.values()))
        obs.count("synth.cuts.calls")
    return cuts


def cut_function(aig: AIG, root: int, leaves: tuple[int, ...]) -> int:
    """Truth table of ``root`` over ``leaves`` by cone simulation.

    Used by consumers of table-free cut enumeration to compute tables
    only for the (few) cuts actually selected.
    """
    n = len(leaves)
    if n > 16:
        raise ValueError("cut too wide for truth-table computation")
    mask = tt_mask(n)
    values: dict[int, int] = {0: 0}
    for i, leaf in enumerate(leaves):
        values[leaf] = tt_var(i, n)
    cone = sorted(cut_cone_nodes(aig, root, leaves))
    for node in cone:
        f0, f1 = aig.fanins(node)
        a = values[lit_var(f0)] ^ (mask if lit_is_compl(f0) else 0)
        b = values[lit_var(f1)] ^ (mask if lit_is_compl(f1) else 0)
        values[node] = a & b
    if root not in values:
        raise ValueError(f"leaves {leaves} do not form a cut of node {root}")
    return values[root]


def cut_cone_nodes(aig: AIG, root: int, leaves: tuple[int, ...]) -> set[int]:
    """AND nodes strictly inside the cut (between leaves and root)."""
    leaf_set = set(leaves)
    cone: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in cone or node in leaf_set or not aig.is_and(node):
            continue
        cone.add(node)
        f0, f1 = aig.fanins(node)
        stack.append(lit_var(f0))
        stack.append(lit_var(f1))
    return cone


def mffc_size(aig: AIG, root: int, leaves: tuple[int, ...], fanouts: list[int]) -> int:
    """Size of the cut's maximum fanout-free cone.

    Counts the AND nodes inside the cut cone whose every fanout path
    stays inside the cone — the nodes that die if the root is replaced.
    Uses the supplied global fanout counts: a node belongs to the MFFC
    if all of its fanouts are MFFC members (starting from the root).
    """
    cone = cut_cone_nodes(aig, root, leaves)
    if not cone:
        return 0
    # Count references into each cone node from inside the MFFC.
    mffc = {root}
    # Process in reverse topological (descending id) order.
    internal_refs: dict[int, int] = {node: 0 for node in cone}
    for node in sorted(cone, reverse=True):
        if node not in mffc:
            continue
        f0, f1 = aig.fanins(node)
        for fanin in (lit_var(f0), lit_var(f1)):
            if fanin in internal_refs:
                internal_refs[fanin] += 1
                if internal_refs[fanin] == fanouts[fanin]:
                    mffc.add(fanin)
    return len(mffc)
