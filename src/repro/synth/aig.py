"""And-Inverter Graph (AIG).

The workhorse data structure of modern logic synthesis (Section IV-A of
the paper): every node is a two-input AND, every edge carries an
optional inverter.  Literals encode (node, complement) as
``2 * node + complement`` — the AIGER convention — with node 0 the
constant FALSE, so literal 0 is FALSE and literal 1 is TRUE.

Design choices:

* nodes are append-only and topologically ordered by construction
  (both fanins of an AND have smaller ids), which keeps simulation,
  level computation, and traversals simple and fast;
* structural hashing plus the standard trivial-AND simplifications run
  on every ``add_and``;
* optimization passes *reconstruct* the network (old -> new literal
  maps) instead of mutating in place — the approach used by modern
  frameworks; it keeps every pass O(n) and makes equivalence checking
  between before/after networks trivial.

Simulation uses Python's arbitrary-precision integers as bit-parallel
pattern words, so a single pass simulates any number of patterns.
"""

from __future__ import annotations



def lit_not(lit: int) -> int:
    """Complement a literal."""
    return lit ^ 1


def lit_var(lit: int) -> int:
    """Node index of a literal."""
    return lit >> 1


def lit_is_compl(lit: int) -> bool:
    """True if the literal is complemented."""
    return bool(lit & 1)


def make_lit(var: int, compl: bool = False) -> int:
    """Build a literal from node index and complement flag."""
    return (var << 1) | int(compl)


CONST0 = 0  #: literal: constant false
CONST1 = 1  #: literal: constant true


class AIG:
    """An and-inverter graph with structural hashing."""

    def __init__(self, name: str = "aig"):
        self.name = name
        # Node 0 is the constant-FALSE node.
        self._fanin0: list[int] = [-1]
        self._fanin1: list[int] = [-1]
        self._is_pi: list[bool] = [False]
        self.pis: list[int] = []  # node ids
        self.pos: list[int] = []  # literals
        self.pi_names: list[str] = []
        self.po_names: list[str] = []
        self._strash: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_pi(self, name: str | None = None) -> int:
        """Add a primary input; returns its (positive) literal."""
        node = len(self._fanin0)
        self._fanin0.append(-1)
        self._fanin1.append(-1)
        self._is_pi.append(True)
        self.pis.append(node)
        self.pi_names.append(name or f"pi{len(self.pis) - 1}")
        return make_lit(node)

    def add_and(self, a: int, b: int) -> int:
        """Add an AND node (with hashing + trivial simplification)."""
        if a > b:
            a, b = b, a
        # Trivial cases.
        if a == CONST0:
            return CONST0
        if a == CONST1:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return CONST0
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return make_lit(existing)
        node = len(self._fanin0)
        self._fanin0.append(a)
        self._fanin1.append(b)
        self._is_pi.append(False)
        self._strash[key] = node
        return make_lit(node)

    def add_or(self, a: int, b: int) -> int:
        """OR via De Morgan."""
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_xor(self, a: int, b: int) -> int:
        """XOR as two ANDs plus an OR (3 AIG nodes)."""
        return self.add_or(self.add_and(a, lit_not(b)), self.add_and(lit_not(a), b))

    def add_mux(self, sel: int, then_lit: int, else_lit: int) -> int:
        """MUX(sel, t, e) = sel & t | !sel & e."""
        return self.add_or(self.add_and(sel, then_lit), self.add_and(lit_not(sel), else_lit))

    def add_maj(self, a: int, b: int, c: int) -> int:
        """Three-input majority."""
        return self.add_or(
            self.add_and(a, b), self.add_and(c, self.add_or(a, b))
        )

    def add_po(self, lit: int, name: str | None = None) -> int:
        """Register a primary output; returns its index."""
        self.pos.append(lit)
        self.po_names.append(name or f"po{len(self.pos) - 1}")
        return len(self.pos) - 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total nodes including constant and PIs."""
        return len(self._fanin0)

    @property
    def num_ands(self) -> int:
        """Number of AND nodes (the paper's 'size' cost)."""
        return len(self._fanin0) - 1 - len(self.pis)

    @property
    def num_pis(self) -> int:
        return len(self.pis)

    @property
    def num_pos(self) -> int:
        return len(self.pos)

    def is_pi(self, node: int) -> bool:
        return self._is_pi[node]

    def is_and(self, node: int) -> bool:
        return node > 0 and not self._is_pi[node]

    def fanins(self, node: int) -> tuple[int, int]:
        """Fanin literals of an AND node."""
        if not self.is_and(node):
            raise ValueError(f"node {node} is not an AND")
        return self._fanin0[node], self._fanin1[node]

    def and_nodes(self) -> list[int]:
        """All AND node ids in topological (construction) order."""
        return [n for n in range(1, self.num_nodes) if not self._is_pi[n]]

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def structural_hash(self) -> str:
        """Content address of the network (SHA-256 hex digest).

        Covers the full observable structure — name, PI/PO names, the
        fanin literals of every AND in construction order, and the PO
        literals — so two AIGs share a hash iff they are structurally
        identical.  Used as the cache key for optimized networks in
        :mod:`repro.core.artifacts`.
        """
        import hashlib
        import struct

        h = hashlib.sha256()
        h.update(self.name.encode())
        h.update(b"\0pis\0")
        for pi_name in self.pi_names:
            h.update(pi_name.encode() + b"\0")
        h.update(b"\0ands\0")
        n = len(self._fanin0)
        h.update(struct.pack(f"<{n}q", *self._fanin0))
        h.update(struct.pack(f"<{n}q", *self._fanin1))
        h.update(bytes(self._is_pi))
        h.update(b"\0pos\0")
        h.update(struct.pack(f"<{len(self.pos)}q", *self.pos))
        for po_name in self.po_names:
            h.update(po_name.encode() + b"\0")
        return h.hexdigest()

    def levels(self) -> list[int]:
        """Level of every node (PIs at 0)."""
        level = [0] * self.num_nodes
        for node in range(1, self.num_nodes):
            if self._is_pi[node]:
                continue
            level[node] = 1 + max(
                level[lit_var(self._fanin0[node])], level[lit_var(self._fanin1[node])]
            )
        return level

    def depth(self) -> int:
        """Maximum logic depth over the POs."""
        if not self.pos:
            return 0
        level = self.levels()
        return max((level[lit_var(po)] for po in self.pos), default=0)

    def fanout_counts(self) -> list[int]:
        """Fanout count per node (PO references included)."""
        counts = [0] * self.num_nodes
        for node in range(1, self.num_nodes):
            if self._is_pi[node]:
                continue
            counts[lit_var(self._fanin0[node])] += 1
            counts[lit_var(self._fanin1[node])] += 1
        for po in self.pos:
            counts[lit_var(po)] += 1
        return counts

    def simulate(self, pi_words: list[int], width: int | None = None) -> list[int]:
        """Bit-parallel simulation.

        ``pi_words[i]`` is an arbitrary-precision integer holding the
        pattern bits of PI ``i``.  Returns one word per PO.  ``width``
        (number of pattern bits) is needed to complement correctly;
        defaults to the bit length of the widest input word rounded up
        to 64.
        """
        if len(pi_words) != len(self.pis):
            raise ValueError(f"expected {len(self.pis)} PI words, got {len(pi_words)}")
        if width is None:
            width = max((w.bit_length() for w in pi_words), default=1)
            width = max(64, (width + 63) // 64 * 64)
        mask = (1 << width) - 1
        values = self.simulate_nodes(pi_words, width)
        out = []
        for po in self.pos:
            word = values[lit_var(po)]
            if lit_is_compl(po):
                word ^= mask
            out.append(word)
        return out

    def simulate_nodes(self, pi_words: list[int], width: int) -> list[int]:
        """Node-level simulation values (uncomplemented) per node id."""
        mask = (1 << width) - 1
        values = [0] * self.num_nodes
        for i, node in enumerate(self.pis):
            values[node] = pi_words[i] & mask
        for node in range(1, self.num_nodes):
            if self._is_pi[node]:
                continue
            f0, f1 = self._fanin0[node], self._fanin1[node]
            a = values[lit_var(f0)] ^ (mask if lit_is_compl(f0) else 0)
            b = values[lit_var(f1)] ^ (mask if lit_is_compl(f1) else 0)
            values[node] = a & b
        return values

    def evaluate(self, inputs: list[bool]) -> list[bool]:
        """Single-pattern evaluation (convenience for tests)."""
        words = [1 if v else 0 for v in inputs]
        outs = self.simulate(words, width=1)
        return [bool(w & 1) for w in outs]

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def copy_dag(
        self, substitutions: dict[int, int] | None = None, name: str | None = None
    ) -> "AIG":
        """Rebuild the network, dropping dangling nodes.

        ``substitutions`` maps *node id* -> replacement literal **in
        the old network**; references to those nodes are redirected
        during the rebuild (the core primitive behind resubstitution).
        Substitution literals must refer to nodes that are not
        (transitively) substituted through themselves.
        """
        subs = substitutions or {}
        new = AIG(name or self.name)
        # resolved[node] = literal in the new network implementing the
        # positive polarity of the old node (after substitution).
        resolved: dict[int, int] = {0: CONST0}
        for i, node in enumerate(self.pis):
            pi_lit = new.add_pi(self.pi_names[i])
            if node not in subs:
                resolved[node] = pi_lit

        def resolve(root_lit: int) -> int:
            """Iteratively map an old literal into the new network."""
            root = lit_var(root_lit)
            stack = [root]
            # Nodes currently expanded through their substitution; a
            # second visit means the substitution chain loops back, so
            # the node falls back to its own structure.
            sub_active: set[int] = set()
            while stack:
                node = stack[-1]
                if node in resolved:
                    stack.pop()
                    continue
                replacement = subs.get(node)
                if replacement is not None:
                    target = lit_var(replacement)
                    if target in resolved:
                        resolved[node] = resolved[target] ^ (replacement & 1)
                        sub_active.discard(node)
                        stack.pop()
                        continue
                    if node not in sub_active:
                        sub_active.add(node)
                        stack.append(target)
                        continue
                    # The substitution chain loops back through this
                    # node: fall through to its own structure.
                if self._is_pi[node]:
                    # A substituted PI resolving through itself.
                    index = self.pis.index(node)
                    resolved[node] = make_lit(new.pis[index])
                    stack.pop()
                    continue
                f0, f1 = self._fanin0[node], self._fanin1[node]
                v0, v1 = lit_var(f0), lit_var(f1)
                missing = [v for v in (v0, v1) if v not in resolved]
                if missing:
                    stack.extend(missing)
                    continue
                a = resolved[v0] ^ (f0 & 1)
                b = resolved[v1] ^ (f1 & 1)
                resolved[node] = new.add_and(a, b)
                stack.pop()
            return resolved[root] ^ (root_lit & 1)

        for po, po_name in zip(self.pos, self.po_names):
            new.add_po(resolve(po), po_name)
        return new

    def cleanup(self) -> "AIG":
        """Remove dangling nodes (rebuild without substitutions)."""
        return self.copy_dag()

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"AIG(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"ands={self.num_ands}, depth={self.depth()})"
        )
