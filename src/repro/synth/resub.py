"""Simulation-guided, SAT-validated resubstitution (ABC's ``resub``).

Resubstitution re-expresses a node as a function of other nodes
already present in the network (divisors).  The implementation follows
the modern recipe:

1. bit-parallel random simulation assigns every node a signature;
2. signature matching proposes 0-resub (node == divisor, possibly
   complemented) and 1-resub (node == AND of two divisor literals)
   candidates;
3. every candidate is *proved* with the CDCL solver on the network's
   CNF before it is accepted (simulation alone can alias);
4. accepted substitutions are applied in one reconstruction pass.

Because AIG node ids are topologically ordered, restricting divisors
to smaller ids makes every substitution acyclic by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .. import obs
from ..sat.solver import Solver
from ..sat.tseitin import AIGEncoder
from .aig import AIG, CONST0, lit_var


@dataclass(frozen=True)
class _Pair:
    """A binary substitution: node := lit_a & lit_b."""

    lit_a: int
    lit_b: int


class _Prover:
    """Incremental SAT oracle over one network's CNF."""

    def __init__(self, aig: AIG):
        self.solver = Solver()
        encoder = AIGEncoder(self.solver)
        self.node_var = encoder.encode(aig)

    def _prove_differs_unsat(self, a: int, b: int, conflict_limit: int) -> bool:
        x = self.solver.new_var()
        self.solver.add_clause([-x, a, b])
        self.solver.add_clause([-x, -a, -b])
        result = self.solver.solve(assumptions=[x], conflict_limit=conflict_limit)
        self.solver.add_clause([-x])
        return result is False

    def equal(self, node: int, lit: int, conflict_limit: int = 2000) -> bool:
        """Prove node == lit (an AIG literal).  False on refute/timeout."""
        a = self.node_var[node]
        b = self.node_var[lit_var(lit)] * (-1 if lit & 1 else 1)
        return self._prove_differs_unsat(a, b, conflict_limit)

    def equal_and(self, node: int, lit_a: int, lit_b: int, conflict_limit: int = 2000) -> bool:
        """Prove node == (lit_a & lit_b)."""
        a = self.node_var[lit_var(lit_a)] * (-1 if lit_a & 1 else 1)
        b = self.node_var[lit_var(lit_b)] * (-1 if lit_b & 1 else 1)
        t = self.solver.new_var()
        self.solver.add_clause([-t, a])
        self.solver.add_clause([-t, b])
        self.solver.add_clause([t, -a, -b])
        return self._prove_differs_unsat(self.node_var[node], t, conflict_limit)


def _mffc_node_count(aig: AIG, node: int, fanouts: list[int]) -> int:
    """MFFC size of a node against its own structural fanins."""
    from .cuts import mffc_size

    f0, f1 = aig.fanins(node)
    leaves = tuple(sorted({lit_var(f0), lit_var(f1)}))
    return mffc_size(aig, node, leaves, fanouts)


def resub(
    aig: AIG,
    patterns: int = 256,
    max_divisors: int = 64,
    try_binary: bool = True,
    seed: int = 0,
    max_sat_queries: int = 800,
    conflict_limit: int = 300,
) -> AIG:
    """One resubstitution pass; returns the optimized network.

    ``max_sat_queries`` bounds the total number of SAT proofs per pass
    (candidates beyond the budget are skipped, never guessed), keeping
    the pass linear-ish on very large redundant networks.
    """
    if aig.num_ands == 0:
        return aig.cleanup()
    rng = random.Random(seed)
    mask = (1 << patterns) - 1
    words = [rng.getrandbits(patterns) for _ in aig.pis]
    values = aig.simulate_nodes(words, patterns)

    by_signature: dict[int, list[int]] = {}
    for node in range(1, aig.num_nodes):
        by_signature.setdefault(values[node], []).append(node)

    fanouts = aig.fanout_counts()
    prover = _Prover(aig)
    literal_subs: dict[int, int] = {}
    pair_subs: dict[int, _Pair] = {}
    replaced: set[int] = set()
    queries = [0]

    def budget_left() -> bool:
        return queries[0] < max_sat_queries

    def prove_equal(node: int, lit: int) -> bool:
        queries[0] += 1
        return prover.equal(node, lit, conflict_limit)

    def prove_equal_and(node: int, la: int, lb: int) -> bool:
        queries[0] += 1
        return prover.equal_and(node, la, lb, conflict_limit)

    def usable(candidate: int, node: int) -> bool:
        # candidate < node keeps the substitution acyclic (topo ids).
        return candidate < node and candidate not in replaced

    # --- 0-resub: identical or complementary signatures ---------------
    for node in aig.and_nodes():
        if not budget_left():
            break
        sig = values[node]
        found = None
        for candidate in by_signature.get(sig, []):
            if candidate >= node:
                break
            if usable(candidate, node) and prove_equal(node, candidate << 1):
                found = candidate << 1
                break
        if found is None:
            for candidate in by_signature.get(sig ^ mask, []):
                if candidate >= node:
                    break
                if usable(candidate, node) and prove_equal(node, (candidate << 1) | 1):
                    found = (candidate << 1) | 1
                    break
        if found is not None:
            literal_subs[node] = found
            replaced.add(node)

    # --- 1-resub: node == divisor_a & divisor_b ------------------------
    if try_binary:
        for node in aig.and_nodes():
            if not budget_left():
                break
            if node in replaced:
                continue
            if _mffc_node_count(aig, node, fanouts) < 2:
                continue  # a fresh AND would cancel the gain
            sig = values[node]
            f0, f1 = aig.fanins(node)
            structural = {lit_var(f0), lit_var(f1)}
            divisors = [
                d
                for d in range(max(1, node - 4 * max_divisors), node)
                if usable(d, node) and d not in structural
            ][:max_divisors]
            found = None
            for i, d1 in enumerate(divisors):
                s1 = values[d1]
                for d2 in divisors[i + 1 :]:
                    s2 = values[d2]
                    for c1 in (0, 1):
                        w1 = s1 ^ (mask if c1 else 0)
                        if w1 & sig != sig:
                            continue
                        for c2 in (0, 1):
                            w2 = s2 ^ (mask if c2 else 0)
                            if w1 & w2 == sig:
                                la = (d1 << 1) | c1
                                lb = (d2 << 1) | c2
                                if prove_equal_and(node, la, lb):
                                    found = _Pair(la, lb)
                                    break
                        if found:
                            break
                    if found:
                        break
                if found:
                    break
            if found is not None:
                pair_subs[node] = found
                replaced.add(node)

    obs.count("synth.resub.sat_queries", queries[0])
    obs.count("synth.resub.substitutions", len(literal_subs) + len(pair_subs))

    if not literal_subs and not pair_subs:
        return aig.cleanup()
    return _apply(aig, literal_subs, pair_subs)


def _apply(aig: AIG, literal_subs: dict[int, int], pair_subs: dict[int, _Pair]) -> AIG:
    """Reconstruct with literal and AND-pair substitutions applied."""
    new = AIG(aig.name)
    mapping: dict[int, int] = {0: CONST0}
    for i, node in enumerate(aig.pis):
        mapping[node] = new.add_pi(aig.pi_names[i])
    for node in aig.and_nodes():
        pair = pair_subs.get(node)
        target = literal_subs.get(node)
        if pair is not None:
            a = mapping[lit_var(pair.lit_a)] ^ (pair.lit_a & 1)
            b = mapping[lit_var(pair.lit_b)] ^ (pair.lit_b & 1)
            mapping[node] = new.add_and(a, b)
        elif target is not None:
            mapping[node] = mapping[lit_var(target)] ^ (target & 1)
        else:
            f0, f1 = aig.fanins(node)
            a = mapping[lit_var(f0)] ^ (f0 & 1)
            b = mapping[lit_var(f1)] ^ (f1 & 1)
            mapping[node] = new.add_and(a, b)
    for po, name in zip(aig.pos, aig.po_names):
        new.add_po(mapping[lit_var(po)] ^ (po & 1), name)
    return new.cleanup()
