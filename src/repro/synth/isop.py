"""Irredundant sum-of-products (Minato-Morreale ISOP) and factoring.

ISOP computes a prime, irredundant cover of an incompletely specified
function (on-set + don't-care set).  Algebraic factoring turns that
cover into a multi-level expression, which is how ``refactor`` and the
rewriting fallback build replacement structures — the classic
SOP-based resynthesis loop the paper's Section IV-A references.

Cubes are (positive_literal_mask, negative_literal_mask) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .aig import AIG, CONST0, CONST1, lit_not
from .truth import tt_cofactor, tt_mask, tt_var


@dataclass(frozen=True)
class Cube:
    """A product term: variables in ``pos`` appear positive, ``neg``
    negative; a variable in neither mask is absent."""

    pos: int
    neg: int

    def literal_count(self) -> int:
        return bin(self.pos).count("1") + bin(self.neg).count("1")

    def has(self, var: int) -> bool:
        return bool(((self.pos | self.neg) >> var) & 1)


def isop(on_set: int, dc_set: int, n: int) -> list[Cube]:
    """Minato-Morreale irredundant SOP.

    ``on_set`` must be covered, ``on_set | dc_set`` must not be
    exceeded.  Returns a list of cubes.
    """
    mask = tt_mask(n)
    on_set &= mask
    dc_set &= mask
    if on_set & ~(on_set | dc_set) & mask:
        raise ValueError("on-set and don't-care set overlap inconsistently")

    def recurse(f_on: int, f_upper: int, variables: list[int]) -> tuple[list[Cube], int]:
        """Returns (cover, function of the cover)."""
        if f_on == 0:
            return [], 0
        if f_upper == mask:
            return [Cube(0, 0)], mask
        if not variables:
            raise AssertionError("ran out of variables with nonconstant function")
        var = variables[-1]
        rest = variables[:-1]
        var_tt = tt_var(var, n)

        on0 = tt_cofactor(f_on, var, False, n)
        on1 = tt_cofactor(f_on, var, True, n)
        up0 = tt_cofactor(f_upper, var, False, n)
        up1 = tt_cofactor(f_upper, var, True, n)

        # Cubes that must contain !var / var.
        cover0, func0 = recurse(on0 & ~up1 & mask, up0, rest)
        cover1, func1 = recurse(on1 & ~up0 & mask, up1, rest)

        # Shared remainder: on-set minterms not yet covered on either
        # side can be covered without the splitting variable.
        rem_on = ((on0 & ~func0) | (on1 & ~func1)) & mask
        cover2, func2 = recurse(rem_on, up0 & up1, rest)

        cover = (
            [Cube(cube.pos, cube.neg | (1 << var)) for cube in cover0]
            + [Cube(cube.pos | (1 << var), cube.neg) for cube in cover1]
            + cover2
        )
        func = (func0 & ~var_tt & mask) | (func1 & var_tt) | func2
        return cover, func

    cover, func = recurse(on_set, (on_set | dc_set) & mask, list(range(n)))
    if func & ~(on_set | dc_set) & mask or (on_set & ~func & mask):
        raise AssertionError("ISOP produced an invalid cover")
    return cover


def cover_to_tt(cover: list[Cube], n: int) -> int:
    """Evaluate a cube cover back into a truth table."""
    mask = tt_mask(n)
    result = 0
    for cube in cover:
        term = mask
        for var in range(n):
            if (cube.pos >> var) & 1:
                term &= tt_var(var, n)
            elif (cube.neg >> var) & 1:
                term &= ~tt_var(var, n) & mask
        result |= term
    return result


# ----------------------------------------------------------------------
# Algebraic factoring
# ----------------------------------------------------------------------
def _most_frequent_literal(cover: list[Cube], n: int) -> tuple[int, bool] | None:
    """(variable, positive?) of the literal appearing in most cubes."""
    best = None
    best_count = 1
    for var in range(n):
        pos_count = sum(1 for cube in cover if (cube.pos >> var) & 1)
        neg_count = sum(1 for cube in cover if (cube.neg >> var) & 1)
        if pos_count > best_count:
            best, best_count = (var, True), pos_count
        if neg_count > best_count:
            best, best_count = (var, False), neg_count
    return best


def factor_cover(aig: AIG, cover: list[Cube], leaf_lits: list[int]) -> int:
    """Build an AIG literal implementing a cube cover (factored form).

    ``leaf_lits[i]`` is the AIG literal of variable ``i``.  Uses
    recursive most-frequent-literal division (quick factoring).
    """
    n = len(leaf_lits)
    if not cover:
        return CONST0
    if any(cube.pos == 0 and cube.neg == 0 for cube in cover):
        return CONST1

    divisor = _most_frequent_literal(cover, n)
    if divisor is None:
        # No sharing opportunity: straight AND-OR construction.
        terms = []
        for cube in cover:
            term = CONST1
            for var in range(n):
                if (cube.pos >> var) & 1:
                    term = aig.add_and(term, leaf_lits[var])
                elif (cube.neg >> var) & 1:
                    term = aig.add_and(term, lit_not(leaf_lits[var]))
            terms.append(term)
        result = CONST0
        for term in terms:
            result = aig.add_or(result, term)
        return result

    var, positive = divisor
    bit = 1 << var
    quotient: list[Cube] = []
    remainder: list[Cube] = []
    for cube in cover:
        if positive and (cube.pos & bit):
            quotient.append(Cube(cube.pos & ~bit, cube.neg))
        elif not positive and (cube.neg & bit):
            quotient.append(Cube(cube.pos, cube.neg & ~bit))
        else:
            remainder.append(cube)

    lit = leaf_lits[var] if positive else lit_not(leaf_lits[var])
    q_lit = factor_cover(aig, quotient, leaf_lits)
    product = aig.add_and(lit, q_lit)
    if not remainder:
        return product
    r_lit = factor_cover(aig, remainder, leaf_lits)
    return aig.add_or(product, r_lit)


def build_function(aig: AIG, tt: int, leaf_lits: list[int], dc: int = 0) -> int:
    """Implement a truth table over given leaves (ISOP + factoring).

    Picks the cheaper of covering the on-set or the off-set (with an
    output inverter), the standard trick for functions with dense
    on-sets.
    """
    n = len(leaf_lits)
    mask = tt_mask(n)
    tt &= mask
    dc &= mask
    cover_on = isop(tt & ~dc & mask, dc, n)
    cover_off = isop(~tt & ~dc & mask, dc, n)
    cost_on = sum(c.literal_count() for c in cover_on) + len(cover_on)
    cost_off = sum(c.literal_count() for c in cover_off) + len(cover_off)
    if cost_off < cost_on:
        return lit_not(factor_cover(aig, cover_off, leaf_lits))
    return factor_cover(aig, cover_on, leaf_lits)
