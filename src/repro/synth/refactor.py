"""Cut-based refactoring (the AIG counterpart of ABC's ``refactor``).

Refactoring attacks larger cones than rewriting: for each node a
wide cut (up to ``k`` leaves, default 8) is collapsed into its truth
table, re-synthesized with ISOP + algebraic factoring, and accepted
when the factored form is smaller than the cone it replaces.  This is
the classic SOP-resynthesis loop of Brayton/Mishchenko's scalable
logic synthesis.
"""

from __future__ import annotations

from .aig import AIG, CONST0, lit_var
from .cuts import Cut, cut_cone_nodes, enumerate_cuts, mffc_size
from .isop import build_function


def _structure_cost(tt: int, n_leaves: int) -> tuple[int, "AIG", int]:
    """Dry-build the factored implementation; returns (cost, aig, lit)."""
    mini = AIG()
    leaves = [mini.add_pi() for _ in range(n_leaves)]
    lit = build_function(mini, tt, leaves)
    mini.add_po(lit)
    return mini.num_ands, mini, lit


def refactor(
    aig: AIG,
    k: int = 8,
    max_cuts: int = 4,
    use_zero_gain: bool = False,
) -> AIG:
    """One refactoring pass; returns the refactored network."""
    if aig.num_ands == 0:
        return aig.cleanup()
    cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts)
    fanouts = aig.fanout_counts()
    structure_cache: dict[tuple[int, int], tuple[int, AIG, int]] = {}

    candidates = []
    for node in aig.and_nodes():
        best = None
        for cut in cuts[node]:
            if not 3 <= len(cut.leaves) <= k or node in cut.leaves:
                continue
            key = (cut.table, len(cut.leaves))
            if key not in structure_cache:
                structure_cache[key] = _structure_cost(cut.table, len(cut.leaves))
            cost, mini, lit = structure_cache[key]
            saved = mffc_size(aig, node, cut.leaves, fanouts)
            gain = saved - cost
            if gain > 0 or (use_zero_gain and gain == 0):
                if best is None or gain > best[0]:
                    best = (gain, node, cut, mini, lit)
        if best is not None:
            candidates.append(best)

    candidates.sort(key=lambda c: -c[0])
    claimed: set[int] = set()
    selected: dict[int, tuple[Cut, AIG, int]] = {}
    for gain, node, cut, mini, lit in candidates:
        cone = cut_cone_nodes(aig, node, cut.leaves)
        if cone & claimed:
            continue
        claimed |= cone
        selected[node] = (cut, mini, lit)

    if not selected:
        return aig.cleanup()

    new = AIG(aig.name)
    mapping: dict[int, int] = {0: CONST0}
    for i, node in enumerate(aig.pis):
        mapping[node] = new.add_pi(aig.pi_names[i])
    for node in aig.and_nodes():
        chosen = selected.get(node)
        if chosen is not None:
            cut, mini, out_lit = chosen
            inner: dict[int, int] = {0: CONST0}
            for i, pi_node in enumerate(mini.pis):
                inner[pi_node] = mapping[cut.leaves[i]]
            for mini_node in mini.and_nodes():
                f0, f1 = mini.fanins(mini_node)
                a = inner[lit_var(f0)] ^ (f0 & 1)
                b = inner[lit_var(f1)] ^ (f1 & 1)
                inner[mini_node] = new.add_and(a, b)
            mapping[node] = inner[lit_var(out_lit)] ^ (out_lit & 1)
        else:
            f0, f1 = aig.fanins(node)
            a = mapping[lit_var(f0)] ^ (f0 & 1)
            b = mapping[lit_var(f1)] ^ (f1 & 1)
            mapping[node] = new.add_and(a, b)
    for po, name in zip(aig.pos, aig.po_names):
        new.add_po(mapping[lit_var(po)] ^ (po & 1), name)
    return new.cleanup()
