"""Synthesis scripts: named sequences of optimization passes.

Mirrors ABC's scripting layer.  The paper's pipeline uses:

* ``c2rs`` — the predefined compress2rs shortcut: interleaved Boolean
  resubstitution, rewriting, and refactoring with balancing, used as
  stage 1 (technology-independent compression);
* ``dch -p; if -p; mfs -pegd; strash`` — stage 2 (power-aware
  restructuring through structural choices, k-LUT collapse, don't-care
  optimization, and re-hashing), implemented by
  :func:`power_aware_restructure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from .aig import AIG
from .balance import balance
from .choices import compute_choices
from .lutmap import map_luts
from .mfs import mfs
from .refactor import refactor
from .resub import resub
from .rewrite import rewrite


@dataclass
class ScriptReport:
    """Size/depth trace of a script execution."""

    steps: list[tuple[str, int, int]] = field(default_factory=list)

    def record(self, label: str, aig: AIG) -> None:
        self.steps.append((label, aig.num_ands, aig.depth()))

    def initial_size(self) -> int:
        return self.steps[0][1] if self.steps else 0

    def final_size(self) -> int:
        return self.steps[-1][1] if self.steps else 0


def _maybe_miscompile(aig: AIG) -> AIG:
    """``synth.miscompile`` fault site: emit a functionally wrong AIG.

    Exercises the stage-boundary CEC guard end-to-end: when the site
    fires, the returned network has its first output's polarity
    flipped — structurally pristine (every structural invariant still
    holds) but functionally different, exactly the class of bug only
    an equivalence check catches.
    """
    from ..resilience import faults
    from .aig import lit_not

    if not aig.pos or not faults.should_fire("synth.miscompile"):
        return aig
    wrong = aig.cleanup()
    wrong.pos[0] = lit_not(wrong.pos[0])
    return wrong


def _run_sequence(script: str, aig: AIG, sequence, report: ScriptReport) -> AIG:
    """Run a pass sequence with the monotone guard, tracing each step.

    Every pass gets a ``synth.<label>`` span with node counts in/out;
    ``synth.<label>.node_delta`` counts the nodes the pass removed and
    ``synth.pass_rejected`` the steps discarded for growing the net.
    """
    current = aig
    for label, step in sequence:
        base = label.split("-")[0]
        with obs.span(f"synth.{base}", script=script, nodes_in=current.num_ands) as sp:
            candidate = step(current)
            # Monotone guard: never keep a step that grew the network.
            if candidate.num_ands <= current.num_ands:
                obs.count(f"synth.{base}.node_delta", current.num_ands - candidate.num_ands)
                current = candidate
            else:
                obs.count("synth.pass_rejected")
            sp.set(nodes_out=current.num_ands)
        report.record(label, current)
    return _maybe_miscompile(current)


def compress2rs(aig: AIG, report: ScriptReport | None = None) -> AIG:
    """The ``c2rs`` stage-1 script.

    ABC's compress2rs interleaves balance, resub, rewrite, and
    refactor; this is the same recipe with our pass implementations.
    """
    report = report if report is not None else ScriptReport()
    report.record("start", aig)
    sequence = (
        ("balance", balance),
        ("resub", resub),
        ("rewrite", rewrite),
        ("resub", resub),
        ("refactor", refactor),
        ("resub", resub),
        ("balance", balance),
        ("rewrite", rewrite),
        ("refactor", lambda g: refactor(g, use_zero_gain=True)),
        ("rewrite", lambda g: rewrite(g, use_zero_gain=True)),
        ("balance", balance),
    )
    return _run_sequence("c2rs", aig, sequence, report)


def dc2(aig: AIG, report: ScriptReport | None = None) -> AIG:
    """ABC's ``dc2`` compress script (lighter than ``c2rs``).

    Interleaves balancing and rewriting/refactoring without the
    SAT-backed resubstitution — the fast default many flows run before
    mapping when runtime matters more than the last percent of size.
    """
    report = report if report is not None else ScriptReport()
    report.record("start", aig)
    sequence = (
        ("balance", balance),
        ("rewrite", rewrite),
        ("refactor", refactor),
        ("balance", balance),
        ("rewrite", rewrite),
        ("rewrite-z", lambda g: rewrite(g, use_zero_gain=True)),
        ("balance", balance),
        ("refactor-z", lambda g: refactor(g, use_zero_gain=True)),
        ("rewrite-z", lambda g: rewrite(g, use_zero_gain=True)),
        ("balance", balance),
    )
    return _run_sequence("dc2", aig, sequence, report)


def power_aware_restructure(
    aig: AIG,
    k: int = 6,
    power_mode: str = "primary",
    use_choices: bool = True,
    report: ScriptReport | None = None,
) -> AIG:
    """Stage 2: ``dch [-p]; if [-p]; mfs [-p...]; strash``.

    Collapses the network into k-LUTs through structural choices,
    optimizes the LUT functions with window-exact don't-cares, and
    re-hashes into an AIG.  ``power_mode`` follows
    :func:`repro.synth.lutmap.map_luts`: ``"tiebreak"`` models ABC's
    out-of-the-box ``-p`` options, ``"primary"`` the paper's proposed
    cryogenic-aware cost hierarchy.
    """
    report = report if report is not None else ScriptReport()
    report.record("start", aig)
    power_aware = power_mode != "off"
    with obs.span("synth.dch", enabled=use_choices):
        choices = compute_choices(aig) if use_choices else None
    with obs.span("synth.lutmap", k=k, power_mode=power_mode) as sp:
        network = map_luts(aig, k=k, power_mode=power_mode, choices=choices)
        sp.set(luts=network.num_luts if hasattr(network, "num_luts") else None)
    activities = None
    if power_aware:
        with obs.span("synth.activity"):
            # Approximate LUT-leaf activities via a fresh simulation of
            # the LUT network itself.
            import random

            rng = random.Random(0)
            words = [rng.getrandbits(256) for _ in range(network.num_pis)]
            values = network.simulate_nodes(words, 256)
            pair_mask = (1 << 255) - 1
            activities = [
                bin((w ^ (w >> 1)) & pair_mask).count("1") / 255.0 for w in values
            ]
    with obs.span("synth.mfs"):
        network, _ = mfs(network, power_aware=power_aware, activities=activities)
    with obs.span("synth.strash"):
        result = network.to_aig()
    report.record("strash", result)
    if result.num_ands > aig.num_ands * 1.3:
        # LUT round-trip can inflate weak structures; keep the input.
        return _maybe_miscompile(aig.cleanup())
    return _maybe_miscompile(result)
