"""K-LUT network: the intermediate form between AIG optimization and
technology mapping.

ABC's ``if`` collapses an AIG into k-input lookup tables; ``mfs`` then
optimizes the LUT functions with don't-cares before ``strash`` turns
the network back into an AIG.  A LUT node stores only (leaves, truth
table) — deliberately structure-free, which is what lets the mapper
pick implementations from structural-choice classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .aig import AIG, CONST0, lit_not
from .isop import build_function
from .truth import tt_mask


@dataclass
class LUT:
    """One lookup-table node."""

    #: Node ids of the inputs (LUT ids or PI ids within the network).
    leaves: tuple[int, ...]
    #: Truth table over the leaves.
    table: int


@dataclass
class LUTNetwork:
    """A DAG of LUTs.

    Node ids: ``0`` is constant FALSE, ``1 .. num_pis`` are the PIs,
    higher ids are LUTs (id = num_pis + index + 1).  Outputs are
    (node_id, complemented) pairs.
    """

    num_pis: int
    luts: list[LUT] = field(default_factory=list)
    outputs: list[tuple[int, bool]] = field(default_factory=list)
    pi_names: list[str] = field(default_factory=list)
    po_names: list[str] = field(default_factory=list)
    name: str = "lutnet"

    def add_lut(self, leaves: tuple[int, ...], table: int) -> int:
        """Append a LUT; leaves must reference existing nodes."""
        next_id = self.num_pis + len(self.luts) + 1
        for leaf in leaves:
            if leaf >= next_id:
                raise ValueError(f"leaf {leaf} references a later node")
        if table > tt_mask(len(leaves)):
            raise ValueError("truth table wider than the leaf set")
        self.luts.append(LUT(tuple(leaves), table))
        return next_id

    def lut_id(self, index: int) -> int:
        return self.num_pis + index + 1

    def lut_at(self, node_id: int) -> LUT:
        return self.luts[node_id - self.num_pis - 1]

    def is_pi(self, node_id: int) -> bool:
        return 1 <= node_id <= self.num_pis

    @property
    def num_luts(self) -> int:
        return len(self.luts)

    def max_fanin(self) -> int:
        return max((len(lut.leaves) for lut in self.luts), default=0)

    def depth(self) -> int:
        level = [0] * (self.num_pis + len(self.luts) + 1)
        for index, lut in enumerate(self.luts):
            node = self.lut_id(index)
            level[node] = 1 + max((level[l] for l in lut.leaves), default=0)
        return max((level[node] for node, _ in self.outputs), default=0)

    def fanout_counts(self) -> list[int]:
        counts = [0] * (self.num_pis + len(self.luts) + 1)
        for lut in self.luts:
            for leaf in lut.leaves:
                counts[leaf] += 1
        for node, _ in self.outputs:
            counts[node] += 1
        return counts

    # ------------------------------------------------------------------
    def simulate_nodes(self, pi_words: list[int], width: int) -> list[int]:
        """Bit-parallel simulation; returns value word per node id."""
        if len(pi_words) != self.num_pis:
            raise ValueError(f"expected {self.num_pis} PI words")
        mask = (1 << width) - 1
        values = [0] * (self.num_pis + len(self.luts) + 1)
        for i in range(self.num_pis):
            values[i + 1] = pi_words[i] & mask
        for index, lut in enumerate(self.luts):
            node = self.lut_id(index)
            word = 0
            leaf_words = [values[l] for l in lut.leaves]
            # Evaluate the LUT bit-sliced: for each minterm of the
            # table, AND together the matching leaf polarities.
            table = lut.table
            for minterm in range(1 << len(lut.leaves)):
                if not (table >> minterm) & 1:
                    continue
                term = mask
                for j, leaf_word in enumerate(leaf_words):
                    term &= leaf_word if (minterm >> j) & 1 else ~leaf_word & mask
                    if not term:
                        break
                word |= term
            values[node] = word
        return values

    def simulate(self, pi_words: list[int], width: int) -> list[int]:
        values = self.simulate_nodes(pi_words, width)
        mask = (1 << width) - 1
        return [
            values[node] ^ (mask if compl else 0) for node, compl in self.outputs
        ]

    def evaluate(self, inputs: list[bool]) -> list[bool]:
        words = [1 if b else 0 for b in inputs]
        return [bool(w & 1) for w in self.simulate(words, width=1)]

    # ------------------------------------------------------------------
    def to_aig(self) -> AIG:
        """Structural hashing back to an AIG (ABC's ``strash``)."""
        aig = AIG(self.name)
        node_lit: dict[int, int] = {0: CONST0}
        for i in range(self.num_pis):
            name = self.pi_names[i] if i < len(self.pi_names) else None
            node_lit[i + 1] = aig.add_pi(name)
        for index, lut in enumerate(self.luts):
            node = self.lut_id(index)
            leaf_lits = [node_lit[l] for l in lut.leaves]
            node_lit[node] = build_function(aig, lut.table, leaf_lits)
        for i, (node, compl) in enumerate(self.outputs):
            name = self.po_names[i] if i < len(self.po_names) else None
            lit = node_lit[node]
            aig.add_po(lit_not(lit) if compl else lit, name)
        return aig.cleanup()
