"""Priority-cut k-LUT mapping (ABC's ``if``).

Collapses an AIG (optionally with structural choices) into a network
of k-input LUTs by dynamic programming over enumerated cuts:

* pass 1 selects depth-optimal cuts;
* pass 2+ recovers area/power with flow costs under required-time
  bounds;
* ``power_mode`` selects the flow-cost composition — ``"off"`` (pure
  LUT-count area flow), ``"tiebreak"`` (ABC's ``if -p``: size primary,
  switching activity secondary), or ``"primary"`` (the paper's
  proposed cryogenic-aware hierarchy: activity first).

Cut enumeration runs *table-free* (the per-merge truth-table expansion
dominates at k = 6); truth tables are computed by cone simulation only
for the cuts the cover actually selects.  The result is structure-free
(leaves + truth table per LUT), which is exactly what lets structural
choice classes contribute alternative cuts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .activity import node_activities
from .aig import AIG, lit_var
from .choices import ChoiceAIG
from .cuts import cut_function, enumerate_cuts
from .lutnet import LUTNetwork
from .truth import tt_flip_input, tt_not, tt_permute


@dataclass(frozen=True)
class _Candidate:
    """One mapping choice for a representative node.

    ``leaves`` are representative node ids (sorted); the implementing
    structure is the cone of ``member`` over ``member_leaves`` in the
    underlying network, with per-leaf phases and an output phase.
    """

    leaves: tuple[int, ...]
    member: int
    member_leaves: tuple[int, ...]
    leaf_phases: tuple[bool, ...]
    output_phase: bool


@dataclass
class _NodeState:
    best: _Candidate | None = None
    depth: int = 0
    flow: float = 0.0
    refs: float = 1.0


def map_luts(
    aig: AIG,
    k: int = 6,
    max_cuts: int = 8,
    power_mode: str = "off",
    choices: ChoiceAIG | None = None,
    area_passes: int = 2,
    pi_probability: float = 0.5,
) -> LUTNetwork:
    """Map an AIG (or its choice-augmented version) to k-LUTs."""
    if power_mode not in ("off", "tiebreak", "primary"):
        raise ValueError(f"unknown power mode {power_mode!r}")
    network = choices.aig if choices is not None else aig

    if choices is None:
        def rep(node: int) -> int:
            return node

        def phase(node: int) -> bool:
            return False
    else:
        def rep(node: int) -> int:
            return choices.representative[node]

        def phase(node: int) -> bool:
            return choices.phase[node]

    result = LUTNetwork(network.num_pis, name=network.name)
    result.pi_names = list(network.pi_names)
    result.po_names = list(network.po_names)
    pi_ids = {node: i + 1 for i, node in enumerate(network.pis)}

    if network.num_ands == 0:
        for po in network.pos:
            var = lit_var(po)
            result.outputs.append((pi_ids.get(var, 0), bool(po & 1)))
        return result

    raw_cuts = enumerate_cuts(network, k=k, max_cuts=max_cuts, compute_tables=False)
    activities = node_activities(network, pi_probability)
    fanouts = network.fanout_counts()

    def candidates_for(node: int) -> list[_Candidate]:
        members = choices.members.get(node, [node]) if choices is not None else [node]
        seen: set[tuple] = set()
        out: list[_Candidate] = []
        for member in members:
            member_phase = phase(member)
            for cut in raw_cuts[member]:
                if member in cut.leaves or not cut.leaves:
                    continue
                reps = tuple(rep(l) for l in cut.leaves)
                if node in reps:
                    continue
                # Duplicate representatives are allowed (two leaves of
                # a choice structure may collapse onto one class); the
                # LUT simply reads the same input twice.
                order = sorted(range(len(reps)), key=lambda i: reps[i])
                leaves = tuple(reps[i] for i in order)
                key = (leaves, member)
                if key in seen:
                    continue
                seen.add(key)
                out.append(
                    _Candidate(
                        leaves=leaves,
                        member=member,
                        member_leaves=cut.leaves,
                        leaf_phases=tuple(phase(l) for l in cut.leaves),
                        output_phase=member_phase,
                    )
                )
        return out

    repr_nodes = [n for n in network.and_nodes() if rep(n) == n]

    state: dict[int, _NodeState] = {0: _NodeState()}
    for node in network.pis:
        state[node] = _NodeState(depth=0, flow=0.0, refs=max(1, fanouts[node]))

    def cut_cost(node: int, leaves: tuple[int, ...]) -> tuple[int, float]:
        depth = 1 + max((state[l].depth for l in leaves), default=0)
        if power_mode == "primary":
            local = activities[node] + 0.02
        elif power_mode == "tiebreak":
            local = 1.0 + 0.2 * activities[node]
        else:
            local = 1.0
        flow = local
        for leaf in leaves:
            ls = state[leaf]
            flow += ls.flow / max(1.0, ls.refs)
        return depth, flow

    required_depth: dict[int, int] = {}
    all_candidates = {node: candidates_for(node) for node in repr_nodes}
    for pass_index in range(1 + max(0, area_passes)):
        for node in repr_nodes:
            best = None
            fallback = None  # best by depth, ignoring the slack bound
            for candidate in all_candidates[node]:
                if any(l not in state for l in candidate.leaves):
                    continue
                depth, flow = cut_cost(node, candidate.leaves)
                if fallback is None or (depth, flow) < fallback[0]:
                    fallback = ((depth, flow), candidate, depth, flow)
                if pass_index == 0:
                    key = (depth, flow)
                else:
                    bound = required_depth.get(node)
                    if bound is not None and depth > bound:
                        continue
                    key = (flow, depth)
                if best is None or key < best[0]:
                    best = (key, candidate, depth, flow)
            if best is None:
                # Leaf depths can drift between recovery passes; when
                # no candidate meets the stale bound, keep the
                # depth-optimal choice instead of failing.
                best = fallback
            if best is None:
                raise RuntimeError(f"no feasible cut for node {node}")
            _, candidate, depth, flow = best
            entry = state.setdefault(node, _NodeState())
            entry.best = candidate
            entry.depth = depth
            entry.flow = flow
            entry.refs = max(1.0, float(fanouts[node]))

        # Required times from the POs: non-critical nodes keep slack
        # during flow recovery.
        global_depth = max(
            (state[rep(lit_var(po))].depth for po in network.pos if rep(lit_var(po)) in state),
            default=0,
        )
        required_depth = {}
        for po in network.pos:
            var = rep(lit_var(po))
            if var in state:
                required_depth[var] = global_depth
        for node in reversed(repr_nodes):
            req = required_depth.get(node)
            if req is None or state[node].best is None:
                continue
            for leaf in state[node].best.leaves:
                current = required_depth.get(leaf)
                if current is None or req - 1 < current:
                    required_depth[leaf] = req - 1

    # ------------------------------------------------------------------
    # Extraction: emit selected cuts from the POs, computing each
    # selected cut's truth table by cone simulation.
    # ------------------------------------------------------------------
    emitted: dict[int, int] = {}

    def candidate_table(candidate: _Candidate) -> int:
        n = len(candidate.member_leaves)
        table = cut_function(network, candidate.member, candidate.member_leaves)
        for i, flip in enumerate(candidate.leaf_phases):
            if flip:
                table = tt_flip_input(table, i, n)
        reps = tuple(rep(l) for l in candidate.member_leaves)
        order = tuple(sorted(range(n), key=lambda i: reps[i]))
        if order != tuple(range(n)):
            table = tt_permute(table, order, n)
        if candidate.output_phase:
            table = tt_not(table, n)
        return table

    def emit(node: int) -> int:
        node = rep(node)
        if node in pi_ids:
            return pi_ids[node]
        if node == 0:
            return 0
        cached = emitted.get(node)
        if cached is not None:
            return cached
        candidate = state[node].best
        leaf_ids = tuple(emit(leaf) for leaf in candidate.leaves)
        table = candidate_table(candidate)
        lut_id = result.add_lut(leaf_ids, table)
        emitted[node] = lut_id
        return lut_id

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 2 * network.num_nodes + 100))
    try:
        for po in network.pos:
            source = lit_var(po)
            compl = bool(po & 1) ^ (phase(source) if choices is not None else False)
            result.outputs.append((emit(source), compl))
    finally:
        sys.setrecursionlimit(old_limit)
    return result