"""Logic synthesis: AIG data structure and optimization algorithms.

Implements the paper's Section IV-A toolbox: structural-hashed AIGs,
cut enumeration, NPN-class rewriting, refactoring, balancing,
SAT-validated resubstitution, structural choices, priority-cut k-LUT
mapping, and windowed don't-care optimization — plus the scripted
pipelines (``c2rs``, power-aware restructuring) the evaluation uses.
"""

from .aig import AIG, CONST0, CONST1, lit_is_compl, lit_not, lit_var, make_lit
from .activity import node_activities, signal_probabilities, simulated_activities
from .balance import balance
from .choices import ChoiceAIG, compute_choices
from .cuts import Cut, enumerate_cuts, mffc_size
from .isop import Cube, build_function, cover_to_tt, isop
from .lutmap import map_luts
from .lutnet import LUT, LUTNetwork
from .mfs import MfsReport, mfs
from .refactor import refactor
from .resub import resub
from .rewrite import StructureLibrary, rewrite
from .scripts import ScriptReport, compress2rs, dc2, power_aware_restructure
from .truth import npn_apply, npn_canon, tt_mask, tt_support, tt_var

__all__ = [
    "AIG", "CONST0", "CONST1", "lit_is_compl", "lit_not", "lit_var", "make_lit",
    "node_activities", "signal_probabilities", "simulated_activities",
    "balance", "ChoiceAIG", "compute_choices", "Cut", "enumerate_cuts",
    "mffc_size", "Cube", "build_function", "cover_to_tt", "isop",
    "map_luts", "LUT", "LUTNetwork", "MfsReport", "mfs", "refactor",
    "resub", "StructureLibrary", "rewrite", "ScriptReport", "compress2rs", "dc2",
    "power_aware_restructure", "npn_apply", "npn_canon", "tt_mask",
    "tt_support", "tt_var",
]
