"""Truth-table utilities over packed integers.

A function of ``n`` inputs is stored as a ``2**n``-bit integer; bit
``i`` holds the output under the assignment where input ``j`` equals
bit ``j`` of ``i``.  Everything the cut-based algorithms need —
projections, cofactors, permutation/negation transforms, support
computation, NPN canonicalization — lives here.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations


def tt_mask(n: int) -> int:
    """All-ones mask for an n-input table."""
    return (1 << (1 << n)) - 1


@lru_cache(maxsize=None)
def tt_var(index: int, n: int) -> int:
    """Truth table of input variable ``index`` among ``n`` inputs."""
    if not 0 <= index < n:
        raise ValueError(f"variable {index} out of range for {n} inputs")
    pattern = 0
    for i in range(1 << n):
        if (i >> index) & 1:
            pattern |= 1 << i
    return pattern


def tt_not(tt: int, n: int) -> int:
    """Complement."""
    return tt ^ tt_mask(n)


def tt_cofactor(tt: int, var: int, value: bool, n: int) -> int:
    """Shannon cofactor with respect to one variable.

    The result is still expressed over ``n`` variables (the chosen
    variable becomes redundant).
    """
    var_tt = tt_var(var, n)
    if value:
        positive = tt & var_tt
        return positive | (positive >> (1 << var))
    negative = tt & ~var_tt & tt_mask(n)
    return negative | (negative << (1 << var)) & tt_mask(n)


def tt_depends_on(tt: int, var: int, n: int) -> bool:
    """True if the function depends on the given variable."""
    return tt_cofactor(tt, var, False, n) != tt_cofactor(tt, var, True, n)


def tt_support(tt: int, n: int) -> list[int]:
    """Indices of variables in the functional support."""
    return [v for v in range(n) if tt_depends_on(tt, v, n)]


def tt_permute(tt: int, perm: tuple[int, ...], n: int) -> int:
    """Permute inputs: new input ``i`` is old input ``perm[i]``."""
    result = 0
    for i in range(1 << n):
        j = 0
        for new_pos in range(n):
            if (i >> new_pos) & 1:
                j |= 1 << perm[new_pos]
        if (tt >> j) & 1:
            result |= 1 << i
    return result


def tt_flip_input(tt: int, var: int, n: int) -> int:
    """Complement one input variable."""
    result = 0
    bit = 1 << var
    for i in range(1 << n):
        if (tt >> (i ^ bit)) & 1:
            result |= 1 << i
    return result


def tt_expand(tt: int, positions: list[int], n_from: int, n_to: int) -> int:
    """Re-express a table over a larger variable set.

    ``positions[i]`` is the index (among ``n_to`` variables) where old
    variable ``i`` lands.
    """
    result = 0
    for i in range(1 << n_to):
        j = 0
        for old_var, pos in enumerate(positions):
            if (i >> pos) & 1:
                j |= 1 << old_var
        if (tt >> j) & 1:
            result |= 1 << i
    return result


def tt_from_bits(bits: list[bool]) -> int:
    """Pack an explicit output column."""
    table = 0
    for i, bit in enumerate(bits):
        if bit:
            table |= 1 << i
    return table


def tt_count_ones(tt: int) -> int:
    """Number of minterms."""
    return bin(tt).count("1")


# ----------------------------------------------------------------------
# NPN canonicalization
# ----------------------------------------------------------------------
@lru_cache(maxsize=100_000)
def npn_canon(tt: int, n: int) -> tuple[int, tuple[int, ...], int, bool]:
    """NPN-canonical form by exhaustive search (practical for n <= 4).

    Returns ``(canonical_tt, perm, input_neg_mask, output_neg)`` such
    that applying the transform to ``tt`` yields ``canonical_tt``:

        canon = maybe_not( permute( flip_inputs(tt, mask), perm ) )

    The canonical representative is the numerically smallest table
    over all input permutations, input complementations, and output
    complementation.
    """
    if n > 4:
        raise ValueError("exhaustive NPN canonicalization limited to 4 inputs")
    mask = tt_mask(n)
    tt &= mask
    best = None
    best_transform = None
    for neg_mask in range(1 << n):
        flipped = tt
        for var in range(n):
            if (neg_mask >> var) & 1:
                flipped = tt_flip_input(flipped, var, n)
        for perm in permutations(range(n)):
            permuted = tt_permute(flipped, perm, n)
            for out_neg in (False, True):
                candidate = permuted ^ (mask if out_neg else 0)
                if best is None or candidate < best:
                    best = candidate
                    best_transform = (perm, neg_mask, out_neg)
    perm, neg_mask, out_neg = best_transform
    return best, perm, neg_mask, out_neg


def npn_apply(tt: int, perm: tuple[int, ...], neg_mask: int, out_neg: bool, n: int) -> int:
    """Apply an NPN transform (as returned by :func:`npn_canon`)."""
    result = tt
    for var in range(n):
        if (neg_mask >> var) & 1:
            result = tt_flip_input(result, var, n)
    result = tt_permute(result, perm, n)
    if out_neg:
        result = tt_not(result, n)
    return result
