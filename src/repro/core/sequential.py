"""Sequential designs: registers around a combinational core.

The EPFL evaluation is combinational, but the paper's cell libraries
include sequential cells and any real cryogenic controller is clocked.
This module closes the loop: a :class:`SequentialDesign` is a
combinational next-state/output network plus a register bank; the
sequential flow synthesizes the core with the cryogenic-aware
pipeline, instantiates flops from the characterized library, and signs
off the *sequential* timing and power:

* **F_max** from the registered-path equation
  ``T_min = t_clk->q + t_comb + t_setup`` (NLDM lookups at the actual
  slews/loads),
* **power** including the register clock/internal power that
  combinational signoff never sees.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..charlib.nldm import Library, LibertyCell
from ..mapping.netlist import MappedNetlist
from ..sta.power import PowerAnalyzer
from ..sta.timing import SignoffConfig, StaticTimingAnalyzer
from ..synth.aig import AIG
from .flow import CryoSynthesisFlow


@dataclass
class SequentialDesign:
    """A Moore/Mealy machine: combinational core + register bank.

    The core's PI order is ``[primary inputs..., state bits...]`` and
    its PO order ``[primary outputs..., next-state bits...]``; the
    last ``num_registers`` POs feed the D pins of the registers whose
    Q pins drive the last ``num_registers`` PIs.
    """

    name: str
    core: AIG
    num_registers: int

    def __post_init__(self) -> None:
        if self.num_registers < 0:
            raise ValueError("register count cannot be negative")
        if self.num_registers > self.core.num_pis:
            raise ValueError("more registers than core inputs")
        if self.num_registers > self.core.num_pos:
            raise ValueError("more registers than core outputs")

    @property
    def num_primary_inputs(self) -> int:
        return self.core.num_pis - self.num_registers

    @property
    def num_primary_outputs(self) -> int:
        return self.core.num_pos - self.num_registers

    def state_input_nets(self, netlist: MappedNetlist) -> list[str]:
        return netlist.pi_nets[self.num_primary_inputs :]

    def next_state_nets(self, netlist: MappedNetlist) -> list[str]:
        return netlist.po_nets[self.num_primary_outputs :]


@dataclass
class SequentialResult:
    """Signoff summary of a sequential synthesis run."""

    design: str
    scenario: str
    netlist: MappedNetlist
    flop_cell: str
    num_registers: int
    clk_to_q: float
    setup_time: float
    comb_delay: float
    register_power: float
    core_power: float

    @property
    def min_clock_period(self) -> float:
        """T_min = t_clk->q + t_comb + t_setup [s]."""
        return self.clk_to_q + self.comb_delay + self.setup_time

    @property
    def fmax(self) -> float:
        """Maximum clock frequency [Hz]."""
        return 1.0 / self.min_clock_period

    @property
    def total_power(self) -> float:
        return self.register_power + self.core_power


def pick_flop(library: Library, drive: int = 1) -> LibertyCell:
    """Select a plain D flip-flop from the library."""
    name = f"DFFx{drive}"
    if name in library:
        return library[name]
    candidates = [
        cell
        for cell in library.cells.values()
        if cell.is_sequential and cell.footprint == "DFF"
    ]
    if not candidates:
        raise ValueError("library has no D flip-flop")
    return min(candidates, key=lambda c: c.area)


def run_sequential(
    design: SequentialDesign,
    library: Library,
    scenario: str = "p_d_a",
    config: SignoffConfig | None = None,
    vectors: int = 256,
    flop_drive: int = 1,
) -> SequentialResult:
    """Synthesize the core and sign off the registered design."""
    config = config or SignoffConfig()
    flow = CryoSynthesisFlow(library, scenario, signoff=config)
    result = flow.run(design.core)
    netlist = result.netlist

    flop = pick_flop(library, flop_drive)
    # The flow above already signed off timing with this config.
    timing = result.timing
    if timing is None:
        timing = StaticTimingAnalyzer(netlist, library, config).analyze()

    # Registered-path components.
    clk_arc = next(a for a in flop.arcs if a.timing_type == "rising_edge")
    setup = flop.constraint("D", "setup_rising")

    # Clock-to-q at the load each state net drives; setup at the slew
    # arriving at each next-state pin.  Worst case over registers.
    state_nets = design.state_input_nets(netlist)
    next_nets = design.next_state_nets(netlist)
    clk_slew = config.input_slew

    worst_clk_q = 0.0
    for net in state_nets:
        load = timing.net_load.get(net, config.output_load)
        worst_clk_q = max(worst_clk_q, clk_arc.worst_delay(clk_slew, load))
    if not state_nets:
        worst_clk_q = clk_arc.worst_delay(clk_slew, config.output_load)

    worst_setup = 0.0
    worst_path = 0.0
    for net in next_nets:
        data_slew = timing.slew.get(net, config.input_slew)
        worst_setup = max(worst_setup, setup.worst(data_slew, clk_slew))
        worst_path = max(worst_path, timing.arrival.get(net, 0.0))
    if not next_nets:
        worst_setup = setup.worst(config.input_slew, clk_slew)
        worst_path = timing.max_delay

    # Also respect pure combinational PO paths (they must fit the
    # cycle as well when sampled externally).
    worst_path = max(worst_path, timing.max_delay)

    min_period = worst_clk_q + worst_path + worst_setup
    clock_period = max(min_period * 1.05, 1e-12)

    core_power = PowerAnalyzer(netlist, library, config, vectors=vectors).analyze(
        clock_period, timing=timing
    )

    # Register power: per-flop internal energy per clock edge at the
    # driven load, plus state-averaged leakage; every flop sees the
    # clock every cycle (clock gating not modeled).
    frequency = 1.0 / clock_period
    register_power = 0.0
    for net in state_nets:
        load = timing.net_load.get(net, config.output_load)
        energy = clk_arc.average_energy(clk_slew, load)
        register_power += energy * frequency + flop.leakage_average
    if not state_nets:
        register_power = design.num_registers * (
            clk_arc.average_energy(clk_slew, config.output_load) * frequency
            + flop.leakage_average
        )

    return SequentialResult(
        design=design.name,
        scenario=scenario,
        netlist=netlist,
        flop_cell=flop.name,
        num_registers=design.num_registers,
        clk_to_q=worst_clk_q,
        setup_time=worst_setup,
        comb_delay=worst_path,
        register_power=register_power,
        core_power=core_power.total,
    )


def make_counter(bits: int) -> SequentialDesign:
    """An up-counter with enable: the classic sequential smoke test."""
    from ..benchgen.wordlevel import WordBuilder

    wb = WordBuilder("counter")
    enable = wb.aig.add_pi("en")
    state = wb.input_word("state", bits)
    incremented, _ = wb.add(state, wb.constant(1, bits))
    next_state = wb.mux_word(enable, incremented, state)
    wb.aig.add_po(wb.reduce_and(state), "carry")
    wb.output_word("next", next_state)
    return SequentialDesign("counter", wb.aig, num_registers=bits)


def make_accumulator(bits: int) -> SequentialDesign:
    """A MAC-style accumulator: acc' = acc + in (with clear)."""
    from ..synth.aig import lit_not
    from ..benchgen.wordlevel import WordBuilder

    wb = WordBuilder("accumulator")
    clear = wb.aig.add_pi("clr")
    data = wb.input_word("d", bits)
    acc = wb.input_word("acc", bits)
    total, carry = wb.add(acc, data)
    keep = lit_not(clear)
    next_acc = [wb.aig.add_and(b, keep) for b in total]
    wb.aig.add_po(carry, "overflow")
    wb.output_word("next_acc", next_acc)
    return SequentialDesign("accumulator", wb.aig, num_registers=bits)
