"""Experiment harness: regenerates the paper's figures as tables.

Each ``figure*`` function returns plain data structures and can print
the same rows/series the paper reports; the pytest-benchmark targets
in ``benchmarks/`` are thin wrappers around these.

Every harness accepts a ``jobs`` parameter: independent
(circuit x scenario x temperature) units fan out over worker threads
via :func:`repro.obs.parallel_map`, with deterministic input-ordered
results and tracing spans that survive into the workers.  Shared
products (characterized libraries, match-table views, optimized AIGs)
are deduplicated through the content-addressed artifact cache, so the
parallel workers never repeat one another's work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..benchgen.suite import build_suite
from ..charlib.nldm import Library
from ..device.bsimcmg import default_nfet_5nm, default_pfet_5nm
from ..device.calibration import calibrate, validate
from ..device.measurement import CryoProbeStation, perturbed_silicon
from .context import DesignContext
from .flow import SCENARIOS, run_scenarios


# ----------------------------------------------------------------------
# Figure 1: model vs measurement
# ----------------------------------------------------------------------
@dataclass
class Figure1Row:
    polarity: str
    vds: float
    temperature: float
    rms_log_error: float


def figure1_model_validation(
    temperatures: tuple[float, ...] = (300.0, 200.0, 77.0, 10.0),
    seed: int = 2023,
    jobs: int = 1,
) -> list[Figure1Row]:
    """Calibrate the cryo model against synthetic measurements and
    report the per-condition residuals behind Fig. 1(b, c)."""

    def calibrate_polarity(spec: tuple[str, object]) -> list[Figure1Row]:
        polarity, base = spec
        silicon = perturbed_silicon(base, seed=seed if polarity == "n" else seed + 1)
        station = CryoProbeStation(silicon, seed=seed + 17)
        sweeps = []
        for temperature in temperatures:
            for vds in (0.05, 0.75):
                sweeps.append(station.sweep_ids_vgs(vds, temperature, points=36))
        result = calibrate(sweeps, base)
        report = validate(result.device(), sweeps)
        return [
            Figure1Row(polarity, vds, temperature, rms)
            for (vds, temperature), rms in report.items()
        ]

    specs = [("n", default_nfet_5nm()), ("p", default_pfet_5nm())]
    rows: list[Figure1Row] = []
    for chunk in obs.parallel_map(calibrate_polarity, specs, jobs):
        rows.extend(chunk)
    return rows


# ----------------------------------------------------------------------
# Figure 2(a, b): library distributions
# ----------------------------------------------------------------------
@dataclass
class DistributionSummary:
    temperature: float
    mean: float
    median: float
    p10: float
    p90: float

    @classmethod
    def from_values(cls, temperature: float, values: np.ndarray) -> "DistributionSummary":
        return cls(
            temperature=temperature,
            mean=float(np.mean(values)),
            median=float(np.median(values)),
            p10=float(np.percentile(values, 10)),
            p90=float(np.percentile(values, 90)),
        )


def figure2ab_cell_distributions(
    temperatures: tuple[float, ...] = (300.0, 10.0),
    jobs: int = 1,
) -> dict[str, dict[float, DistributionSummary]]:
    """Delay/energy distributions of the full 200-cell library."""

    def summarize(temperature: float):
        library = DesignContext.default(temperature).library
        return (
            DistributionSummary.from_values(temperature, library.delay_distribution()),
            DistributionSummary.from_values(temperature, library.energy_distribution()),
        )

    out: dict[str, dict[float, DistributionSummary]] = {"delay": {}, "energy": {}}
    summaries = obs.parallel_map(summarize, temperatures, jobs)
    for temperature, (delay, energy) in zip(temperatures, summaries):
        out["delay"][temperature] = delay
        out["energy"][temperature] = energy
    return out


# ----------------------------------------------------------------------
# Figure 2(c): power decomposition
# ----------------------------------------------------------------------
@dataclass
class PowerShareRow:
    circuit: str
    temperature: float
    leakage_share: float
    internal_share: float
    switching_share: float


def figure2c_power_breakdown(
    circuits: list[str] | None = None,
    preset: str = "small",
    temperatures: tuple[float, ...] = (300.0, 10.0),
    vectors: int = 256,
    clock_period: float = 1.0e-9,
    pi_activity: float = 0.2,
    jobs: int = 1,
) -> list[PowerShareRow]:
    """Leakage/internal/switching shares on EPFL circuits, per corner.

    Signoff conditions follow standard practice (and the paper's
    setup): a system clock (1 GHz default) rather than the circuit's
    maximum speed, and a moderate primary-input activation rate — the
    defaults commercial power signoff assumes.  Both knobs only scale
    the dynamic component; the leakage-share *collapse* between 300 K
    and 10 K is temperature physics.
    """
    from ..sta.power import PowerAnalyzer
    from .flow import CryoSynthesisFlow

    circuits = circuits or ["ctrl", "i2c", "int2float", "dec", "cavlc", "router"]
    suite = build_suite(preset, names=circuits)
    contexts = {t: DesignContext.default(t) for t in temperatures}
    tasks = [
        (temperature, name) for temperature in temperatures for name in suite
    ]

    def breakdown(task: tuple[float, str]) -> PowerShareRow:
        temperature, name = task
        context = contexts[temperature]
        flow = CryoSynthesisFlow(scenario="baseline", context=context)
        result = flow.run(suite[name])
        analyzer = PowerAnalyzer.from_context(
            context, result.netlist, vectors=vectors, pi_probability=pi_activity
        )
        report = analyzer.analyze(clock_period)
        return PowerShareRow(
            circuit=name,
            temperature=temperature,
            leakage_share=report.leakage_share,
            internal_share=report.internal_share,
            switching_share=report.switching_share,
        )

    return obs.parallel_map(breakdown, tasks, jobs)


def average_shares(rows: list[PowerShareRow], temperature: float) -> tuple[float, float, float]:
    """Average (leakage, internal, switching) shares at one corner."""
    selected = [r for r in rows if r.temperature == temperature]
    if not selected:
        raise ValueError(f"no rows at {temperature} K")
    return (
        float(np.mean([r.leakage_share for r in selected])),
        float(np.mean([r.internal_share for r in selected])),
        float(np.mean([r.switching_share for r in selected])),
    )


# ----------------------------------------------------------------------
# Figure 3: cryogenic-aware synthesis vs power-aware baseline
# ----------------------------------------------------------------------
@dataclass
class Figure3Row:
    circuit: str
    baseline_power: float
    baseline_delay: float
    power: dict[str, float] = field(default_factory=dict)
    delay: dict[str, float] = field(default_factory=dict)

    def power_saving(self, scenario: str) -> float:
        """Positive = the proposed flow dissipates less power [%]."""
        return 100.0 * (1.0 - self.power[scenario] / self.baseline_power)

    def delay_overhead(self, scenario: str) -> float:
        """Positive = the proposed flow is slower [%]."""
        return 100.0 * (self.delay[scenario] / self.baseline_delay - 1.0)


def figure3_synthesis_comparison(
    circuits: list[str] | None = None,
    preset: str = "default",
    temperature: float = 10.0,
    vectors: int = 512,
    library: Library | None = None,
    use_choices: bool = True,
    jobs: int = 1,
) -> list[Figure3Row]:
    """Run the three scenarios over the suite; the Fig. 3 data.

    One :class:`DesignContext` is shared by every circuit, so the
    library view is built once and stage outputs dedupe through the
    artifact cache; with ``jobs > 1`` circuits fan out over worker
    threads (results stay in sorted-circuit order).
    """
    if library is not None:
        context = DesignContext.from_library(library)
    else:
        context = DesignContext.default(temperature)
    suite = build_suite(preset, names=circuits)

    def compare(item: tuple[str, object]) -> Figure3Row:
        name, aig = item
        results = run_scenarios(
            aig, context=context, vectors=vectors, use_choices=use_choices
        )
        row = Figure3Row(
            circuit=name,
            baseline_power=results["baseline"].total_power,
            baseline_delay=results["baseline"].critical_delay,
        )
        for scenario in SCENARIOS:
            if scenario == "baseline":
                continue
            row.power[scenario] = results[scenario].total_power
            row.delay[scenario] = results[scenario].critical_delay
        return row

    return obs.parallel_map(compare, sorted(suite.items()), jobs)


def figure3_summary(rows: list[Figure3Row]) -> dict[str, dict[str, float]]:
    """Average/max power saving and average delay overhead per scenario."""
    summary: dict[str, dict[str, float]] = {}
    for scenario in ("p_a_d", "p_d_a"):
        savings = [row.power_saving(scenario) for row in rows]
        overheads = [row.delay_overhead(scenario) for row in rows]
        summary[scenario] = {
            "avg_power_saving": float(np.mean(savings)),
            "max_power_saving": float(np.max(savings)),
            "min_power_saving": float(np.min(savings)),
            "circuits_improved": int(sum(1 for s in savings if s > 0.0)),
            "avg_delay_overhead": float(np.mean(overheads)),
            "max_delay_overhead": float(np.max(overheads)),
        }
    return summary
