"""Content-addressed artifact cache for the staged pipeline.

Every expensive product of the flow — characterized libraries,
optimized AIGs, match-table views, mapped netlists — is addressed by a
digest of everything that determines it: the input network's
:meth:`repro.synth.aig.AIG.structural_hash`, the library's
:meth:`repro.charlib.nldm.Library.fingerprint`, and a
:func:`config_digest` of the knobs (cost policy, signoff config, stage
parameters).  Identical inputs therefore share one computation across
scenarios, temperatures, figure harnesses, and — with the optional
on-disk backend — across process restarts.

Layers:

* :func:`config_digest` / :func:`cache_key` — canonical hashing of
  plain values, dataclasses, and content-addressed objects;
* :class:`ArtifactCache` — a thread-safe LRU memory store with an
  optional pickle-backed disk tier (``--cache-dir`` on the CLI, or
  ``REPRO_CACHE_DIR`` in the environment, conventionally
  ``~/.cache/repro``) and an optional **remote blob-server tier**
  (``--cache-remote URL`` / ``REPRO_CACHE_REMOTE``) shared across
  hosts — served by ``repro cache-serve`` and reached through the
  never-fail :class:`repro.cache.remote.RemoteCacheClient`, so a slow,
  dead, or lying cache server degrades every lookup to an ordinary
  local miss (``docs/ROBUSTNESS.md``, "Remote cache tier");
* a process-global default cache (:func:`default_cache`,
  :func:`set_default_cache`, :func:`using_cache`) that
  :class:`repro.core.context.DesignContext` picks up when none is
  given explicitly.

All tiers share one sha256-framed entry format
(:mod:`repro.cache.framing`); every boundary re-verifies it.

Hits and misses are reported to :mod:`repro.obs` as the ``cache.hit``
/ ``cache.miss`` counters (plus per-kind ``cache.hit.<kind>``
breakdowns, and ``cache.remote.*`` for the remote tier), so a
``--profile`` run shows exactly which stages were skipped; see
``docs/ARCHITECTURE.md`` for the key scheme.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from .. import obs
from ..cache.framing import decode_entry as _decode_entry
from ..cache.framing import encode_entry as _encode_entry
from ..resilience import faults
from ..resilience.errors import CacheCorruptionError

_MISSING = object()


def _env_float(name: str) -> float | None:
    """Parse an optional numeric environment knob (invalid -> None)."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def _remote_client(remote: Any):
    """Normalize the ``remote`` argument into a client (or ``None``).

    Accepts an existing :class:`repro.cache.remote.RemoteCacheClient`
    (anything client-shaped), a ``host:port``/URL string, or ``None``
    meaning "consult :envvar:`REPRO_CACHE_REMOTE`" — which is what
    lets isolated worker subprocesses (which rebuild their cache from
    just a directory) join the same remote tier as their parent.  A
    malformed URL disables the tier with a counter rather than failing
    the run: the remote tier is an accelerator, never a dependency.
    """
    if remote is None:
        remote = os.environ.get("REPRO_CACHE_REMOTE") or None
    if remote is None or remote is False:
        return None
    if isinstance(remote, str):
        text = remote.strip()
        if not text or text.lower() in ("off", "none", "0", "disabled"):
            return None
        from ..cache.remote import RemoteCacheClient

        try:
            return RemoteCacheClient(text)
        except ValueError:
            obs.count("cache.remote.bad_url")
            return None
    return remote


# ----------------------------------------------------------------------
# Canonical digests
# ----------------------------------------------------------------------
def _feed(h: "hashlib._Hash", obj: Any) -> None:
    """Feed one value into a hash in a canonical, type-tagged form."""
    if obj is None or isinstance(obj, (bool, int, str, bytes, float)):
        h.update(f"{type(obj).__name__}:{obj!r}\0".encode())
    elif isinstance(obj, (tuple, list)):
        h.update(f"seq{len(obj)}[\0".encode())
        for item in obj:
            _feed(h, item)
        h.update(b"]\0")
    elif isinstance(obj, (dict,)):
        h.update(f"map{len(obj)}{{\0".encode())
        for key in sorted(obj, key=repr):
            _feed(h, key)
            _feed(h, obj[key])
        h.update(b"}\0")
    elif isinstance(obj, (set, frozenset)):
        _feed(h, sorted(obj, key=repr))
    elif hasattr(obj, "structural_hash") and callable(obj.structural_hash):
        # AIGs and other content-addressed networks.
        h.update(f"sh:{obj.structural_hash()}\0".encode())
    elif hasattr(obj, "fingerprint") and callable(obj.fingerprint):
        # Characterized libraries.
        h.update(f"fp:{obj.fingerprint()}\0".encode())
    elif is_dataclass(obj):
        h.update(f"dc:{type(obj).__qualname__}(\0".encode())
        for f in fields(obj):
            h.update(f.name.encode() + b"=")
            _feed(h, getattr(obj, f.name))
        h.update(b")\0")
    else:
        raise TypeError(
            f"cannot digest {type(obj).__name__!r}: give it a structural_hash()/"
            f"fingerprint() method or pass a dataclass/plain value"
        )


def config_digest(obj: Any) -> str:
    """Stable hex digest of a configuration value.

    Accepts plain values, tuples/lists/dicts/sets, dataclasses (walked
    field by field), and content-addressed objects (anything exposing
    ``structural_hash()`` or ``fingerprint()``).  The digest is stable
    across processes and platforms.
    """
    h = hashlib.sha256()
    _feed(h, obj)
    return h.hexdigest()[:32]


def cache_key(kind: str, *parts: Any) -> str:
    """Build a cache key: a human-readable kind plus a content digest."""
    return f"{kind}:{config_digest(parts)}"


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class ArtifactCache:
    """Thread-safe content-addressed store with disk + remote tiers.

    The memory tier is a bounded LRU keyed by full cache keys.  When
    ``cache_dir`` is set, values whose ``put``/``get_or_compute`` call
    allows persistence are also pickled (with a sha256 integrity
    checksum) to ``<cache_dir>/<sha256(key)>.pkl`` and survive process
    restarts.  Unreadable, truncated, or checksum-failing entries
    never crash a lookup: the file is quarantined (renamed to
    ``*.corrupt``), the ``cache.corrupt`` counter fires, and the
    lookup degrades to a miss.

    When ``remote`` is configured (a URL, a
    :class:`repro.cache.remote.RemoteCacheClient`, or ambiently via
    :envvar:`REPRO_CACHE_REMOTE`; ``remote=False`` opts out), lookups
    that miss both local tiers consult the shared blob server, and
    persisted puts are uploaded write-through (write-behind while the
    server is unreachable).  A remote hit backfills the local tiers —
    the verified frame bytes are written to the disk tier as-is — so
    each artifact crosses the network at most once per host.  Every
    remote failure mode (timeout, partition, corruption, HTTP garbage)
    is absorbed by the client and lands here as a plain miss.

    The disk tier is bounded: ``max_disk_mb`` (default from
    ``REPRO_CACHE_MAX_MB``; unset = unbounded) caps the total size of
    ``*.pkl`` entries — after every write, least-recently-used entries
    (by mtime, refreshed on disk hits) are evicted until the tier
    fits, counting ``cache.evict``.  Quarantined ``*.corrupt`` files
    are likewise capped at ``max_corrupt_entries`` newest files
    (``REPRO_CACHE_MAX_CORRUPT``, default 16) so a flaky disk cannot
    fill the cache directory with forensic copies; drops count
    ``cache.corrupt_evicted``.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        max_memory_entries: int = 256,
        max_disk_mb: float | None = None,
        max_corrupt_entries: int | None = None,
        remote: Any = None,
    ):
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir else None
        self.remote = _remote_client(remote)
        self.max_memory_entries = max_memory_entries
        self.max_disk_mb = (
            _env_float("REPRO_CACHE_MAX_MB") if max_disk_mb is None else max_disk_mb
        )
        if max_corrupt_entries is None:
            env = _env_float("REPRO_CACHE_MAX_CORRUPT")
            max_corrupt_entries = 16 if env is None else int(env)
        self.max_corrupt_entries = max_corrupt_entries
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._disk_lock = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.remote_hits = 0
        self.corrupt = 0
        self.evicted = 0
        self.corrupt_evicted = 0
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- internals ------------------------------------------------------
    @staticmethod
    def _kind(key: str) -> str:
        return key.split(":", 1)[0]

    @staticmethod
    def _key_digest(key: str) -> str:
        """Filesystem/blob-server name for a key (all tiers agree)."""
        return hashlib.sha256(key.encode()).hexdigest()[:40]

    def _disk_path(self, key: str) -> Path:
        return self.cache_dir / f"{self._key_digest(key)}.pkl"

    def _remember(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt disk entry aside so it is never re-read."""
        with self._lock:
            self.corrupt += 1
        obs.count("cache.corrupt")
        with contextlib.suppress(OSError):
            os.replace(path, path.with_suffix(".corrupt"))
        self._trim_corrupt()

    def _trim_corrupt(self) -> None:
        """Keep only the newest ``max_corrupt_entries`` quarantined files."""
        if self.cache_dir is None or self.max_corrupt_entries is None:
            return
        with self._disk_lock:
            entries = []
            for path in self.cache_dir.glob("*.corrupt"):
                with contextlib.suppress(OSError):
                    entries.append((path.stat().st_mtime, path))
            entries.sort(reverse=True)  # newest first
            for _, path in entries[self.max_corrupt_entries:]:
                with contextlib.suppress(OSError):
                    path.unlink()
                    with self._lock:
                        self.corrupt_evicted += 1
                    obs.count("cache.corrupt_evicted")

    def _enforce_disk_cap(self, keep: Path | None = None) -> None:
        """Evict least-recently-used ``*.pkl`` entries over the size cap.

        Recency is mtime: refreshed by :meth:`_lookup` on every disk
        hit, so hot entries survive.  ``keep`` (the entry just
        written) is never evicted even when it alone exceeds the cap —
        evicting the value the caller is about to rely on would turn
        every oversized artifact into a permanent miss.
        """
        if self.cache_dir is None or self.max_disk_mb is None:
            return
        budget = self.max_disk_mb * 1024 * 1024
        with self._disk_lock:
            entries = []
            total = 0
            for path in self.cache_dir.glob("*.pkl"):
                with contextlib.suppress(OSError):
                    st = path.stat()
                    entries.append((st.st_mtime, st.st_size, path))
                    total += st.st_size
            entries.sort()  # oldest (least recently used) first
            for _, size, path in entries:
                if total <= budget:
                    break
                if keep is not None and path == keep:
                    continue
                with contextlib.suppress(OSError):
                    path.unlink()
                    total -= size
                    with self._lock:
                        self.evicted += 1
                    obs.count("cache.evict")

    def _lookup(self, key: str, persist: bool) -> Any:
        """Return the cached value or ``_MISSING`` (no counters)."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                return self._memory[key]
        if persist and self.cache_dir is not None:
            path = self._disk_path(key)
            if path.exists():
                try:
                    value = _decode_entry(path.read_bytes())
                except (OSError, CacheCorruptionError):
                    # Truncated write, bit rot, stale format, or an
                    # unpicklable payload: quarantine and miss.
                    self._quarantine(path)
                    return self._remote_lookup(key)
                # Refresh mtime so LRU disk eviction sees this entry as hot.
                with contextlib.suppress(OSError):
                    os.utime(path)
                with self._lock:
                    self._remember(key, value)
                    self.disk_hits += 1
                return value
        if persist:
            return self._remote_lookup(key)
        return _MISSING

    def _remote_lookup(self, key: str) -> Any:
        """Third tier: fetch a verified frame from the blob server.

        The client has already absorbed every transport/integrity
        failure into ``None``; decode is belt-and-braces (the frame
        was verified in flight) but still guarded — an unpicklable
        payload degrades to a miss like any other corruption.  A hit
        backfills memory and, byte-for-byte, the disk tier.
        """
        if self.remote is None:
            return _MISSING
        data = self.remote.get(self._key_digest(key))
        if data is None:
            return _MISSING
        try:
            value = _decode_entry(data)
        except CacheCorruptionError:
            obs.count("cache.remote.undecodable")
            return _MISSING
        with self._lock:
            self._remember(key, value)
            self.remote_hits += 1
        if self.cache_dir is not None:
            path = self._disk_path(key)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            try:
                tmp.write_bytes(data)
                os.replace(tmp, path)
            except OSError:
                with contextlib.suppress(OSError):
                    tmp.unlink()
            else:
                self._enforce_disk_cap(keep=path)
        return value

    # -- public API -----------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        value = self._lookup(key, persist=True)
        return default if value is _MISSING else value

    def __contains__(self, key: str) -> bool:
        return self._lookup(key, persist=True) is not _MISSING

    def put(self, key: str, value: Any, persist: bool = True) -> None:
        with self._lock:
            self._remember(key, value)
        if not persist or (self.cache_dir is None and self.remote is None):
            return
        try:
            frame = _encode_entry(value)
        except Exception:
            return  # unpicklable value stays memory-only
        if self.cache_dir is not None:
            path = self._disk_path(key)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            try:
                data = faults.corrupt_bytes("cache.disk", frame)
                tmp.write_bytes(data)
                os.replace(tmp, path)
            except Exception:
                with contextlib.suppress(OSError):
                    tmp.unlink()
            else:
                self._enforce_disk_cap(keep=path)
        if self.remote is not None:
            # Write-through with the *uncorrupted* frame (the
            # ``cache.disk`` fault site models local-disk truncation,
            # not the network; the server would reject a bad frame
            # anyway).  The client absorbs every failure into a
            # write-behind stash — this call cannot raise.
            self.remote.put(self._key_digest(key), frame)

    def get_or_compute(
        self,
        key: str,
        compute: Callable[[], Any],
        persist: bool = True,
        cache_if: Callable[[Any], bool] | None = None,
    ) -> Any:
        """Return the cached value for ``key``, computing it on a miss.

        Concurrent callers of the same key are serialized so the value
        is computed exactly once; counters ``cache.hit``/``cache.miss``
        (and per-kind variants) record the outcome.  ``cache_if``
        vetoes storing a freshly computed value (used to keep
        degraded-mode results out of the cache — see
        ``docs/ROBUSTNESS.md``).
        """
        value, _ = self.get_or_compute_flagged(
            key, compute, persist=persist, cache_if=cache_if
        )
        return value

    def get_or_compute_flagged(
        self,
        key: str,
        compute: Callable[[], Any],
        persist: bool = True,
        cache_if: Callable[[Any], bool] | None = None,
    ) -> tuple[Any, bool]:
        """Like :meth:`get_or_compute` but also reports hit/miss."""
        with self._lock:
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            value = self._lookup(key, persist)
            if value is not _MISSING:
                self._note(key, hit=True)
                return value, True
            self._note(key, hit=False)
            value = compute()
            if cache_if is None or cache_if(value):
                self.put(key, value, persist=persist)
            else:
                obs.count("cache.uncacheable")
                obs.count(f"cache.uncacheable.{self._kind(key)}")
        with self._lock:
            self._key_locks.pop(key, None)
        return value, False

    def _note(self, key: str, hit: bool) -> None:
        kind = self._kind(key)
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
        obs.count("cache.hit" if hit else "cache.miss")
        obs.count(f"cache.{'hit' if hit else 'miss'}.{kind}")

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and optionally the disk tier)."""
        with self._lock:
            self._memory.clear()
        if disk and self.cache_dir is not None:
            for pattern in ("*.pkl", "*.corrupt"):
                for path in self.cache_dir.glob(pattern):
                    with contextlib.suppress(OSError):
                        path.unlink()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            out: dict[str, Any] = {
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "remote_hits": self.remote_hits,
                "corrupt": self.corrupt,
                "evicted": self.evicted,
                "corrupt_evicted": self.corrupt_evicted,
                "memory_entries": len(self._memory),
            }
        if self.remote is not None:
            out["remote"] = self.remote.stats()
        return out

    def __repr__(self) -> str:
        tier = f", dir={str(self.cache_dir)!r}" if self.cache_dir else ""
        if self.remote is not None:
            tier += f", remote={getattr(self.remote, 'url', '?')!r}"
        return f"ArtifactCache(entries={len(self._memory)}{tier})"


# ----------------------------------------------------------------------
# Process-global default
# ----------------------------------------------------------------------
def _initial_cache() -> ArtifactCache:
    return ArtifactCache(cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)


_default_cache = _initial_cache()
_default_lock = threading.Lock()


def default_cache() -> ArtifactCache:
    """The process-global cache used when no explicit one is given."""
    return _default_cache


def set_default_cache(cache: ArtifactCache | None) -> ArtifactCache:
    """Install (or, with ``None``, reset) the process-global cache."""
    global _default_cache
    with _default_lock:
        _default_cache = cache if cache is not None else _initial_cache()
        return _default_cache


@contextlib.contextmanager
def using_cache(cache: ArtifactCache) -> Iterator[ArtifactCache]:
    """Temporarily make ``cache`` the process-global default."""
    previous = _default_cache
    set_default_cache(cache)
    try:
        yield cache
    finally:
        set_default_cache(previous)
