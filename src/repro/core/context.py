"""The design context: one object carrying everything a flow needs.

Historically every layer of the pipeline took a bare
:class:`repro.charlib.nldm.Library` and rebuilt whatever else it
needed (match-table views, signoff configs, RNG seeds) on the spot —
``run_scenarios`` constructed a fresh ``TechLibraryView`` per
scenario, and experiment harnesses re-derived the same objects per
figure.  :class:`DesignContext` replaces that ad-hoc threading: it
bundles the temperature corner, the characterized library, the
signoff configuration, the power-vector seed, and the
:class:`repro.core.artifacts.ArtifactCache`, and it memoizes the
derived products (library fingerprint, technology view) so they are
built exactly once and shared by every stage, scenario, and worker
thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..charlib.nldm import Library
from ..sta.timing import SignoffConfig
from .artifacts import ArtifactCache, cache_key, config_digest, default_cache


@dataclass
class DesignContext:
    """Immutable-by-convention bundle of flow-wide state.

    Build one per (technology, temperature) corner and share it across
    circuits, scenarios, and worker threads — every derived product is
    memoized through the artifact cache, so sharing the context is
    what makes characterization and view construction one-time costs.
    """

    library: Library
    signoff: SignoffConfig = field(default_factory=SignoffConfig)
    #: Seed for the random signoff vector streams.
    seed: int = 0
    cache: ArtifactCache = field(default_factory=default_cache)

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_library(
        cls,
        library: Library,
        signoff: SignoffConfig | None = None,
        seed: int = 0,
        cache: ArtifactCache | None = None,
    ) -> "DesignContext":
        """Wrap an already-characterized library."""
        return cls(
            library=library,
            signoff=signoff or SignoffConfig(),
            seed=seed,
            cache=cache or default_cache(),
        )

    @classmethod
    def default(
        cls,
        temperature: float = 10.0,
        signoff: SignoffConfig | None = None,
        seed: int = 0,
        cache: ArtifactCache | None = None,
        vdd: float | None = None,
    ) -> "DesignContext":
        """Characterize (or fetch from cache) the default technology
        at a temperature corner and wrap it.

        ``vdd`` overrides the technology's nominal supply — the knob a
        characterization-service job exposes (a ``(temperature, vdd)``
        pair names a corner); ``None`` keeps the default and the
        per-process library memo.
        """
        from ..charlib.engine import characterize_library, default_library

        cache = cache or default_cache()
        if vdd is None:
            library = default_library(temperature, cache=cache)
        else:
            from dataclasses import replace as _replace

            from ..pdk.technology import cryo5_technology

            library = characterize_library(
                _replace(cryo5_technology(), vdd=vdd), temperature, cache=cache
            )
        return cls.from_library(
            library,
            signoff=signoff,
            seed=seed,
            cache=cache,
        )

    # -- derived, memoized products -------------------------------------
    @property
    def temperature(self) -> float:
        """Corner temperature [K] (the library's characterization T)."""
        return self.library.temperature

    @property
    def library_fingerprint(self) -> str:
        return self.library.fingerprint()

    @property
    def view(self):
        """The shared match-table view of the library.

        Built at most once per library content (not per scenario or
        per flow) through the artifact cache; the view is pure w.r.t.
        the library, so sharing it is always sound.
        """
        from ..mapping.library import TechLibraryView

        return TechLibraryView.for_library(self.library, cache=self.cache)

    def signoff_digest(self) -> str:
        """Digest of the signoff boundary conditions + vector seed."""
        return config_digest((self.signoff, self.seed))

    def stage_key(self, kind: str, *parts: Any) -> str:
        """Cache key scoped to this context's library and signoff."""
        return cache_key(kind, self.library_fingerprint, self.signoff_digest(), *parts)

    def scenario_key(self, aig: Any, scenario: str, *parts: Any) -> str:
        """Cache key for one fully signed-off scenario result.

        This is the unit of the crash-safe run journal (see
        :mod:`repro.resilience.journal`): ``run_scenarios`` stores the
        final :class:`repro.core.flow.FlowResult` under this key and
        journals ``(key, digest)`` so an interrupted sweep can replay
        completed scenarios from the cache on ``--resume``.  The key
        must capture everything the result depends on — callers pass
        the scenario *set* (the fair-clock rule couples scenarios) and
        every signoff knob as ``parts``.
        """
        return self.stage_key("scenario.result", aig, scenario, *parts)

    def with_signoff(self, signoff: SignoffConfig) -> "DesignContext":
        return replace(self, signoff=signoff)
