"""The paper's core contribution: the end-to-end cryogenic-aware
design-automation flow and its experiment harness."""

from .artifacts import (
    ArtifactCache,
    cache_key,
    config_digest,
    default_cache,
    set_default_cache,
    using_cache,
)
from .context import DesignContext
from .flow import SCENARIOS, CryoSynthesisFlow, FlowResult, run_scenarios
from .stages import FlowRunner, Stage
from .sequential import (
    SequentialDesign,
    SequentialResult,
    make_accumulator,
    make_counter,
    pick_flop,
    run_sequential,
)
from .experiments import (
    DistributionSummary,
    Figure1Row,
    Figure3Row,
    PowerShareRow,
    average_shares,
    figure1_model_validation,
    figure2ab_cell_distributions,
    figure2c_power_breakdown,
    figure3_summary,
    figure3_synthesis_comparison,
)

__all__ = [
    "ArtifactCache",
    "DesignContext",
    "FlowRunner",
    "Stage",
    "cache_key",
    "config_digest",
    "default_cache",
    "set_default_cache",
    "using_cache",
    "SCENARIOS",
    "CryoSynthesisFlow",
    "FlowResult",
    "run_scenarios",
    "SequentialDesign",
    "SequentialResult",
    "make_accumulator",
    "make_counter",
    "pick_flop",
    "run_sequential",
    "DistributionSummary",
    "Figure1Row",
    "Figure3Row",
    "PowerShareRow",
    "average_shares",
    "figure1_model_validation",
    "figure2ab_cell_distributions",
    "figure2c_power_breakdown",
    "figure3_summary",
    "figure3_synthesis_comparison",
]
