"""The end-to-end cryogenic-aware synthesis flow (Section V-B).

The paper's three-stage pipeline:

1. **Technology-independent AIG optimization** — the ``c2rs`` script
   (Boolean resubstitution, rewriting, refactoring, balancing);
2. **Power-aware optimization** — ``dch -p; if -p; mfs -pegd; strash``
   (structural choices, power-aware k-LUT collapse, don't-care
   simplification, re-hashing);
3. **Technology mapping** — ``map -p`` against the cryogenic-aware
   standard-cell library, with the cost-function priority list chosen
   by the scenario:

   * ``baseline`` — state-of-the-art power-aware mapping (size stays
     the primary objective, ABC-style);
   * ``p_a_d`` — the proposed power -> area -> delay hierarchy;
   * ``p_d_a`` — the proposed power -> delay -> area hierarchy.

Signoff (delay + power decomposition) runs through the PrimeTime
substrate, with the paper's fair-comparison rule: the clock period for
power analysis is set by the slowest variant of the same circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..charlib.nldm import Library
from ..mapping.cost import CostPolicy, baseline_power_aware, p_a_d, p_d_a
from ..mapping.library import TechLibraryView
from ..mapping.netlist import MappedNetlist
from ..mapping.techmap import TechnologyMapper
from ..sta.power import PowerAnalyzer, PowerReport
from ..sta.timing import SignoffConfig, StaticTimingAnalyzer
from ..synth.aig import AIG
from ..synth.scripts import compress2rs, power_aware_restructure


SCENARIOS: dict[str, CostPolicy] = {
    "baseline": baseline_power_aware(),
    "p_a_d": p_a_d(),
    "p_d_a": p_d_a(),
}


@dataclass
class FlowResult:
    """Everything the evaluation needs from one synthesis run."""

    circuit: str
    scenario: str
    netlist: MappedNetlist
    optimized_aig: AIG
    critical_delay: float
    area: float
    num_gates: int
    #: Filled by :meth:`CryoSynthesisFlow.signoff_power`.
    power: PowerReport | None = None

    @property
    def total_power(self) -> float:
        if self.power is None:
            raise ValueError("run signoff_power first")
        return self.power.total

    def to_dict(self) -> dict:
        """JSON-serializable view of the run (diffable between runs)."""
        out = {
            "circuit": self.circuit,
            "scenario": self.scenario,
            "num_gates": self.num_gates,
            "area_um2": self.area,
            "critical_delay_s": self.critical_delay,
            "aig_nodes": self.optimized_aig.num_ands,
            "aig_depth": self.optimized_aig.depth(),
        }
        if self.power is not None:
            out["power"] = {
                "total_w": self.power.total,
                "leakage_w": self.power.leakage,
                "internal_w": self.power.internal,
                "switching_w": self.power.switching,
                "clock_period_s": self.power.clock_period,
                "temperature_k": self.power.temperature,
            }
        return out


class CryoSynthesisFlow:
    """Three-stage synthesis + signoff against one library corner."""

    def __init__(
        self,
        library: Library,
        scenario: str = "baseline",
        k_lut: int = 6,
        use_choices: bool = True,
        signoff: SignoffConfig | None = None,
        skip_stage2: bool = False,
    ):
        if scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}")
        self.library = library
        self.scenario = scenario
        self.policy = SCENARIOS[scenario]
        self.k_lut = k_lut
        self.use_choices = use_choices
        self.signoff = signoff or SignoffConfig()
        self.skip_stage2 = skip_stage2
        self._view = TechLibraryView(library)

    # ------------------------------------------------------------------
    @property
    def stage2_power_mode(self) -> str:
        """ABC's ``-p`` keeps size primary (baseline); the proposed
        hierarchies make power the primary stage-2 cost."""
        return "tiebreak" if self.scenario == "baseline" else "primary"

    def optimize(self, aig: AIG) -> AIG:
        """Stages 1 + 2: technology-independent + power-aware opt."""
        with obs.span("flow.c2rs", nodes_in=aig.num_ands) as sp:
            stage1 = compress2rs(aig)
            sp.set(nodes_out=stage1.num_ands)
        if self.skip_stage2:
            return stage1
        with obs.span("flow.power_restructure", nodes_in=stage1.num_ands) as sp:
            restructured = power_aware_restructure(
                stage1,
                k=self.k_lut,
                power_mode=self.stage2_power_mode,
                use_choices=self.use_choices,
            )
            sp.set(nodes_out=restructured.num_ands)
        return restructured

    def map(self, aig: AIG) -> MappedNetlist:
        """Stage 3: technology mapping under the scenario's policy."""
        with obs.span("flow.map", scenario=self.scenario) as sp:
            mapper = TechnologyMapper(self._view, self.policy)
            netlist = mapper.map(aig)
            sp.set(gates=netlist.num_gates)
        return netlist

    def run(self, aig: AIG) -> FlowResult:
        """Full pipeline on one circuit (power signoff done separately
        because the clock period depends on the sibling variants)."""
        with obs.span("flow.run", circuit=aig.name, scenario=self.scenario):
            optimized = self.optimize(aig)
            netlist = self.map(optimized)
            with obs.span("flow.sta"):
                timing = StaticTimingAnalyzer(
                    netlist, self.library, self.signoff
                ).analyze()
        return FlowResult(
            circuit=aig.name,
            scenario=self.scenario,
            netlist=netlist,
            optimized_aig=optimized,
            critical_delay=timing.max_delay,
            area=netlist.total_area(self.library),
            num_gates=netlist.num_gates,
        )

    def signoff_power(
        self, result: FlowResult, clock_period: float, vectors: int = 512, seed: int = 0
    ) -> PowerReport:
        """PrimeTime-style power decomposition at a given clock."""
        with obs.span(
            "flow.signoff_power", circuit=result.circuit, scenario=result.scenario
        ):
            analyzer = PowerAnalyzer(
                result.netlist, self.library, self.signoff, vectors=vectors, seed=seed
            )
            result.power = analyzer.analyze(clock_period)
        return result.power


def run_scenarios(
    aig: AIG,
    library: Library,
    scenarios: list[str] | None = None,
    clock_margin: float = 1.1,
    vectors: int = 512,
    use_choices: bool = True,
) -> dict[str, FlowResult]:
    """Run all scenarios on one circuit with the fair-power rule.

    The power of every variant is estimated at a common clock period:
    the slowest variant's critical delay times ``clock_margin``
    (footnote 1 of the paper — otherwise faster variants would be
    charged for their higher clock rates).
    """
    scenarios = scenarios or list(SCENARIOS)
    results: dict[str, FlowResult] = {}
    flows: dict[str, CryoSynthesisFlow] = {}
    optimized_cache: dict[str, AIG] = {}
    for scenario in scenarios:
        flow = CryoSynthesisFlow(library, scenario, use_choices=use_choices)
        flows[scenario] = flow
        # Stages 1-2 only depend on the stage-2 power mode; share them
        # between the two proposed scenarios.
        with obs.span("flow.scenario", circuit=aig.name, scenario=scenario):
            mode = flow.stage2_power_mode
            if mode not in optimized_cache:
                optimized_cache[mode] = flow.optimize(aig)
            optimized = optimized_cache[mode]
            netlist = flow.map(optimized)
            with obs.span("flow.sta"):
                timing = StaticTimingAnalyzer(netlist, library, flow.signoff).analyze()
        results[scenario] = FlowResult(
            circuit=aig.name,
            scenario=scenario,
            netlist=netlist,
            optimized_aig=optimized,
            critical_delay=timing.max_delay,
            area=netlist.total_area(library),
            num_gates=netlist.num_gates,
        )
    slowest = max(result.critical_delay for result in results.values())
    clock_period = max(slowest * clock_margin, 1e-12)
    for scenario, result in results.items():
        flows[scenario].signoff_power(result, clock_period, vectors=vectors)
    return results
