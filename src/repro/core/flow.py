"""The end-to-end cryogenic-aware synthesis flow (Section V-B).

The paper's three-stage pipeline:

1. **Technology-independent AIG optimization** — the ``c2rs`` script
   (Boolean resubstitution, rewriting, refactoring, balancing);
2. **Power-aware optimization** — ``dch -p; if -p; mfs -pegd; strash``
   (structural choices, power-aware k-LUT collapse, don't-care
   simplification, re-hashing);
3. **Technology mapping** — ``map -p`` against the cryogenic-aware
   standard-cell library, with the cost-function priority list chosen
   by the scenario:

   * ``baseline`` — state-of-the-art power-aware mapping (size stays
     the primary objective, ABC-style);
   * ``p_a_d`` — the proposed power -> area -> delay hierarchy;
   * ``p_d_a`` — the proposed power -> delay -> area hierarchy.

The pipeline is expressed as declarative :class:`repro.core.stages.Stage`
steps executed by a :class:`repro.core.stages.FlowRunner` over a shared
:class:`repro.core.context.DesignContext`.  Stages 1–2 are
content-addressed by the input AIG (they are technology-independent),
stage 3 by the optimized AIG + library fingerprint + cost policy — so
scenarios, temperatures, repeated runs, and (with a disk cache)
separate processes share every computation they legally can.

Signoff (delay + power decomposition) runs through the PrimeTime
substrate, with the paper's fair-comparison rule: the clock period for
power analysis is set by the slowest variant of the same circuit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .. import obs
from ..charlib.nldm import Library
from ..mapping.cost import CostPolicy, baseline_power_aware, p_a_d, p_d_a
from ..mapping.netlist import MappedNetlist
from ..mapping.techmap import TechnologyMapper
from ..resilience.guards import netlist_guard, synthesis_guard
from ..resilience.journal import RunJournal, artifact_digest
from ..sta.power import PowerAnalyzer, PowerReport
from ..sta.timing import SignoffConfig, StaticTimingAnalyzer, TimingReport
from ..synth.aig import AIG
from ..synth.scripts import ScriptReport, compress2rs, power_aware_restructure
from .artifacts import ArtifactCache, cache_key
from .context import DesignContext
from .stages import FlowRunner, Stage


SCENARIOS: dict[str, CostPolicy] = {
    "baseline": baseline_power_aware(),
    "p_a_d": p_a_d(),
    "p_d_a": p_d_a(),
}

#: A per-pass (label, AND count, depth) trace entry.
TraceStep = tuple[str, int, int]


@dataclass
class FlowResult:
    """Everything the evaluation needs from one synthesis run."""

    circuit: str
    scenario: str
    netlist: MappedNetlist
    optimized_aig: AIG
    critical_delay: float
    area: float
    num_gates: int
    #: Filled by :meth:`CryoSynthesisFlow.signoff_power`.
    power: PowerReport | None = None
    #: The signoff STA report of the mapped netlist (critical path,
    #: per-PO arrivals, net loads/slews); reused by power signoff so
    #: timing is computed once per run.
    timing: TimingReport | None = None
    #: Per-pass size/depth trajectory of stages 1–2 (``stage/pass``
    #: labels), surfaced in :meth:`to_dict` for ``--json`` output.
    opt_trace: tuple[TraceStep, ...] | None = None
    #: Qualified ``"CELL:A->Y"`` arcs of the library this run mapped
    #: against that carry fallback-quality tables (see
    #: ``docs/ROBUSTNESS.md``).  Empty on healthy runs.
    degraded: tuple[str, ...] = ()
    #: ``"stage: violation"`` entries from stage-boundary guards that
    #: ran in ``REPRO_GUARDS=warn`` mode (in the default ``enforce``
    #: mode a violation raises instead).  Empty on healthy runs; a
    #: non-empty value also vetoes scenario-result caching/journaling.
    guard_violations: tuple[str, ...] = ()

    @property
    def is_degraded(self) -> bool:
        return bool(self.degraded)

    @property
    def total_power(self) -> float:
        if self.power is None:
            raise ValueError("run signoff_power first")
        return self.power.total

    def to_dict(self) -> dict:
        """JSON-serializable view of the run (diffable between runs)."""
        out = {
            "circuit": self.circuit,
            "scenario": self.scenario,
            "num_gates": self.num_gates,
            "area_um2": self.area,
            "critical_delay_s": self.critical_delay,
            "aig_nodes": self.optimized_aig.num_ands,
            "aig_depth": self.optimized_aig.depth(),
        }
        if self.timing is not None:
            out["timing"] = self.timing.to_dict()
        if self.power is not None:
            out["power"] = {
                "total_w": self.power.total,
                "leakage_w": self.power.leakage,
                "internal_w": self.power.internal,
                "switching_w": self.power.switching,
                "clock_period_s": self.power.clock_period,
                "temperature_k": self.power.temperature,
            }
        if self.opt_trace is not None:
            out["optimization_trace"] = [
                {"pass": label, "ands": ands, "depth": depth}
                for label, ands, depth in self.opt_trace
            ]
        # Only on degraded runs, so healthy --json output is unchanged.
        if self.degraded:
            out["degraded"] = list(self.degraded)
        if self.guard_violations:
            out["guard_violations"] = list(self.guard_violations)
        return out


def _prefix_steps(stage: str, steps: tuple[TraceStep, ...]) -> tuple[TraceStep, ...]:
    return tuple((f"{stage}/{label}", ands, depth) for label, ands, depth in steps)


class CryoSynthesisFlow:
    """Three-stage synthesis + signoff against one library corner.

    Accepts either a bare :class:`Library` (a private
    :class:`DesignContext` is built around it) or an explicit shared
    ``context`` — the latter is what lets scenarios, circuits, and
    worker threads share the characterized library, the match-table
    view, and every cached stage output.

    ``deadline_at`` (absolute ``time.monotonic``) bounds every stage
    this flow runs: before starting a stage the runner checks the
    remaining budget and fails with
    :class:`repro.resilience.errors.StageTimeoutError` instead of
    starting work it cannot afford.  The characterization service uses
    this to propagate a per-job deadline into every scenario's flow.
    """

    def __init__(
        self,
        library: Library | None = None,
        scenario: str = "baseline",
        k_lut: int = 6,
        use_choices: bool = True,
        signoff: SignoffConfig | None = None,
        skip_stage2: bool = False,
        context: DesignContext | None = None,
        journal: RunJournal | None = None,
        deadline_at: float | None = None,
    ):
        if scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}")
        if context is None:
            if library is None:
                raise ValueError("provide a characterized library or a DesignContext")
            context = DesignContext.from_library(library, signoff=signoff)
        elif signoff is not None:
            context = context.with_signoff(signoff)
        self.context = context
        self.library = context.library
        self.scenario = scenario
        self.policy = SCENARIOS[scenario]
        self.k_lut = k_lut
        self.use_choices = use_choices
        self.signoff = context.signoff
        self.skip_stage2 = skip_stage2
        self.journal = journal
        self.deadline_at = deadline_at

    # ------------------------------------------------------------------
    @property
    def stage2_power_mode(self) -> str:
        """ABC's ``-p`` keeps size primary (baseline); the proposed
        hierarchies make power the primary stage-2 cost."""
        return "tiebreak" if self.scenario == "baseline" else "primary"

    # ------------------------------------------------------------------
    # Stage declarations
    # ------------------------------------------------------------------
    def _stage1(self) -> Stage:
        def compute(ctx: DesignContext, ins) -> tuple[AIG, tuple[TraceStep, ...]]:
            aig = ins["aig"]
            report = ScriptReport()
            optimized = compress2rs(aig, report)
            return optimized, tuple(report.steps)

        return Stage(
            name="c2rs",
            inputs=("aig",),
            output="stage1",
            compute=compute,
            # Technology-independent: keyed by the input network alone,
            # so the result is shared across temperatures and policies.
            cache_key=lambda ctx, ins: cache_key("stage1.c2rs", ins["aig"]),
            guard=lambda ctx, ins, value: synthesis_guard(
                "c2rs", ins["aig"], value[0]
            ),
        )

    def _stage2(self) -> Stage:
        mode = self.stage2_power_mode

        def compute(ctx: DesignContext, ins) -> tuple[AIG, tuple[TraceStep, ...]]:
            stage1_aig, _ = ins["stage1"]
            report = ScriptReport()
            restructured = power_aware_restructure(
                stage1_aig,
                k=self.k_lut,
                power_mode=mode,
                use_choices=self.use_choices,
                report=report,
            )
            return restructured, tuple(report.steps)

        return Stage(
            name="power_restructure",
            inputs=("stage1",),
            output="stage2",
            compute=compute,
            # Also technology-independent; two scenarios with the same
            # power mode share this computation (the generalization of
            # the old hand-rolled ``optimized_cache``).
            cache_key=lambda ctx, ins: cache_key(
                "stage2.power", ins["stage1"][0], self.k_lut, mode, self.use_choices
            ),
            guard=lambda ctx, ins, value: synthesis_guard(
                "power_restructure", ins["stage1"][0], value[0]
            ),
        )

    def _select(self) -> Stage:
        last = "stage1" if self.skip_stage2 else "stage2"
        inputs = ("stage1",) if self.skip_stage2 else ("stage1", "stage2")

        def compute(ctx: DesignContext, ins) -> tuple[AIG, tuple[TraceStep, ...]]:
            trace = _prefix_steps("c2rs", ins["stage1"][1])
            if not self.skip_stage2:
                trace += _prefix_steps("power", ins["stage2"][1])
            return ins[last][0], trace

        return Stage(
            name="select", inputs=inputs, output="optimized", compute=compute
        )

    def _map_stage(self) -> Stage:
        def compute(ctx: DesignContext, ins) -> MappedNetlist:
            optimized = ins["optimized"][0]
            mapper = TechnologyMapper(ctx.view, self.policy)
            return mapper.map(optimized)

        return Stage(
            name="map",
            inputs=("optimized",),
            output="netlist",
            compute=compute,
            cache_key=lambda ctx, ins: cache_key(
                "map", ins["optimized"][0], ctx.library_fingerprint, self.policy
            ),
            guard=lambda ctx, ins, value: netlist_guard(ctx.library, value),
        )

    def _sta_stage(self) -> Stage:
        def compute(ctx: DesignContext, ins):
            return StaticTimingAnalyzer.from_context(ctx, ins["netlist"]).analyze()

        # Cheap relative to synthesis/mapping and dependent only on
        # already-cached inputs: always recomputed.
        return Stage(name="sta", inputs=("netlist",), output="timing", compute=compute)

    def synthesis_stages(self) -> list[Stage]:
        """The declarative pipeline this flow executes."""
        stages = [self._stage1()]
        if not self.skip_stage2:
            stages.append(self._stage2())
        stages.extend([self._select(), self._map_stage(), self._sta_stage()])
        return stages

    # ------------------------------------------------------------------
    # Public API (unchanged surface)
    # ------------------------------------------------------------------
    def optimize(self, aig: AIG) -> AIG:
        """Stages 1 + 2: technology-independent + power-aware opt."""
        stages = [self._stage1()]
        if not self.skip_stage2:
            stages.append(self._stage2())
        stages.append(self._select())
        runner = FlowRunner(
            self.context, stages, span_prefix="flow", journal=self.journal,
            deadline_at=self.deadline_at,
        )
        return runner.run(aig=aig)["optimized"][0]

    def map(self, aig: AIG) -> MappedNetlist:
        """Stage 3: technology mapping under the scenario's policy."""
        runner = FlowRunner(
            self.context, [self._map_stage()], span_prefix="flow",
            journal=self.journal, deadline_at=self.deadline_at,
        )
        return runner.run(optimized=(aig, ()))["netlist"]

    def run(self, aig: AIG) -> FlowResult:
        """Full pipeline on one circuit (power signoff done separately
        because the clock period depends on the sibling variants)."""
        with obs.span("flow.run", circuit=aig.name, scenario=self.scenario):
            runner = FlowRunner(
                self.context, self.synthesis_stages(), span_prefix="flow",
                journal=self.journal, deadline_at=self.deadline_at,
            )
            artifacts = runner.run(aig=aig)
        optimized, trace = artifacts["optimized"]
        netlist = artifacts["netlist"]
        return FlowResult(
            circuit=aig.name,
            scenario=self.scenario,
            netlist=netlist,
            optimized_aig=optimized,
            critical_delay=artifacts["timing"].max_delay,
            area=netlist.total_area(self.library),
            num_gates=netlist.num_gates,
            timing=artifacts["timing"],
            opt_trace=trace,
            degraded=tuple(self.library.degraded_arcs()),
            guard_violations=tuple(runner.guard_violations),
        )

    def signoff_power(
        self,
        result: FlowResult,
        clock_period: float,
        vectors: int = 512,
        seed: int | None = None,
    ) -> PowerReport:
        """PrimeTime-style power decomposition at a given clock."""
        with obs.span(
            "flow.signoff_power", circuit=result.circuit, scenario=result.scenario
        ):
            analyzer = PowerAnalyzer.from_context(
                self.context, result.netlist, vectors=vectors, seed=seed
            )
            # Loads/slews were already analyzed by the flow's STA stage.
            result.power = analyzer.analyze(clock_period, timing=result.timing)
        return result.power


def _scenario_task(payload: tuple) -> FlowResult:
    """Worker-side synthesis of one scenario (``isolate="process"``).

    Module-level so it pickles across the spawn boundary; the worker
    rebuilds its own :class:`DesignContext` (sharing the parent's disk
    cache directory, if any) because neither contexts nor flows
    survive pickling of their thread locks.  Signoff stays in the
    parent — the fair clock period couples the scenarios.
    """
    aig, library, scenario, use_choices, signoff, seed, cache_dir, budget_s = payload
    context = DesignContext.from_library(
        library,
        signoff=signoff,
        seed=seed,
        cache=ArtifactCache(cache_dir=cache_dir),
    )
    # The parent ships *remaining seconds* rather than an absolute
    # stamp: the deadline restarts at worker entry, so spawn latency is
    # never charged against the job's synthesis budget.
    flow = CryoSynthesisFlow(
        scenario=scenario,
        use_choices=use_choices,
        context=context,
        deadline_at=None if budget_s is None else time.monotonic() + budget_s,
    )
    with obs.span("flow.scenario", circuit=aig.name, scenario=scenario):
        return flow.run(aig)


def run_scenarios(
    aig: AIG,
    library: Library | None = None,
    scenarios: list[str] | None = None,
    clock_margin: float = 1.1,
    vectors: int = 512,
    use_choices: bool = True,
    context: DesignContext | None = None,
    jobs: int = 1,
    isolate: str = "thread",
    journal: RunJournal | None = None,
    deadline_s: float | None = None,
) -> dict[str, FlowResult]:
    """Run all scenarios on one circuit with the fair-power rule.

    The power of every variant is estimated at a common clock period:
    the slowest variant's critical delay times ``clock_margin``
    (footnote 1 of the paper — otherwise faster variants would be
    charged for their higher clock rates).

    Scenarios share one :class:`DesignContext` (one match-table view,
    one artifact cache), so stages 1–2 are computed once per distinct
    stage-2 power mode — the content-addressed generalization of the
    old per-call ``optimized_cache``.  With ``jobs > 1`` the scenario
    runs (and their signoffs) fan out over worker threads with
    deterministic, scenario-ordered results; ``isolate="process"``
    moves the synthesis fan-out into supervised worker subprocesses
    (:mod:`repro.resilience.isolation`).

    Crash safety: with a ``journal``, every fully signed-off scenario
    commits a ``scenario`` record carrying its cache key and result
    digest.  On resume the journal is consulted first — a scenario
    whose journaled digest still matches the cached artifact is
    *replayed* without recomputation, which is what makes a
    ``kill -9``'d sweep resumable to byte-identical output.  Degraded
    or guard-flagged results are never cached or journaled.

    ``deadline_s`` bounds the whole call: one shared absolute deadline
    covers every scenario's flow (the stages check it before starting
    work), so a service job's budget is spent once, not per scenario.
    """
    deadline_at = None if deadline_s is None else time.monotonic() + deadline_s
    if context is None:
        if library is None:
            raise ValueError("provide a characterized library or a DesignContext")
        context = DesignContext.from_library(library)
    scenarios = scenarios or list(SCENARIOS)
    keys = {
        scenario: context.scenario_key(
            aig, scenario, tuple(scenarios), use_choices, vectors, clock_margin
        )
        for scenario in scenarios
    }

    results: dict[str, FlowResult] = {}
    if journal is not None:
        completed = journal.completed_scenarios()
        for scenario in scenarios:
            digest = completed.get(keys[scenario])
            if digest is None:
                continue
            value = context.cache.get(keys[scenario])
            if value is not None and artifact_digest(value) == digest:
                results[scenario] = value
                obs.count("journal.replayed")
            else:
                # Journal and cache disagree (evicted, corrupted, or a
                # different cache dir): recompute conservatively.
                obs.count("journal.replay_miss")
    fresh = [s for s in scenarios if s not in results]

    # Journaling stage records from subprocess workers is impossible
    # (the journal's stream lives in the parent); scenario records
    # below still cover the resume contract.
    flows = {
        scenario: CryoSynthesisFlow(
            scenario=scenario,
            use_choices=use_choices,
            context=context,
            journal=journal if isolate == "thread" else None,
            deadline_at=deadline_at,
        )
        for scenario in fresh
    }
    labels = [f"{aig.name}/{scenario}" for scenario in fresh]
    if fresh:
        if isolate == "process":
            cache_dir = context.cache.cache_dir
            payloads = [
                (
                    aig,
                    context.library,
                    scenario,
                    use_choices,
                    context.signoff,
                    context.seed,
                    str(cache_dir) if cache_dir is not None else None,
                    None
                    if deadline_at is None
                    else max(0.0, deadline_at - time.monotonic()),
                )
                for scenario in fresh
            ]
            outs = obs.parallel_map(
                _scenario_task, payloads, jobs, labels=labels, isolate="process"
            )
        else:

            def run_one(scenario: str) -> FlowResult:
                with obs.span("flow.scenario", circuit=aig.name, scenario=scenario):
                    return flows[scenario].run(aig)

            outs = obs.parallel_map(run_one, fresh, jobs, labels=labels)
        results.update(zip(fresh, outs))

    slowest = max(result.critical_delay for result in results.values())
    clock_period = max(slowest * clock_margin, 1e-12)

    def signoff_one(scenario: str) -> None:
        flow = flows.get(scenario) or CryoSynthesisFlow(
            scenario=scenario, use_choices=use_choices, context=context
        )
        flow.signoff_power(results[scenario], clock_period, vectors=vectors)

    obs.parallel_map(signoff_one, fresh, jobs, labels=labels)

    for scenario in fresh:
        result = results[scenario]
        if result.is_degraded or result.guard_violations:
            continue  # reduced-fidelity results never enter the ledger
        context.cache.put(keys[scenario], result)
        if journal is not None:
            journal.record(
                "scenario",
                circuit=aig.name,
                scenario=scenario,
                key=keys[scenario],
                digest=artifact_digest(result),
            )
    return {scenario: results[scenario] for scenario in scenarios}
