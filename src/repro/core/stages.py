"""Declarative pipeline stages and the runner that executes them.

The paper's flow is a fixed three-stage pipeline; this module makes
that shape explicit instead of hard-coding it.  Each step is a
:class:`Stage` with named inputs, one named output, a compute
function, and (when the step is pure) a cache-key function; a
:class:`FlowRunner` executes a stage list over a shared artifact
namespace, consulting the :class:`repro.core.artifacts.ArtifactCache`
before computing anything.

The runner is what generalizes the old hand-rolled
``optimized_cache``/``stage2_power_mode`` sharing in
``run_scenarios``: two scenarios whose stage-2 parameters agree now
produce the *same cache key* and therefore share the computation
automatically — across scenarios, circuits, temperatures, worker
threads, and (with a disk-backed cache) process restarts.

Observability: each stage executes under a ``<prefix>.<name>`` span
(``stage.`` by default; the synthesis flow uses ``flow.``) carrying a
``cache`` attribute (``"hit"``/``"miss"``/``"uncached"``), and the
cache emits the ``cache.hit``/``cache.miss`` counters; see
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from .. import obs
from ..resilience import guards
from ..resilience.errors import GuardViolation, StageTimeoutError
from .context import DesignContext

#: Signature of a stage body: ``(context, inputs) -> output``.
StageFn = Callable[[DesignContext, Mapping[str, Any]], Any]
#: Signature of a stage cache-key builder: ``(context, inputs) -> key``.
KeyFn = Callable[[DesignContext, Mapping[str, Any]], str]
#: Signature of a stage guard: ``(context, inputs, output) -> violations``.
GuardFn = Callable[[DesignContext, Mapping[str, Any], Any], "list[str]"]


@dataclass(frozen=True)
class Stage:
    """One named, optionally-cacheable pipeline step.

    ``inputs`` name artifacts that must exist in the runner's
    namespace before the stage runs; ``output`` names the artifact the
    stage produces.  A stage with ``cache_key=None`` always computes
    (use for impure or cheap steps); otherwise the key must capture
    *everything* the output depends on — the runner trusts it
    blindly.  ``persist`` additionally allows the on-disk cache tier
    (the output must pickle losslessly).
    """

    name: str
    inputs: tuple[str, ...]
    output: str
    compute: StageFn
    cache_key: KeyFn | None = None
    persist: bool = True
    #: Wall-clock budget for one execution of this stage [s].  ``None``
    #: means unbounded.  On expiry the runner raises
    #: :class:`repro.resilience.errors.StageTimeoutError`; the stage's
    #: worker thread is abandoned (it cannot be killed), so timeouts
    #: are a last-resort guard against hung stages, not flow control.
    timeout_s: float | None = None
    #: Stage-boundary invariant check (see
    #: :mod:`repro.resilience.guards`).  Runs on every cache *miss*,
    #: after ``compute`` but before the value is stored: any violation
    #: vetoes caching (the wrong artifact is quarantined, never
    #: shared), and in ``REPRO_GUARDS=enforce`` mode (the default)
    #: additionally raises :class:`GuardViolation`.  Cache hits are
    #: trusted — they were guarded when first computed.
    guard: GuardFn | None = None


def _run_bounded(stage: Stage, fn: Callable[[], Any], budget_s: float) -> Any:
    """Run a stage body on a worker thread with a wall-clock budget.

    The worker inherits the caller's :mod:`contextvars` context so the
    stage's spans land in the surrounding trace.  A timed-out worker
    thread cannot be killed — it is abandoned to finish in the
    background while the flow fails with :class:`StageTimeoutError`
    (the same caveat as ``parallel_map``'s ``timeout_s``).
    """
    context = contextvars.copy_context()
    pool = ThreadPoolExecutor(max_workers=1)
    try:
        future = pool.submit(context.run, fn)
        try:
            return future.result(timeout=budget_s)
        except _FuturesTimeout:
            obs.count("stage.timeout")
            obs.count(f"stage.timeout.{stage.name}")
            raise StageTimeoutError(
                f"stage {stage.name!r} exceeded its {budget_s:g}s budget",
                site=f"stage.{stage.name}",
                timeout_s=budget_s,
            ) from None
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


class FlowRunner:
    """Execute a stage list over a shared artifact namespace.

    ``deadline_s`` bounds the *whole* run: before each stage starts,
    the runner checks the remaining budget and fails with
    :class:`StageTimeoutError` rather than starting a stage it cannot
    afford.  Per-stage ``timeout_s`` budgets additionally bound each
    individual execution (clipped to the remaining deadline).

    ``deadline_at`` is the absolute (``time.monotonic``) variant of
    ``deadline_s``, for callers sharing one deadline across *several*
    runners — a service job whose budget must cover every scenario's
    flow, not restart per flow (see :mod:`repro.server`).  When both
    are given the earlier one wins.

    ``journal`` is an optional :class:`repro.resilience.journal.RunJournal`;
    when given, every cacheable stage completion commits a ``stage``
    record (cache key, result digest, hit/miss) and every guard
    rejection commits a ``guard_violation`` record.  Violations that
    do not raise (``REPRO_GUARDS=warn``) accumulate in
    :attr:`guard_violations` for the caller to surface.
    """

    def __init__(
        self,
        context: DesignContext,
        stages: Sequence[Stage],
        span_prefix: str = "stage",
        deadline_s: float | None = None,
        deadline_at: float | None = None,
        journal=None,
    ):
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.context = context
        self.stages = tuple(stages)
        self.span_prefix = span_prefix
        self.deadline_s = deadline_s
        self.deadline_at = deadline_at
        self.journal = journal
        #: ``"stage: violation"`` strings from guards that did not raise.
        self.guard_violations: list[str] = []

    def _stage_budget(self, stage: Stage, deadline: float | None) -> float | None:
        """Tightest applicable budget for one stage execution [s]."""
        budgets = []
        if stage.timeout_s is not None:
            budgets.append(stage.timeout_s)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                obs.count("stage.deadline_exceeded")
                raise StageTimeoutError(
                    "flow deadline exhausted before "
                    f"stage {stage.name!r}"
                    + (
                        f" (budget {self.deadline_s:g}s)"
                        if self.deadline_s is not None
                        else ""
                    ),
                    site=f"stage.{stage.name}",
                    timeout_s=self.deadline_s,
                )
            budgets.append(remaining)
        return min(budgets) if budgets else None

    def run(self, **initial: Any) -> dict[str, Any]:
        """Run every stage in order; returns the artifact namespace.

        ``initial`` seeds the namespace (e.g. ``aig=...``).  Each
        cacheable stage is looked up before being computed; the
        returned dict maps artifact names (plus the initial seeds) to
        values.  Any stage failure is annotated in place with a
        ``stage`` attribute naming the failing stage and counted as
        ``stage.error.<name>`` before it propagates.
        """
        deadline = (
            None if self.deadline_s is None else time.monotonic() + self.deadline_s
        )
        if self.deadline_at is not None:
            deadline = (
                self.deadline_at if deadline is None
                else min(deadline, self.deadline_at)
            )
        artifacts: dict[str, Any] = dict(initial)
        for stage in self.stages:
            missing = [name for name in stage.inputs if name not in artifacts]
            if missing:
                raise KeyError(
                    f"stage {stage.name!r} missing inputs {missing}; "
                    f"have {sorted(artifacts)}"
                )
            inputs = {name: artifacts[name] for name in stage.inputs}
            stage_t0 = time.monotonic()
            try:
                with obs.span(f"{self.span_prefix}.{stage.name}") as sp:
                    budget = self._stage_budget(stage, deadline)
                    if stage.cache_key is None:
                        sp.set(cache="uncached")

                        def compute_guarded():
                            value = stage.compute(self.context, inputs)
                            self._apply_guard(stage, inputs, value)
                            return value

                        value = self._execute(stage, compute_guarded, budget)
                    else:
                        key = stage.cache_key(self.context, inputs)

                        def lookup():
                            return self.context.cache.get_or_compute_flagged(
                                key,
                                lambda: stage.compute(self.context, inputs),
                                persist=stage.persist,
                                cache_if=lambda v: self._apply_guard(
                                    stage, inputs, v
                                ),
                            )

                        value, hit = self._execute(stage, lookup, budget)
                        sp.set(cache="hit" if hit else "miss")
                        self._journal_stage(stage, key, value, hit)
            except StageTimeoutError:
                raise
            except Exception as exc:
                exc.stage = stage.name
                if hasattr(exc, "add_note"):  # Python >= 3.11
                    exc.add_note(f"while running flow stage {stage.name!r}")
                obs.count(f"stage.error.{stage.name}")
                raise
            # Histogram (not just the span) so repeated stages across a
            # fan-out yield percentiles, and the run ledger can track
            # per-stage wall time without re-walking the span tree.
            obs.observe(f"stage.wall_s.{stage.name}", time.monotonic() - stage_t0)
            artifacts[stage.output] = value
        return artifacts

    def _execute(self, stage: Stage, fn: Callable[[], Any], budget: float | None):
        if budget is None:
            return fn()
        return _run_bounded(stage, fn, budget)

    def _apply_guard(self, stage: Stage, inputs: Mapping[str, Any], value: Any) -> bool:
        """Check a freshly computed artifact; True means cacheable.

        Runs as the cache's ``cache_if`` predicate, so a violating
        artifact is quarantined (never stored) regardless of mode; in
        ``enforce`` mode the raise additionally fails the stage.
        """
        if stage.guard is None or guards.mode() == "off":
            return True
        violations = stage.guard(self.context, inputs, value)
        if not violations:
            return True
        obs.count("guard.violation")
        obs.count(f"guard.violation.{stage.name}")
        entries = [f"{stage.name}: {v}" for v in violations]
        self.guard_violations.extend(entries)
        if self.journal is not None:
            self.journal.record(
                "guard_violation", stage=stage.name, violations=entries
            )
        if guards.mode() == "enforce":
            raise GuardViolation(
                f"stage {stage.name!r} produced an invalid artifact: "
                + "; ".join(violations),
                site=f"guard.{stage.name}",
                stage=stage.name,
                violations=entries,
            )
        return False

    def _journal_stage(self, stage: Stage, key: str, value: Any, hit: bool) -> None:
        if self.journal is None:
            return
        from ..resilience.journal import artifact_digest

        try:
            digest = artifact_digest(value)
        except Exception:
            digest = None  # unpicklable stage output: record without digest
        self.journal.record(
            "stage", name=stage.name, key=key, digest=digest, cache_hit=hit
        )
