"""Declarative pipeline stages and the runner that executes them.

The paper's flow is a fixed three-stage pipeline; this module makes
that shape explicit instead of hard-coding it.  Each step is a
:class:`Stage` with named inputs, one named output, a compute
function, and (when the step is pure) a cache-key function; a
:class:`FlowRunner` executes a stage list over a shared artifact
namespace, consulting the :class:`repro.core.artifacts.ArtifactCache`
before computing anything.

The runner is what generalizes the old hand-rolled
``optimized_cache``/``stage2_power_mode`` sharing in
``run_scenarios``: two scenarios whose stage-2 parameters agree now
produce the *same cache key* and therefore share the computation
automatically — across scenarios, circuits, temperatures, worker
threads, and (with a disk-backed cache) process restarts.

Observability: each stage executes under a ``<prefix>.<name>`` span
(``stage.`` by default; the synthesis flow uses ``flow.``) carrying a
``cache`` attribute (``"hit"``/``"miss"``/``"uncached"``), and the
cache emits the ``cache.hit``/``cache.miss`` counters; see
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from .. import obs
from .context import DesignContext

#: Signature of a stage body: ``(context, inputs) -> output``.
StageFn = Callable[[DesignContext, Mapping[str, Any]], Any]
#: Signature of a stage cache-key builder: ``(context, inputs) -> key``.
KeyFn = Callable[[DesignContext, Mapping[str, Any]], str]


@dataclass(frozen=True)
class Stage:
    """One named, optionally-cacheable pipeline step.

    ``inputs`` name artifacts that must exist in the runner's
    namespace before the stage runs; ``output`` names the artifact the
    stage produces.  A stage with ``cache_key=None`` always computes
    (use for impure or cheap steps); otherwise the key must capture
    *everything* the output depends on — the runner trusts it
    blindly.  ``persist`` additionally allows the on-disk cache tier
    (the output must pickle losslessly).
    """

    name: str
    inputs: tuple[str, ...]
    output: str
    compute: StageFn
    cache_key: KeyFn | None = None
    persist: bool = True


class FlowRunner:
    """Execute a stage list over a shared artifact namespace."""

    def __init__(
        self,
        context: DesignContext,
        stages: Sequence[Stage],
        span_prefix: str = "stage",
    ):
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.context = context
        self.stages = tuple(stages)
        self.span_prefix = span_prefix

    def run(self, **initial: Any) -> dict[str, Any]:
        """Run every stage in order; returns the artifact namespace.

        ``initial`` seeds the namespace (e.g. ``aig=...``).  Each
        cacheable stage is looked up before being computed; the
        returned dict maps artifact names (plus the initial seeds) to
        values.
        """
        artifacts: dict[str, Any] = dict(initial)
        for stage in self.stages:
            missing = [name for name in stage.inputs if name not in artifacts]
            if missing:
                raise KeyError(
                    f"stage {stage.name!r} missing inputs {missing}; "
                    f"have {sorted(artifacts)}"
                )
            inputs = {name: artifacts[name] for name in stage.inputs}
            with obs.span(f"{self.span_prefix}.{stage.name}") as sp:
                if stage.cache_key is None:
                    sp.set(cache="uncached")
                    value = stage.compute(self.context, inputs)
                else:
                    key = stage.cache_key(self.context, inputs)
                    value, hit = self.context.cache.get_or_compute_flagged(
                        key,
                        lambda: stage.compute(self.context, inputs),
                        persist=stage.persist,
                    )
                    sp.set(cache="hit" if hit else "miss")
            artifacts[stage.output] = value
        return artifacts
