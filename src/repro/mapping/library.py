"""Technology-library view for Boolean matching.

Preprocesses a characterized :class:`repro.charlib.Library` into match
tables: for every distinct ≤4-input cell function, all NP
configurations (input permutations x input/output polarities) are
enumerated and indexed by the resulting truth table.  Technology
mapping then matches a cut by a single dictionary lookup — no
canonicalization in the inner loop.

Cells sharing a function (drive-strength families) are grouped; the
mapper picks among them by cost.  Cells with more than 4 inputs are
characterized and written to liberty but not used for cut matching,
mirroring the input-count limits of practical matchers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations

from ..charlib.nldm import Library, LibertyCell

#: Maximum matchable gate arity.
MAX_MATCH_INPUTS = 4


@dataclass(frozen=True)
class MatchConfig:
    """One way to realize a cut function with a cell family.

    Semantics: connecting cell input pin ``i`` (in ``pin_order``) to
    cut leaf ``leaf_of_pin[i]``, inverting that connection when bit
    ``i`` of ``pin_neg_mask`` is set, and inverting the output when
    ``output_neg`` is set, realizes the cut function exactly.
    """

    function_key: tuple[int, int]  # (truth table, arity) of the family
    leaf_of_pin: tuple[int, ...]
    pin_neg_mask: int
    output_neg: bool

    @property
    def num_input_inverters(self) -> int:
        return bin(self.pin_neg_mask).count("1")


@dataclass
class CellFamily:
    """Cells sharing one Boolean function, sorted by area."""

    table: int
    arity: int
    cells: list[LibertyCell] = field(default_factory=list)


class TechLibraryView:
    """Match tables + convenience metrics over a liberty library."""

    @classmethod
    def for_library(cls, library: Library, cache=None) -> "TechLibraryView":
        """The shared view of a library, via the artifact cache.

        View construction enumerates every NP configuration of every
        matchable cell — far too expensive to repeat per scenario.  The
        view is pure w.r.t. the library, so it is content-addressed by
        the library fingerprint and built at most once per cache
        (memory tier only: the view is cheap to rebuild relative to
        characterization and holds a reference to the live library).
        """
        from ..core.artifacts import cache_key, default_cache

        cache = cache or default_cache()
        key = cache_key("techview", library.fingerprint())
        return cache.get_or_compute(key, lambda: cls(library), persist=False)

    def __init__(self, library: Library):
        self.library = library
        self.families: dict[tuple[int, int], CellFamily] = {}
        #: arity -> truth table -> list of MatchConfig.
        self.match_tables: dict[int, dict[int, list[MatchConfig]]] = {
            n: {} for n in range(MAX_MATCH_INPUTS + 1)
        }
        self._build()
        self.inverter = self._pick_inverter()
        self.buffer = self._pick_buffer()
        # Per-cell constants used by the mapper's inner loop: NLDM
        # lookups are far too slow to repeat per candidate match.
        self._delay_cache: dict[str, float] = {}
        self._energy_cache: dict[str, float] = {}
        self._leak_cache: dict[str, float] = {}
        self._cap_cache: dict[str, tuple[float, ...]] = {}
        for cell in library.cells.values():
            self._delay_cache[cell.name] = cell.typical_delay()
            self._energy_cache[cell.name] = cell.typical_energy()
            self._leak_cache[cell.name] = cell.leakage_average
            self._cap_cache[cell.name] = tuple(
                cell.input_caps.get(pin, 0.0) for pin in cell.input_pins
            )

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for cell in self.library.cells.values():
            if cell.is_sequential or len(cell.output_pins) != 1:
                continue
            out = cell.output_pins[0]
            if out not in cell.truth_tables:
                continue
            arity = len(cell.input_pins)
            if not 1 <= arity <= MAX_MATCH_INPUTS:
                continue
            table = cell.truth_tables[out]
            key = (table, arity)
            family = self.families.get(key)
            if family is None:
                family = CellFamily(table, arity)
                self.families[key] = family
                self._index_function(table, arity)
            family.cells.append(cell)
        for family in self.families.values():
            family.cells.sort(key=lambda c: c.area)
        self._prune_configs()

    def _prune_configs(self, per_family: int = 2) -> None:
        """Keep only the cheapest configs per (function, family).

        Many NP configurations of a symmetric gate realize the same
        cut function; for cost purposes only the inverter count and
        pin assignment matter, so a couple of minimal-inverter
        configs per family suffice and shrink the mapper's inner loop.
        """
        for arity, table_map in self.match_tables.items():
            for tt, configs in table_map.items():
                by_family: dict[tuple[int, int], list[MatchConfig]] = {}
                for config in configs:
                    by_family.setdefault(config.function_key, []).append(config)
                pruned: list[MatchConfig] = []
                for family_configs in by_family.values():
                    family_configs.sort(
                        key=lambda c: (c.num_input_inverters, c.output_neg)
                    )
                    pruned.extend(family_configs[:per_family])
                table_map[tt] = pruned

    def _index_function(self, table: int, arity: int) -> None:
        """Enumerate all NP configurations of one function."""
        key = (table, arity)
        for perm in permutations(range(arity)):
            for neg_mask in range(1 << arity):
                # Function realized at the output: f(y) where cell pin
                # i sees leaf perm[i] (inverted per neg bit of pin i).
                realized = 0
                for assignment in range(1 << arity):
                    pin_values = 0
                    for pin in range(arity):
                        bit = (assignment >> perm[pin]) & 1
                        if (neg_mask >> pin) & 1:
                            bit ^= 1
                        pin_values |= bit << pin
                    if (table >> pin_values) & 1:
                        realized |= 1 << assignment
                for output_neg in (False, True):
                    final = realized ^ ((1 << (1 << arity)) - 1 if output_neg else 0)
                    configs = self.match_tables[arity].setdefault(final, [])
                    configs.append(
                        MatchConfig(
                            function_key=key,
                            leaf_of_pin=perm,
                            pin_neg_mask=neg_mask,
                            output_neg=output_neg,
                        )
                    )

    def _pick_inverter(self) -> LibertyCell:
        candidates = [
            family.cells[0]
            for (table, arity), family in self.families.items()
            if arity == 1 and table == 0b01
        ]
        if not candidates:
            raise ValueError("library has no inverter; mapping impossible")
        return min(candidates, key=lambda c: c.area)

    def _pick_buffer(self) -> LibertyCell | None:
        candidates = [
            family.cells[0]
            for (table, arity), family in self.families.items()
            if arity == 1 and table == 0b10
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda c: c.area)

    # ------------------------------------------------------------------
    def matches(self, table: int, arity: int) -> list[MatchConfig]:
        """All NP configurations realizing a cut function."""
        if arity > MAX_MATCH_INPUTS:
            return []
        return self.match_tables[arity].get(table, [])

    def family_cells(self, config: MatchConfig) -> list[LibertyCell]:
        return self.families[config.function_key].cells

    # ------------------------------------------------------------------
    # Cell metrics used by the mapper's cost functions
    # ------------------------------------------------------------------
    def cell_delay(self, cell: LibertyCell) -> float:
        """Representative delay [s] (worst arc, grid midpoint)."""
        return self._delay_cache[cell.name]

    def cell_energy(self, cell: LibertyCell) -> float:
        """Representative internal energy per output event [J]."""
        return self._energy_cache[cell.name]

    def cell_input_cap(self, cell: LibertyCell, pin_index: int) -> float:
        return self._cap_cache[cell.name][pin_index]

    def cell_leakage(self, cell: LibertyCell) -> float:
        return self._leak_cache[cell.name]
