"""Post-mapping gate sizing (discrete drive-strength selection).

The paper leaves deeper cryogenic-aware optimization as future work;
this pass implements the most natural next step: after technology
mapping, revisit every gate and pick the drive strength within its
cell family that best serves the active cost policy given the *actual*
load the gate drives — upsizing only where the measured load justifies
the extra input capacitance and internal energy, downsizing
over-provisioned cells on light nets.

The pass is functionality-preserving by construction (cells are only
swapped within a Boolean-function family) and iterates to a fixed
point (sizing one gate changes the load of its fanins).
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from ..charlib.nldm import Library, LibertyCell
from .cost import CostPolicy, baseline_power_aware
from .netlist import GateInstance, MappedNetlist

# ``repro.sta.timing`` imports ``repro.mapping.netlist``, so a
# module-level import here would close an import cycle whose outcome
# depends on which package initializes first.  The STA classes are
# imported lazily inside :func:`size_gates` instead.
if TYPE_CHECKING:
    from ..sta.timing import SignoffConfig


@dataclass
class SizingReport:
    """Outcome of one sizing run."""

    passes: int = 0
    upsized: int = 0
    downsized: int = 0

    @property
    def total_changes(self) -> int:
        return self.upsized + self.downsized


def _family_key(cell: LibertyCell) -> tuple:
    """Cells are interchangeable iff same function over same pins."""
    return (
        cell.input_pins,
        cell.output_pins,
        tuple(sorted(cell.truth_tables.items())),
    )


def _build_families(library: Library) -> dict[tuple, list[LibertyCell]]:
    families: dict[tuple, list[LibertyCell]] = {}
    for cell in library.cells.values():
        if cell.is_sequential or not cell.truth_tables:
            continue
        families.setdefault(_family_key(cell), []).append(cell)
    for cells in families.values():
        cells.sort(key=lambda c: c.area)
    return families


def size_gates(
    netlist: MappedNetlist,
    library: Library,
    policy: CostPolicy | None = None,
    config: SignoffConfig | None = None,
    activity: float = 0.2,
    max_passes: int = 4,
) -> tuple[MappedNetlist, SizingReport]:
    """Resize gates within their function families.

    Returns a new netlist plus a report.  The local cost of a choice
    combines the gate's worst arc delay at its measured (slew, load),
    its per-event energy plus the input capacitance it presents, and
    its area — compared under ``policy``.
    """
    from ..sta.timing import SignoffConfig, StaticTimingAnalyzer

    policy = policy or baseline_power_aware()
    config = config or SignoffConfig()
    families = _build_families(library)
    report = SizingReport()
    vdd = library.vdd

    gates = [GateInstance(g.name, g.cell, dict(g.pins), g.output_net, g.output_pin)
             for g in netlist.gates]
    current = MappedNetlist(
        netlist.name, list(netlist.pi_nets), list(netlist.po_nets), gates
    )

    # One analyzer across all passes: with the graph engine, the
    # in-place cell swaps below are absorbed by ``sync`` and each pass
    # after the first is an incremental retime of the changed cones
    # instead of a full-netlist STA (``sta.incremental_hits`` counts
    # them).
    sta = StaticTimingAnalyzer(current, library, config)
    for _ in range(max_passes):
        report.passes += 1
        timing = sta.analyze()
        changes = 0
        for index, gate in enumerate(current.gates):
            cell = library[gate.cell]
            family = families.get(_family_key(cell))
            if not family or len(family) < 2:
                continue
            load = timing.net_load.get(gate.output_net, 0.0)
            # Remove this gate's own pin contribution bias: the load
            # seen is independent of the candidate choice.
            in_slew = max(
                (timing.slew.get(net, config.input_slew) for net in gate.pins.values()),
                default=config.input_slew,
            )
            best_cell = None
            best_cost = None
            for candidate in family:
                arcs = candidate.arcs
                if not arcs:
                    continue
                delay = max(arc.worst_delay(in_slew, load) for arc in arcs)
                energy = sum(arc.average_energy(in_slew, load) for arc in arcs) / len(arcs)
                input_cap = sum(candidate.input_caps.values())
                cost = {
                    "delay": delay,
                    "power": activity * (energy + input_cap * vdd * vdd)
                    + candidate.leakage_average * 1e-9,
                    "area": candidate.area,
                }
                if best_cost is None or policy.better(cost, best_cost) or (
                    not policy.better(best_cost, cost)
                    and policy.key(cost) < policy.key(best_cost)
                ):
                    best_cost = cost
                    best_cell = candidate
            if best_cell is not None and best_cell.name != gate.cell:
                old_area = cell.area
                current.gates[index] = GateInstance(
                    gate.name, best_cell.name, dict(gate.pins),
                    gate.output_net, gate.output_pin,
                )
                if best_cell.area > old_area:
                    report.upsized += 1
                else:
                    report.downsized += 1
                changes += 1
        if changes == 0:
            break
    return current, report
