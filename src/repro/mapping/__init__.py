"""Technology mapping: Boolean matching onto characterized libraries
with configurable cost-priority lists (the paper's contribution)."""

from .cost import CostPolicy, all_orderings, baseline_power_aware, p_a_d, p_d_a
from .library import CellFamily, MatchConfig, TechLibraryView
from .netlist import GateInstance, MappedNetlist
from .techmap import TechnologyMapper, map_to_gates
from .sizing import SizingReport, size_gates

__all__ = [
    "CostPolicy",
    "all_orderings",
    "baseline_power_aware",
    "p_a_d",
    "p_d_a",
    "CellFamily",
    "MatchConfig",
    "TechLibraryView",
    "GateInstance",
    "MappedNetlist",
    "TechnologyMapper",
    "map_to_gates",
    "SizingReport",
    "size_gates",
]
