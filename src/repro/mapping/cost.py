"""Cost policies: the paper's core contribution hook.

Conventional mappers optimize a priority list with network size first;
the paper modifies ABC's cost-function priority lists to put *power*
first (Section IV-B):

* ``baseline_power_aware`` — state-of-the-art power-aware mapping:
  area (the size proxy) remains the primary objective, power is used
  as the secondary criterion, delay as the tie-breaker.  This models
  "the best power optimizations that ABC offers out-of-the-box".
* ``p_a_d`` — proposed cryogenic-aware ordering power > area > delay.
* ``p_d_a`` — proposed cryogenic-aware ordering power > delay > area.

Costs compare lexicographically with a relative tie threshold, exactly
like ABC's priority lists ("if the size of two choices is equal within
a threshold, the delay is utilized as a tie-breaker").
"""

from __future__ import annotations

from dataclasses import dataclass

METRICS = ("power", "area", "delay")


@dataclass(frozen=True)
class CostPolicy:
    """A lexicographic cost ordering over {power, area, delay}."""

    name: str
    priorities: tuple[str, str, str]
    #: Relative threshold under which two values tie.
    epsilon: float = 0.02

    def __post_init__(self) -> None:
        if sorted(self.priorities) != sorted(METRICS):
            raise ValueError(
                f"priorities must be a permutation of {METRICS}, got {self.priorities}"
            )
        if self.epsilon < 0.0:
            raise ValueError("epsilon must be non-negative")

    def better(self, a: dict[str, float], b: dict[str, float]) -> bool:
        """True if cost vector ``a`` beats ``b`` under this policy."""
        for metric in self.priorities:
            va, vb = a[metric], b[metric]
            scale = max(abs(va), abs(vb), 1e-30)
            if abs(va - vb) / scale <= self.epsilon:
                continue
            return va < vb
        return False

    def key(self, costs: dict[str, float]) -> tuple[float, float, float]:
        """Raw ordering key (no epsilon), for deterministic sorts."""
        return tuple(costs[m] for m in self.priorities)  # type: ignore[return-value]


def baseline_power_aware() -> CostPolicy:
    """State-of-the-art power-aware mapping (size stays primary)."""
    return CostPolicy("baseline", ("area", "power", "delay"))


def p_a_d() -> CostPolicy:
    """Proposed cryogenic-aware ordering power -> area -> delay."""
    return CostPolicy("p_a_d", ("power", "area", "delay"))


def p_d_a() -> CostPolicy:
    """Proposed cryogenic-aware ordering power -> delay -> area."""
    return CostPolicy("p_d_a", ("power", "delay", "area"))


def all_orderings() -> list[CostPolicy]:
    """Every permutation of the three metrics (ablation support)."""
    from itertools import permutations

    return [
        CostPolicy("_".join(m[0] for m in perm), perm)
        for perm in permutations(METRICS)
    ]
