"""Standard-cell technology mapping (ABC's ``map``).

Cut-based Boolean matching with dynamic programming: every AND node
gets the best (cut, cell, NP-configuration) under the active
:class:`CostPolicy`.  The three cost metrics are computed locally per
match and accumulated area-flow style:

* **area** — cell area plus any inserted inverters;
* **delay** — arrival time through representative NLDM delays;
* **power** — switching power of the nets the match exposes
  (leaf-pin capacitance x leaf activity x V_dd^2), internal energy of
  the cell weighted by the root's activity, plus state-averaged
  leakage.  At cryogenic corners the leakage term is naturally
  negligible, which is exactly the paper's argument for re-weighting
  the objectives.

Inverters required by a configuration (input or output polarity) are
costed in the DP and shared per net during extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..charlib.nldm import Library, LibertyCell
from ..synth.activity import node_activities, simulated_activities
from ..synth.aig import AIG, lit_var
from ..synth.cuts import Cut, enumerate_cuts
from .cost import CostPolicy, baseline_power_aware
from .library import MatchConfig, TechLibraryView
from .netlist import GateInstance, MappedNetlist


@dataclass
class _Match:
    cut: Cut
    config: MatchConfig
    cell: LibertyCell
    costs: dict[str, float]
    arrival: float


class TechnologyMapper:
    """Maps AIGs onto a characterized library under a cost policy."""

    def __init__(
        self,
        view: TechLibraryView,
        policy: CostPolicy | None = None,
        k: int = 4,
        max_cuts: int = 8,
        cells_per_family: int = 2,
        activity_source: str = "simulation",
        pi_probability: float = 0.5,
        wire_cap: float = 1.4e-16,
        leakage_ref_period: float = 1.0e-9,
    ):
        self.view = view
        self.policy = policy or baseline_power_aware()
        self.k = k
        self.max_cuts = max_cuts
        self.cells_per_family = cells_per_family
        self.activity_source = activity_source
        self.pi_probability = pi_probability
        #: Estimated wire capacitance of a match's output net [F]
        #: (kept consistent with the signoff parasitics).
        self.wire_cap = wire_cap
        #: Reference clock period converting leakage power into a
        #: per-cycle energy commensurate with the dynamic terms [s].
        self.leakage_ref_period = leakage_ref_period
        inv = view.inverter
        self._inv_area = inv.area
        self._inv_delay = inv.typical_delay()
        self._inv_energy = inv.typical_energy()
        self._inv_cap = next(iter(inv.input_caps.values()))
        self._inv_leak = inv.leakage_average

    # ------------------------------------------------------------------
    def map(self, aig: AIG) -> MappedNetlist:
        """Map a combinational AIG to a gate-level netlist."""
        if aig.num_pis == 0 and aig.num_ands > 0:
            raise ValueError("cannot map a network without primary inputs")
        vdd = self.view.library.vdd
        if self.activity_source == "simulation":
            activities = simulated_activities(aig, vectors=256)
        else:
            activities = node_activities(aig, self.pi_probability)
        cuts = enumerate_cuts(aig, k=self.k, max_cuts=self.max_cuts)
        fanouts = aig.fanout_counts()

        best: dict[int, _Match] = {}
        zero = {"power": 0.0, "area": 0.0, "delay": 0.0}
        state_costs: dict[int, dict[str, float]] = {0: dict(zero)}
        arrivals: dict[int, float] = {0: 0.0}
        for node in aig.pis:
            state_costs[node] = dict(zero)
            arrivals[node] = 0.0

        matches_evaluated = 0
        for node in aig.and_nodes():
            chosen: _Match | None = None
            for cut in cuts[node]:
                if node in cut.leaves or not cut.leaves:
                    continue
                if any(l not in state_costs for l in cut.leaves):
                    continue
                arity = len(cut.leaves)
                for config in self.view.matches(cut.table, arity):
                    for cell in self.view.family_cells(config)[: self.cells_per_family]:
                        matches_evaluated += 1
                        match = self._evaluate(
                            node, cut, config, cell, activities, fanouts,
                            state_costs, arrivals, vdd,
                        )
                        if chosen is None or self.policy.better(match.costs, chosen.costs) or (
                            not self.policy.better(chosen.costs, match.costs)
                            and self.policy.key(match.costs) < self.policy.key(chosen.costs)
                        ):
                            chosen = match
            if chosen is None:
                raise RuntimeError(
                    f"node {node}: no match found (cut functions not in library)"
                )
            best[node] = chosen
            state_costs[node] = chosen.costs
            arrivals[node] = chosen.arrival

        if obs.current_tracer() is not None:
            obs.count("map.matches_evaluated", matches_evaluated)
            obs.count("map.nodes_mapped", len(best))
        return self._extract(aig, best)

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        node: int,
        cut: Cut,
        config: MatchConfig,
        cell: LibertyCell,
        activities: list[float],
        fanouts: list[int],
        state_costs: dict[int, dict[str, float]],
        arrivals: dict[int, float],
        vdd: float,
    ) -> _Match:
        view = self.view
        n_inv_in = config.num_input_inverters
        n_inv_out = 1 if config.output_neg else 0
        act_root = activities[node]
        half_cv2 = 0.5 * vdd * vdd  # signoff charges 0.5 * alpha * C * V^2
        leak_scale = self.leakage_ref_period  # leakage -> energy/cycle

        area = cell.area + (n_inv_in + n_inv_out) * self._inv_area
        cell_delay = view.cell_delay(cell)
        arrival = 0.0
        # Per-cycle energy this match adds: cell internal energy plus
        # the wire charge of the output net it creates, leakage scaled
        # to a reference period, and the pin/wire load it places on its
        # leaf nets — the exact decomposition the power analyzer uses.
        power = act_root * (view.cell_energy(cell) + self.wire_cap * half_cv2)
        power += view.cell_leakage(cell) * leak_scale
        for pin_index in range(len(cut.leaves)):
            leaf = cut.leaves[config.leaf_of_pin[pin_index]]
            inverted = bool((config.pin_neg_mask >> pin_index) & 1)
            leaf_arrival = arrivals[leaf] + (self._inv_delay if inverted else 0.0)
            arrival = max(arrival, leaf_arrival)
            act_leaf = activities[leaf] if leaf < len(activities) else 0.5
            pin_cap = view.cell_input_cap(cell, pin_index)
            power += act_leaf * pin_cap * half_cv2
            if inverted:
                power += act_leaf * (
                    self._inv_cap * half_cv2
                    + self._inv_energy
                    + self.wire_cap * half_cv2
                )
                power += self._inv_leak * leak_scale
        arrival += cell_delay + (self._inv_delay if n_inv_out else 0.0)
        if n_inv_out:
            power += act_root * (
                self._inv_cap * half_cv2 + self._inv_energy + self.wire_cap * half_cv2
            )
            power += self._inv_leak * leak_scale

        costs = {"power": power, "area": area, "delay": arrival}
        for leaf in cut.leaves:
            share = max(1.0, float(fanouts[leaf]))
            leaf_costs = state_costs[leaf]
            costs["power"] += leaf_costs["power"] / share
            costs["area"] += leaf_costs["area"] / share
        return _Match(cut=cut, config=config, cell=cell, costs=costs, arrival=arrival)

    # ------------------------------------------------------------------
    def _extract(self, aig: AIG, best: dict[int, _Match]) -> MappedNetlist:
        netlist = MappedNetlist(aig.name)
        netlist.pi_nets = list(aig.pi_names)
        pi_net_of = {node: name for node, name in zip(aig.pis, aig.pi_names)}
        net_of: dict[int, str] = dict(pi_net_of)
        inverted_net: dict[str, str] = {}
        emitted: set[int] = set(aig.pis)
        counter = [0]

        def fresh(prefix: str) -> str:
            counter[0] += 1
            return f"{prefix}{counter[0]}"

        def invert(net: str) -> str:
            cached = inverted_net.get(net)
            if cached is not None:
                return cached
            out = fresh("ninv")
            netlist.gates.append(
                GateInstance(
                    name=fresh("g_inv"),
                    cell=self.view.inverter.name,
                    pins={self.view.inverter.input_pins[0]: net},
                    output_net=out,
                )
            )
            inverted_net[net] = out
            return out

        def emit(node: int) -> str:
            if node == 0:
                return const_net(False)
            if node in emitted:
                return net_of[node]
            match = best[node]
            leaf_nets = [emit(leaf) for leaf in match.cut.leaves]
            pins: dict[str, str] = {}
            for pin_index, pin in enumerate(match.cell.input_pins):
                source = leaf_nets[match.config.leaf_of_pin[pin_index]]
                if (match.config.pin_neg_mask >> pin_index) & 1:
                    source = invert(source)
                pins[pin] = source
            out_net = fresh(f"n{node}_")
            netlist.gates.append(
                GateInstance(
                    name=fresh("g"),
                    cell=match.cell.name,
                    pins=pins,
                    output_net=out_net,
                    output_pin=match.cell.output_pins[0],
                )
            )
            if match.config.output_neg:
                out_net = invert(out_net)
            net_of[node] = out_net
            emitted.add(node)
            return out_net

        const_cache: dict[bool, str] = {}

        def const_net(value: bool) -> str:
            if value in const_cache:
                return const_cache[value]
            if not netlist.pi_nets:
                raise ValueError("cannot synthesize constants without PIs")
            base = netlist.pi_nets[0]
            zero = fresh("nconst0_")
            # AND2B(A, A) = !A & A = 0 gives a constant-0 net.
            and2b = self._find_cell("AND2B")
            netlist.gates.append(
                GateInstance(
                    name=fresh("g_tie"),
                    cell=and2b.name,
                    pins={and2b.input_pins[0]: base, and2b.input_pins[1]: base},
                    output_net=zero,
                )
            )
            const_cache[False] = zero
            if value:
                one = invert(zero)
                const_cache[True] = one
                return one
            return zero

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 2 * aig.num_nodes + 100))
        try:
            for po, name in zip(aig.pos, aig.po_names):
                node = lit_var(po)
                if node == 0:
                    net = const_net(bool(po & 1))
                else:
                    net = emit(node)
                    if po & 1:
                        net = invert(net)
                netlist.po_nets.append(net)
        finally:
            sys.setrecursionlimit(old_limit)
        return netlist

    def _find_cell(self, prefix: str) -> LibertyCell:
        for cell in self.view.library.cells.values():
            if cell.name.startswith(prefix):
                return cell
        raise KeyError(f"no cell with prefix {prefix!r} in library")


def map_to_gates(
    aig: AIG,
    library: Library,
    policy: CostPolicy | None = None,
    **kwargs,
) -> MappedNetlist:
    """Convenience wrapper: build the view and map in one call."""
    view = TechLibraryView(library)
    mapper = TechnologyMapper(view, policy, **kwargs)
    return mapper.map(aig)
