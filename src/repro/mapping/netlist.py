"""Gate-level mapped netlist.

The output of technology mapping and the input to signoff (STA and
power).  Gates reference standard cells from a characterized
:class:`repro.charlib.Library`; nets are plain strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..charlib.nldm import Library
from ..synth.aig import AIG


@dataclass(frozen=True)
class GateInstance:
    """One placed standard cell."""

    name: str
    cell: str
    #: pin name -> driving net.
    pins: dict[str, str]
    output_net: str
    output_pin: str = "Y"


@dataclass
class MappedNetlist:
    """A combinational gate-level netlist.

    Gates are stored in topological order (every gate's input nets are
    driven by earlier gates or primary inputs).
    """

    name: str
    pi_nets: list[str] = field(default_factory=list)
    po_nets: list[str] = field(default_factory=list)
    gates: list[GateInstance] = field(default_factory=list)

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def drivers(self) -> dict[str, GateInstance]:
        """net -> driving gate (PIs have no driver)."""
        return {gate.output_net: gate for gate in self.gates}

    def loads(self) -> dict[str, list[tuple[GateInstance, str]]]:
        """net -> [(gate, pin)] sinks."""
        result: dict[str, list[tuple[GateInstance, str]]] = {}
        for gate in self.gates:
            for pin, net in gate.pins.items():
                result.setdefault(net, []).append((gate, pin))
        return result

    def cell_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.cell] = counts.get(gate.cell, 0) + 1
        return counts

    def total_area(self, library: Library) -> float:
        """Sum of cell areas [um^2]."""
        return sum(library[gate.cell].area for gate in self.gates)

    # ------------------------------------------------------------------
    # Simulation / logic extraction
    # ------------------------------------------------------------------
    def simulate_nets(
        self, library: Library, pi_words: list[int], width: int
    ) -> dict[str, int]:
        """Bit-parallel simulation of every net."""
        if len(pi_words) != len(self.pi_nets):
            raise ValueError(f"expected {len(self.pi_nets)} PI words")
        mask = (1 << width) - 1
        values: dict[str, int] = {}
        for net, word in zip(self.pi_nets, pi_words):
            values[net] = word & mask
        for gate in self.gates:
            cell = library[gate.cell]
            table = cell.truth_tables[gate.output_pin]
            pins = cell.input_pins
            word = 0
            pin_words = [values[gate.pins[pin]] for pin in pins]
            for minterm in range(1 << len(pins)):
                if not (table >> minterm) & 1:
                    continue
                term = mask
                for j, pin_word in enumerate(pin_words):
                    term &= pin_word if (minterm >> j) & 1 else ~pin_word & mask
                    if not term:
                        break
                word |= term
            values[gate.output_net] = word
        return values

    def evaluate(self, library: Library, inputs: list[bool]) -> list[bool]:
        """Single-vector evaluation of the PO nets."""
        words = [1 if b else 0 for b in inputs]
        values = self.simulate_nets(library, words, width=1)
        return [bool(values[net] & 1) for net in self.po_nets]

    def to_aig(self, library: Library) -> AIG:
        """Extract the netlist logic into an AIG (for CEC)."""
        from ..synth.isop import build_function

        aig = AIG(self.name)
        net_lit: dict[str, int] = {}
        for net in self.pi_nets:
            net_lit[net] = aig.add_pi(net)
        for gate in self.gates:
            cell = library[gate.cell]
            table = cell.truth_tables[gate.output_pin]
            leaf_lits = [net_lit[gate.pins[pin]] for pin in cell.input_pins]
            net_lit[gate.output_net] = build_function(aig, table, leaf_lits)
        for net in self.po_nets:
            aig.add_po(net_lit[net], net)
        return aig.cleanup()
