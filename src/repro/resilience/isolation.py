"""Subprocess worker isolation with heartbeats, watchdog, and restart.

Thread-based fan-out (:func:`repro.obs.parallel.parallel_map`) shares
one interpreter: a worker that segfaults, leaks unbounded memory, or
spins forever takes the whole sweep with it, and a timed-out thread
can only be abandoned, never reclaimed.  This module provides the
stronger isolation tier behind the same interface —
``parallel_map(..., isolate="process")`` delegates here — where each
worker is a subprocess that can be *killed* and *restarted*:

* **supervisor** (the parent): dispatches tasks over per-worker
  queues, collects results, and doubles as the watchdog;
* **heartbeats**: workers report liveness at dispatch and whenever
  long-running library code calls :func:`task_heartbeat` (the SPICE
  transient loop and the characterization engine do); the supervisor
  tracks the last beat per worker;
* **per-worker upstream pipes**: each worker sends results and beats
  over its *own* one-way pipe, read by a dedicated supervisor thread.
  A shared :class:`multiprocessing.Queue` would hand every worker the
  same write lock — and a worker SIGKILLed mid-``put`` takes the lock
  to its grave, silently wedging every sibling (the reason
  :class:`concurrent.futures.ProcessPoolExecutor` declares the whole
  pool broken on any worker death).  With private pipes a dying
  worker can only corrupt its own stream, which the supervisor
  already treats as a crash;
* **watchdog**: a worker that stops beating past the task's stall
  budget (``task_timeout_s`` / ``REPRO_WORKER_TIMEOUT_S``) or whose
  resident set exceeds ``max_rss_mb`` (``REPRO_WORKER_MAX_RSS_MB``)
  is SIGKILLed; the task fails with :class:`WorkerHungError` /
  :class:`WorkerMemoryError` — both :class:`TransientError`\\ s;
* **restart + retry**: a crashed or killed worker is respawned, and
  its task is re-dispatched up to ``retries`` times (task-raised
  exceptions are *not* auto-retried here — they propagate with their
  own classification for the caller's retry ladder to judge).

Rigged failures for tests: the ``parallel.hang`` fault site is
consulted by the *supervisor* at dispatch time (keeping the decision
deterministic and the counters centralized) and ships a flag that
makes the worker stop making progress, exercising the watchdog
end-to-end.

Caveats: tasks and their arguments/results cross a process boundary,
so ``fn`` must be a module-level callable and values must pickle
(workers pre-pickle results and report unpicklable ones as failures
instead of crashing).

Telemetry (:mod:`repro.obs.telemetry`): when the supervisor has an
active tracer, each dispatched task tells the worker to install a
child tracer around the task body; the worker's completed spans and
raw metrics ride back over the result pipe and are re-parented under
a supervisor-side ``isolation.task`` span carrying the task's label —
so ``--profile`` under ``--isolate process`` shows the same synthesis
tree an in-process run would.  The watchdog's existing RSS polling
additionally records the peak worker resident set as the
``isolation.worker.peak_rss_mb`` gauge.  Spans of a worker that is
killed (hang/RSS watchdog) or crashes are lost with the worker; its
``isolation.task`` span is still recorded with ``status="error"``.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import pickle
import queue as _queue
import signal
import threading
import time
from typing import Any, Callable, Sequence

from .. import obs
from ..obs import telemetry
from . import faults
from .errors import (
    ParallelExecutionError,
    ReproError,
    WorkerCrashError,
    WorkerHungError,
    WorkerMemoryError,
)

#: Supervisor poll interval [s]: bounds watchdog reaction latency.
TICK_S = 0.05

#: Minimum interval between heartbeat messages from one worker [s].
HEARTBEAT_THROTTLE_S = 0.1

#: Default per-task stall budget when none is configured [s].
DEFAULT_TASK_TIMEOUT_S = 300.0

#: Extra stall allowance for a worker that has not sent its ready
#: beat yet: a spawned interpreter pays import costs before it can
#: report anything, and that must not count against a tight task
#: budget.
SPAWN_GRACE_S = 20.0


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def _start_method() -> str:
    """Worker start method (``REPRO_MP_START`` override, default spawn).

    ``spawn`` gives every worker a pristine interpreter — no inherited
    locks mid-acquire, no shared caches — which is the point of the
    isolation tier; ``fork`` is available for speed on POSIX.
    """
    return os.environ.get("REPRO_MP_START", "").strip() or "spawn"


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Set inside a worker process: this worker's upstream connection.
_worker_heartbeat: Any | None = None
_last_beat_sent = 0.0


def task_heartbeat() -> None:
    """Report liveness from long-running worker code; no-op elsewhere.

    Library code (the SPICE transient loop, per-cell characterization)
    calls this unconditionally: outside an isolated worker it costs
    one ``None`` check.  Inside a worker it posts a throttled beat the
    supervisor's watchdog uses to distinguish *slow* from *stuck*.
    """
    global _last_beat_sent
    if _worker_heartbeat is None:
        return
    now = time.monotonic()
    if now - _last_beat_sent < HEARTBEAT_THROTTLE_S:
        return
    _last_beat_sent = now
    with contextlib.suppress(Exception):
        _worker_heartbeat.send(("beat",))


def _encode_result(value: Any) -> bytes:
    """Pre-pickle a success payload, degrading unpicklable values."""
    try:
        return pickle.dumps(("ok", value), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        failure = ReproError(
            f"task result of type {type(value).__name__} does not pickle "
            f"across the process boundary: {exc}"
        )
        return pickle.dumps(("error", failure), protocol=pickle.HIGHEST_PROTOCOL)


def _encode_error(exc: BaseException) -> bytes:
    try:
        return pickle.dumps(("error", exc), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        fallback = ReproError(f"{type(exc).__name__}: {exc}")
        fallback.classification = getattr(exc, "classification", "permanent")
        return pickle.dumps(("error", fallback), protocol=pickle.HIGHEST_PROTOCOL)


def _worker_main(worker_id: int, fn: Callable, task_q, conn) -> None:
    """Worker loop: take ``(task_id, item, hang)`` tasks until ``None``.

    SIGINT is ignored — interrupt handling (journal flush, resume
    hint) belongs to the parent, which tears workers down explicitly.
    """
    global _worker_heartbeat
    with contextlib.suppress(Exception):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Under a fork start method the worker inherits the supervisor's
    # contextvars — including the open ``isolation.process_map`` span.
    # Detach them so the per-task child tracer starts a fresh tree
    # (otherwise its root span parents under a stale cross-process id).
    obs.tracer.reset_context()
    _worker_heartbeat = conn
    with contextlib.suppress(Exception):
        conn.send(("beat",))  # ready beat: ends the supervisor's spawn grace
    while True:
        task = task_q.get()
        if task is None:
            conn.close()
            return
        task_id, item, hang, trace = task
        if hang:
            # Rigged ``parallel.hang``: stop making progress (no
            # heartbeats, no result) until the watchdog kills us.
            while True:
                time.sleep(TICK_S)
        with contextlib.suppress(Exception):
            conn.send(("beat",))  # task received; the stall clock restarts
        # ``trace`` mirrors "the supervisor has an active tracer": only
        # then is a child tracer worth its bookkeeping — its spans and
        # raw metrics ride home with the result and are re-parented
        # under the dispatching task span (repro.obs.telemetry).
        child = obs.Tracer() if trace else None
        if child is not None:
            child.install()
        try:
            payload = _encode_result(fn(item))
        except BaseException as exc:  # noqa: BLE001 — crossing process boundary
            payload = _encode_error(exc)
        finally:
            if child is not None:
                child.uninstall()
        task_telemetry = telemetry.snapshot(child) if child is not None else None
        conn.send(("result", task_id, payload, task_telemetry))


def _rss_mb(pid: int) -> float | None:
    """Resident set size of a process in MiB (Linux /proc; else None)."""
    try:
        with open(f"/proc/{pid}/statm", "rb") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / (1024 * 1024)
    except (OSError, ValueError, IndexError):
        return None


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
class _Task:
    __slots__ = ("index", "item", "label", "attempts", "dispatched_at")

    def __init__(self, index: int, item: Any, label: str):
        self.index = index
        self.item = item
        self.label = label
        self.attempts = 0
        #: Dispatch offset in the supervisor tracer's epoch [s]; used as
        #: the start of this task's ``isolation.task`` span.
        self.dispatched_at = 0.0


class _Worker:
    """Supervisor-side handle: process + dispatch queue + liveness.

    The worker's upstream pipe is drained by a dedicated daemon
    thread that forwards results into the supervisor's (in-process,
    uncorruptible) event queue and stamps beats directly onto this
    handle.  The thread exits on EOF — which is also what a SIGKILLed
    worker's half-written message decays to.
    """

    def __init__(self, ctx, worker_id: int, fn, events_q: _queue.Queue):
        self.id = worker_id
        self.task_q = ctx.SimpleQueue()
        self.conn, send_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, fn, self.task_q, send_conn),
            daemon=True,
        )
        self.process.start()
        send_conn.close()  # child holds the only write end now
        self.task: _Task | None = None
        self.last_beat = time.monotonic()
        self.ready = False  # flipped by the worker's first heartbeat
        self.reader = threading.Thread(
            target=self._read_loop, args=(events_q,), daemon=True
        )
        self.reader.start()

    def _read_loop(self, events_q: _queue.Queue) -> None:
        try:
            while True:
                message = self.conn.recv()
                self.last_beat = time.monotonic()
                self.ready = True
                if message[0] == "result":
                    telemetry_snap = message[3] if len(message) > 3 else None
                    events_q.put((self.id, message[1], message[2], telemetry_snap))
        except Exception:  # noqa: BLE001 — EOF/truncated frame = worker gone
            pass

    def dispatch(self, task: _Task, hang: bool, trace: bool) -> None:
        self.task = task
        self.last_beat = time.monotonic()
        task.attempts += 1
        self.task_q.put((task.index, task.item, hang, trace))

    def kill(self) -> None:
        with contextlib.suppress(Exception):
            self.process.kill()
        with contextlib.suppress(Exception):
            self.process.join(timeout=5.0)
        with contextlib.suppress(Exception):
            self.conn.close()
        with contextlib.suppress(Exception):
            self.task_q.close()


def _annotate(exc: BaseException, index: int, label: str) -> BaseException:
    exc.task_index = index
    exc.task_label = label
    if hasattr(exc, "add_note"):  # Python >= 3.11
        exc.add_note(f"while running isolated task {label!r} (index {index})")
    return exc


def process_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int,
    *,
    labels: Sequence[str] | None = None,
    on_error: str = "fail_fast",
    task_timeout_s: float | None = None,
    max_rss_mb: float | None = None,
    retries: int = 1,
) -> list[Any]:
    """Map ``fn`` over ``items`` in supervised worker subprocesses.

    Same contract as :func:`repro.obs.parallel.parallel_map` (ordered
    results; ``fail_fast`` raises the first failure, ``collect`` runs
    everything and aggregates into :class:`ParallelExecutionError`),
    plus the isolation semantics described in the module docstring.

    ``retries`` applies only to *worker* failures (crash, watchdog
    kill): the task is re-dispatched to a fresh worker that many extra
    times before its :class:`WorkerCrashError` becomes the task's
    result.  Exceptions raised *by* ``fn`` are never auto-retried.
    """
    if on_error not in ("fail_fast", "collect"):
        raise ValueError(f"on_error must be fail_fast|collect, not {on_error!r}")
    items = list(items)
    if not items:
        return []
    if labels is not None and len(labels) != len(items):
        raise ValueError(f"{len(labels)} labels for {len(items)} items")
    if task_timeout_s is None:
        task_timeout_s = _env_float("REPRO_WORKER_TIMEOUT_S")
        if task_timeout_s is None:
            task_timeout_s = DEFAULT_TASK_TIMEOUT_S
    if max_rss_mb is None:
        max_rss_mb = _env_float("REPRO_WORKER_MAX_RSS_MB")

    from ..obs.parallel import effective_jobs

    n_workers = max(1, min(effective_jobs(jobs), len(items)))
    ctx = mp.get_context(_start_method())
    events_q: _queue.Queue = _queue.Queue()  # fed by per-worker readers
    tracer = obs.current_tracer()  # telemetry forwarding on iff present
    peak_rss_mb = 0.0

    tasks = [
        _Task(i, item, labels[i] if labels is not None else f"task[{i}]")
        for i, item in enumerate(items)
    ]
    queue: list[_Task] = list(tasks)
    results: dict[int, Any] = {}
    failures: dict[int, BaseException] = {}
    next_worker_id = 0
    workers: dict[int, _Worker] = {}

    def spawn() -> _Worker:
        nonlocal next_worker_id
        worker = _Worker(ctx, next_worker_id, fn, events_q)
        workers[worker.id] = worker
        next_worker_id += 1
        return worker

    def dispatch_to(worker: _Worker) -> None:
        task = queue.pop(0)
        hang = faults.should_fire("parallel.hang")
        if tracer is not None:
            task.dispatched_at = tracer.elapsed()
        worker.dispatch(task, hang, tracer is not None)

    def fail_task(worker: _Worker, exc: ReproError) -> None:
        """Handle a worker-level failure: maybe retry, maybe record."""
        task = worker.task
        worker.task = None
        if task is None:
            return
        if tracer is not None:
            # The killed worker's spans died with it; the attempt is
            # still visible as an error-status task span.
            telemetry.record_task(
                tracer,
                parent_record,
                task.label,
                task.dispatched_at,
                tracer.elapsed(),
                status="error",
                worker=worker.id,
                attempt=task.attempts,
                error=type(exc).__name__,
            )
        if task.attempts <= retries:
            obs.count("isolation.task_retry")
            queue.insert(0, task)
        else:
            failures[task.index] = _annotate(exc, task.index, task.label)

    def restart(worker: _Worker) -> None:
        """Replace a dead worker with a fresh subprocess."""
        workers.pop(worker.id, None)
        worker.kill()
        outstanding = len(items) - len(results) - len(failures)
        if outstanding > len(workers):
            obs.count("isolation.worker_restart")
            spawn()

    debug = bool(os.environ.get("REPRO_ISOLATION_DEBUG"))
    last_debug = 0.0

    def report_state() -> None:
        """Supervisor state line for REPRO_ISOLATION_DEBUG=1 runs."""
        busy = {
            w.id: (w.task.index if w.task else None, w.process.is_alive())
            for w in workers.values()
        }
        print(
            f"[isolation] queue={[t.index for t in queue]} "
            f"results={sorted(results)} failures={sorted(failures)} "
            f"workers={busy}",
            flush=True,
        )

    with obs.span("isolation.process_map", jobs=n_workers, tasks=len(items)) as sp:
        # The dispatching span every forwarded worker tree parents under
        # (None when tracing is disabled — sp is then the shared no-op).
        parent_record = getattr(sp, "record", None)
        for _ in range(n_workers):
            spawn()
        try:
            for worker in list(workers.values()):
                if queue:
                    dispatch_to(worker)
            while len(results) + len(failures) < len(items):
                if on_error == "fail_fast" and failures:
                    break
                if debug and time.monotonic() - last_debug > 1.0:
                    last_debug = time.monotonic()
                    report_state()
                # 0. Keep idle workers fed — requeued retries and
                # freshly restarted workers both pick up work here.
                for worker in list(workers.values()):
                    if not queue:
                        break
                    if worker.task is None and worker.process.is_alive():
                        dispatch_to(worker)
                # 1. Collect finished results (bounded wait = the
                # tick; beats never enter this queue — reader threads
                # stamp them straight onto the worker handle).  A
                # result from a worker already torn down, or for a
                # task already requeued elsewhere, is dropped:
                # accepting it could double-account the task.
                try:
                    worker_id, task_id, payload, tele = events_q.get(timeout=TICK_S)
                except _queue.Empty:
                    pass
                else:
                    worker = workers.get(worker_id)
                    if (
                        worker is not None
                        and worker.task is not None
                        and worker.task.index == task_id
                    ):
                        task = worker.task
                        worker.task = None
                        kind, value = pickle.loads(payload)
                        if kind == "ok":
                            results[task_id] = value
                        else:
                            failures[task_id] = _annotate(
                                value, task.index, task.label
                            )
                        if tracer is not None:
                            telemetry.record_task(
                                tracer,
                                parent_record,
                                task.label,
                                task.dispatched_at,
                                tracer.elapsed(),
                                status="ok" if kind == "ok" else "error",
                                telemetry=tele,
                                worker=worker_id,
                                attempt=task.attempts,
                            )
                        if queue:
                            dispatch_to(worker)
                # 2. Watchdog: dead, stalled, or oversized workers.
                now = time.monotonic()
                for worker in list(workers.values()):
                    busy = worker.task is not None
                    if not worker.process.is_alive():
                        obs.count("isolation.worker_crash")
                        if busy:
                            fail_task(
                                worker,
                                WorkerCrashError(
                                    f"worker {worker.id} died "
                                    f"(exit {worker.process.exitcode}) while "
                                    f"running {worker.task.label!r}",
                                    site="parallel.worker",
                                ),
                            )
                        restart(worker)
                        continue
                    grace = 0.0 if worker.ready else SPAWN_GRACE_S
                    if busy and now - worker.last_beat > task_timeout_s + grace:
                        obs.count("isolation.watchdog_kill")
                        obs.count("isolation.watchdog_kill.hang")
                        label = worker.task.label
                        fail_task(
                            worker,
                            WorkerHungError(
                                f"worker {worker.id} made no progress for "
                                f"{task_timeout_s:g}s on {label!r}; killed",
                                site="parallel.hang",
                            ),
                        )
                        worker.kill()
                        restart(worker)
                        continue
                    if busy and (max_rss_mb is not None or tracer is not None):
                        # One /proc read per tick serves both the RSS
                        # cap and the peak-RSS telemetry gauge.
                        rss = _rss_mb(worker.process.pid)
                        if rss is not None:
                            peak_rss_mb = max(peak_rss_mb, rss)
                        if max_rss_mb is not None and rss is not None and rss > max_rss_mb:
                            obs.count("isolation.watchdog_kill")
                            obs.count("isolation.watchdog_kill.memory")
                            label = worker.task.label
                            fail_task(
                                worker,
                                WorkerMemoryError(
                                    f"worker {worker.id} resident set "
                                    f"{rss:.0f} MiB exceeds the "
                                    f"{max_rss_mb:g} MiB cap on {label!r}; "
                                    f"killed",
                                    site="parallel.worker",
                                ),
                            )
                            worker.kill()
                            restart(worker)
        finally:
            if peak_rss_mb > 0.0:
                obs.gauge("isolation.worker.peak_rss_mb", peak_rss_mb)
            for worker in workers.values():
                with contextlib.suppress(Exception):
                    worker.task_q.put(None)
            deadline = time.monotonic() + 2.0
            for worker in workers.values():
                with contextlib.suppress(Exception):
                    worker.process.join(
                        timeout=max(0.0, deadline - time.monotonic())
                    )
            for worker in workers.values():
                if worker.process.is_alive():
                    worker.kill()
                with contextlib.suppress(Exception):
                    worker.conn.close()  # unblocks the reader thread

    if failures:
        if on_error == "fail_fast":
            raise failures[min(failures)]
        pairs = sorted(failures.items())
        raise ParallelExecutionError(
            f"{len(pairs)}/{len(items)} isolated tasks failed "
            f"(first: {pairs[0][1]})",
            errors=[(i, tasks[i].label, exc) for i, exc in pairs],
        )
    return [results[i] for i in range(len(items))]


def run_isolated(
    fn: Callable[[Any], Any],
    payload: Any,
    *,
    label: str = "task",
    task_timeout_s: float | None = None,
    max_rss_mb: float | None = None,
) -> Any:
    """Run one task in a supervised worker subprocess.

    The single-job entry point the characterization service's
    ``isolate="process"`` tier uses: same watchdog and crash semantics
    as :func:`process_map`, but with ``retries=0`` — a worker death
    surfaces immediately as :class:`WorkerCrashError` so the caller's
    own retry/circuit-breaker policy (not this layer) decides what
    happens next.
    """
    return process_map(
        fn,
        [payload],
        1,
        labels=[label],
        task_timeout_s=task_timeout_s,
        max_rss_mb=max_rss_mb,
        retries=0,
    )[0]
