"""Write-ahead run journal: crash-safe progress records for flows.

An hours-long sweep must survive ``kill -9``, an OOM kill, or a power
cut without losing completed work.  The artifact cache already
persists every expensive stage output; what is missing after a crash
is the *ledger* — which units of work had completed, under which cache
keys, with which result digests.  :class:`RunJournal` is that ledger:
an append-only JSONL file where every record is committed with
``write + flush + fsync`` before the flow proceeds, so the journal on
disk is always a prefix of the truth (the classic write-ahead rule).

Record kinds written by the pipeline:

* ``run_start`` — header: journal format version plus a digest of the
  run configuration, so ``--resume`` refuses a journal recorded by a
  different command line;
* ``stage`` — a :class:`repro.core.stages.FlowRunner` stage completed
  (cache key, result digest, hit/miss);
* ``scenario`` — one fully signed-off scenario result was committed
  to the artifact cache (cache key + result digest);
* ``guard_violation`` — a stage-boundary guard quarantined an
  artifact (see :mod:`repro.resilience.guards`).

Resume contract: :meth:`RunJournal.resume` loads every committed
record (tolerating — and truncating — a torn tail from a crash
mid-write), and :func:`repro.core.flow.run_scenarios` replays any
scenario whose journaled digest still matches the cached artifact,
re-executing only the missing work.  Because the flow itself is
deterministic, a killed-and-resumed sweep produces ``--json`` output
byte-identical to an uninterrupted run.

The ``journal.crash`` fault site (:mod:`repro.resilience.faults`)
raises :class:`InjectedCrashError` immediately *after* a commit,
simulating process death landing between two records.

Single-writer rule: a journal path is owned by exactly one live
writer.  ``create``/``resume`` take an exclusive ``<path>.lock`` file
(pid inside); a second concurrent writer gets a clear
:class:`JournalLockedError` instead of silently interleaving frames,
and a stale lock left by ``kill -9`` (dead pid) is reclaimed.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import pickle
import threading
from pathlib import Path
from typing import Any, Iterator, Mapping

from .. import obs
from . import faults
from .errors import (
    InjectedCrashError,
    JournalError,
    JournalLockedError,
    JournalMismatchError,
)

#: Bump when the record layout changes incompatibly; resume refuses
#: journals written by a *newer* format.
JOURNAL_VERSION = 1


def artifact_digest(value: Any) -> str:
    """Content digest of an arbitrary (picklable) artifact.

    Used to pair a journal record with the cached artifact it
    describes: on resume the cached value is re-digested and must
    match, otherwise the work is conservatively re-executed.
    """
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(payload).hexdigest()[:32]


def config_fingerprint(config: Mapping[str, Any] | None) -> str | None:
    """Stable digest of a JSON-serializable run configuration."""
    if config is None:
        return None
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness check for a lock-holder pid."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def acquire_writer_lock(path: Path) -> Path:
    """Take the exclusive writer lock for a journal path.

    Creates ``<path>.lock`` atomically (``O_CREAT | O_EXCL``) with the
    writer's pid inside.  A second live writer — a concurrent run, or
    the same process opening the journal twice — raises
    :class:`JournalLockedError` instead of interleaving frames and
    poisoning every later ``--resume``.  A lock whose pid no longer
    runs (the ``kill -9`` the journal exists to survive) is stale and
    reclaimed.
    """
    lock = path.with_name(path.name + ".lock")
    for _ in range(2):  # one reclaim attempt for a stale lock
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            try:
                owner = int(Path(lock).read_text().strip() or "0")
            except (OSError, ValueError):
                owner = 0
            if owner and _pid_alive(owner):
                raise JournalLockedError(
                    f"journal {path} is already open for writing by "
                    f"process {owner} (lock file {lock}); two writers "
                    f"on one journal would interleave records and "
                    f"poison --resume"
                ) from None
            obs.count("journal.lock_reclaimed")
            with contextlib.suppress(OSError):
                os.unlink(lock)
            continue
        with os.fdopen(fd, "w") as fh:
            fh.write(f"{os.getpid()}\n")
        return lock
    raise JournalLockedError(f"could not acquire journal lock {lock}")


def load_records(path: str | os.PathLike) -> tuple[list[dict], int]:
    """Read committed records; returns ``(records, good_prefix_bytes)``.

    A crash can tear the final record (partial line, no newline) or —
    with a hostile disk — corrupt a middle line.  Parsing stops at the
    first incomplete or undecodable line: everything before it is the
    committed prefix, everything after it is lost (write-ahead
    semantics guarantee the lost suffix was never acted upon).
    """
    data = Path(path).read_bytes()
    records: list[dict] = []
    offset = 0
    for line in io.BytesIO(data):
        if not line.endswith(b"\n"):
            break  # torn tail from a crash mid-write
        try:
            record = json.loads(line)
        except ValueError:
            break
        if not isinstance(record, dict) or "kind" not in record:
            break
        records.append(record)
        offset += len(line)
    if offset != len(data):
        obs.count("journal.truncated")
    return records, offset


class RunJournal:
    """Append-only, fsync'd JSONL ledger of completed flow work.

    Use :meth:`create` for a fresh run and :meth:`resume` to reopen an
    interrupted one; both are context managers.  :meth:`record` is
    thread-safe (scenario fan-out journals from worker threads).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        records: list[dict],
        stream,
        lock_path: Path | None = None,
    ):
        self.path = Path(path)
        self.records = records
        self._stream = stream
        self._lock = threading.Lock()
        #: Writer-lock file owned by this instance (``None`` when the
        #: journal was constructed directly, e.g. by tests).
        self._lock_path = lock_path

    # -- constructors ---------------------------------------------------
    @classmethod
    def create(
        cls, path: str | os.PathLike, config: Mapping[str, Any] | None = None
    ) -> "RunJournal":
        """Start a fresh journal (truncating any previous file)."""
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        # Lock before truncating: losing the race must not destroy the
        # live writer's file.
        lock_path = acquire_writer_lock(path)
        journal = cls(path, [], open(path, "w", encoding="utf-8"), lock_path)
        journal.record(
            "run_start",
            version=JOURNAL_VERSION,
            config=config_fingerprint(config),
        )
        return journal

    @classmethod
    def resume(
        cls, path: str | os.PathLike, config: Mapping[str, Any] | None = None
    ) -> "RunJournal":
        """Reopen an interrupted run's journal for appending.

        Verifies the header: the journal must carry a compatible
        format version and, when ``config`` is given, the same
        configuration digest the original run recorded — resuming with
        different circuits, scenarios, or knobs would silently splice
        incompatible results.  A torn tail (crash mid-write) is
        truncated away so subsequent appends stay parseable.
        """
        path = Path(path)
        if not path.exists():
            raise JournalError(f"no such journal: {path}")
        lock_path = acquire_writer_lock(path)
        try:
            records, good_bytes = load_records(path)
            if not records or records[0].get("kind") != "run_start":
                raise JournalError(f"{path} is not a run journal (missing header)")
            header = records[0]
            version = header.get("version")
            if not isinstance(version, int) or version > JOURNAL_VERSION:
                raise JournalMismatchError(
                    f"{path} uses journal format {version!r}; this build "
                    f"supports up to {JOURNAL_VERSION}"
                )
            fingerprint = config_fingerprint(config)
            recorded = header.get("config")
            if (
                fingerprint is not None
                and recorded is not None
                and recorded != fingerprint
            ):
                raise JournalMismatchError(
                    f"{path} was recorded by a different run configuration "
                    f"({recorded} != {fingerprint}); re-run with the same "
                    f"arguments or start a fresh --journal"
                )
            # Drop the torn tail before appending new records after it.
            if good_bytes != path.stat().st_size:
                with open(path, "r+b") as fh:
                    fh.truncate(good_bytes)
        except BaseException:
            # A refused resume must not leave the path locked against
            # the corrected retry.
            with contextlib.suppress(OSError):
                os.unlink(lock_path)
            raise
        obs.count("journal.resumed")
        return cls(path, records, open(path, "a", encoding="utf-8"), lock_path)

    # -- recording ------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> dict:
        """Commit one record: serialize, append, flush, fsync.

        Only after the fsync returns is the record considered
        committed — a crash at any earlier point leaves the journal's
        good prefix exactly describing the work that was durably
        finished.  The ``journal.crash`` fault site fires *after* the
        commit, modeling death between records.
        """
        record = {"kind": kind, **fields}
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._stream.closed:
                raise JournalError(f"journal {self.path} is closed")
            self._stream.write(line + "\n")
            self._stream.flush()
            os.fsync(self._stream.fileno())
            self.records.append(record)
        obs.count("journal.record")
        obs.count(f"journal.record.{kind}")
        if faults.should_fire("journal.crash"):
            raise InjectedCrashError(
                f"injected crash after journal record #{len(self.records)} "
                f"({kind})",
                site="journal.crash",
            )
        return record

    # -- replay ---------------------------------------------------------
    def completed_scenarios(self) -> dict[str, str]:
        """Cache key -> result digest of every journaled scenario."""
        return {
            r["key"]: r["digest"]
            for r in self.records
            if r.get("kind") == "scenario" and "key" in r and "digest" in r
        }

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if not self._stream.closed:
                with contextlib.suppress(OSError, ValueError):
                    self._stream.flush()
                    os.fsync(self._stream.fileno())
                self._stream.close()
            if self._lock_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(self._lock_path)
                self._lock_path = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __iter__(self) -> Iterator[dict]:
        return iter(list(self.records))

    def __repr__(self) -> str:
        return f"RunJournal({str(self.path)!r}, records={len(self.records)})"
