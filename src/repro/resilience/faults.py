"""Deterministic, seedable fault injection for the cryo-EDA pipeline.

Chaos-style testing for the flow: every recovery path in the codebase
(the Newton retry ladder, analytic fallback characterization, cache
quarantine, parallel-task error capture, calibration sanitization) has
an injection *site* where a :class:`FaultPlan` can force the failure
it recovers from.  Injection is fully deterministic: whether a check
fires depends only on the plan's seed, the site name, and how many
times that site has been checked — never on wall clock, PRNG state, or
thread interleaving of *other* sites.

Sites instrumented across the pipeline:

==========================  ==================================================
``spice.newton``            Newton solve raises ``ConvergenceError``
``charlib.measure``         a characterization measurement becomes NaN
``cache.disk``              a disk cache entry is truncated on write
``parallel.worker``         a ``parallel_map`` task raises ``InjectedFaultError``
``parallel.hang``           an isolated worker subprocess stops making progress
``calibration.residual``    a calibration residual becomes NaN
``journal.crash``           simulated process death after a journal commit
``synth.miscompile``        a synthesis script emits a functionally wrong AIG
``server.submit``           a service submission fails transiently at admission
``server.queue_full``       the service queue reports saturation (load shed)
``server.worker_crash``     a service worker dies mid-job (breaker/retry path)
``cache.remote.timeout``    a remote-cache request times out
``cache.remote.partition``  the remote cache server is unreachable
``cache.remote.corrupt``    a fetched remote blob fails sha256 verification
==========================  ==================================================

Activation, in priority order:

1. explicitly, via :func:`install` or the :func:`injecting` context
   manager (what tests use);
2. ambiently, via the ``REPRO_FAULTS`` environment variable (what the
   chaos CI job and ``repro --faults`` use).

Plan syntax (env var or ``--faults``)::

    REPRO_FAULTS="seed=2023;spice.newton:0.1;cache.disk:first=1"

Entries are ``;``- or ``,``-separated.  ``seed=N`` seeds the draws;
every other entry is ``site:spec[:spec...]`` where a bare float is a
per-check fire probability and ``first=N`` / ``depth=N`` / ``max=N`` /
``after=N`` set :class:`FaultSpec` fields.  See ``docs/ROBUSTNESS.md``
for the cookbook.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import os
import re
import threading
from dataclasses import dataclass
from typing import Iterator, Sequence

from .. import obs

#: Environment variable holding an ambient fault plan.
ENV_VAR = "REPRO_FAULTS"

#: Sites instrumented in this codebase (advisory — plans may name any
#: site; unknown sites simply never fire).
KNOWN_SITES = (
    "spice.newton",
    "charlib.measure",
    "cache.disk",
    "parallel.worker",
    "parallel.hang",
    "calibration.residual",
    "journal.crash",
    "synth.miscompile",
    "server.submit",
    "server.queue_full",
    "server.worker_crash",
    "cache.remote.timeout",
    "cache.remote.partition",
    "cache.remote.corrupt",
)


# ----------------------------------------------------------------------
# Instance scoping
# ----------------------------------------------------------------------
#: Ambient instance label for scoped check streams (see
#: :func:`instance_scope`).
_instance_var: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_fault_instance", default=None
)


@contextlib.contextmanager
def instance_scope(label: str) -> Iterator[str]:
    """Scope fault checks to a named *instance* of a site.

    Inside the scope, every check of a site consumes the check counter
    (and deterministic draw stream) keyed ``"site@label"`` instead of
    the site-global one.  Two executions that check a site under the
    same labels therefore see identical per-instance fault decisions
    *regardless of interleaving* — this is what makes a trajectory
    batch (all grid points of an arc advancing in lockstep) injection-
    equivalent to the serial loop over the same grid points.

    Fire accounting (``fires()``, ``max_fires``) stays aggregated by
    site, so a plan capping total fires may cap *different* instances
    under different interleavings; plans used for differential testing
    should not set ``max_fires`` on scoped sites.
    """
    token = _instance_var.set(label)
    try:
        yield label
    finally:
        _instance_var.reset(token)


def current_instance() -> str | None:
    """The ambient instance label, if any."""
    return _instance_var.get()


@dataclass(frozen=True)
class FaultSpec:
    """Injection behavior for one site.

    ``probability`` fires each first-attempt check independently;
    ``first_n`` additionally fires the first N eligible checks
    unconditionally (rigged, fully deterministic failures for tests).
    ``after`` delays eligibility: the first ``after`` checks of the
    site never fire, so a fault can be aimed at a precise point of a
    deterministic sequence (e.g. "die after the third journal
    record").  ``depth`` controls retry checks: once a solve's first
    attempt is afflicted, retry attempts keep failing while
    ``attempt < depth`` — a ladder with R rungs recovers iff
    ``depth <= R - 1``.  ``max_fires`` caps the total number of
    first-attempt fires.
    """

    site: str
    probability: float = 0.0
    first_n: int = 0
    depth: int = 1
    max_fires: int | None = None
    after: int = 0


class FaultPlan:
    """A seeded set of :class:`FaultSpec` entries with check counters.

    Thread-safe; one plan instance tracks per-site check and fire
    counts for its whole lifetime (:meth:`fires` reports them).
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.seed = seed
        self.specs = {spec.site: spec for spec in specs}
        self._checks: dict[str, int] = {}
        self._fires: dict[str, int] = {}
        self._lock = threading.Lock()

    def should_fire(self, site: str, attempt: int = 0, instance: str | None = None) -> bool:
        """Decide (deterministically) whether ``site`` fails this check.

        ``attempt`` is the retry-rung index of the caller: attempt 0
        consumes one check of the site's sequence; attempts > 0 fire
        iff ``attempt < depth`` (sustained failure through the first
        ``depth`` rungs of a retry sequence).

        ``instance`` (defaulting to the ambient :func:`instance_scope`
        label) selects a *scoped* check stream: the check counter and
        draw key become ``"site@instance"`` so per-instance decision
        sequences are independent of how instances interleave.  Fire
        totals stay aggregated per site.
        """
        spec = self.specs.get(site)
        if spec is None:
            return False
        if instance is None:
            instance = _instance_var.get()
        key = site if instance is None else f"{site}@{instance}"
        if attempt > 0:
            fire = attempt < spec.depth
        else:
            with self._lock:
                n = self._checks.get(key, 0)
                self._checks[key] = n + 1
                fired = self._fires.get(site, 0)
                if spec.max_fires is not None and fired >= spec.max_fires:
                    return False
                eligible = n >= spec.after
                fire = eligible and (
                    (n - spec.after) < spec.first_n
                    or (
                        spec.probability > 0.0
                        and _draw(self.seed, key, n) < spec.probability
                    )
                )
                if fire:
                    self._fires[site] = fired + 1
        if fire:
            obs.count("faults.injected")
            obs.count(f"faults.injected.{site}")
        return fire

    def fires(self) -> dict[str, int]:
        """First-attempt fires per site so far."""
        with self._lock:
            return dict(self._fires)

    def __repr__(self) -> str:
        sites = ", ".join(sorted(self.specs)) or "<empty>"
        return f"FaultPlan(seed={self.seed}, sites=[{sites}])"


def _draw(seed: int, site: str, n: int) -> float:
    """Deterministic uniform draw in [0, 1) for check ``n`` of a site."""
    digest = hashlib.sha256(f"{seed}:{site}:{n}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


# ----------------------------------------------------------------------
# Plan parsing
# ----------------------------------------------------------------------
def parse_plan(text: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` / ``--faults`` plan string."""
    specs: list[FaultSpec] = []
    seed = 0
    for part in re.split(r"[;,]", text):
        part = part.strip()
        if not part:
            continue
        if ":" not in part and "=" in part:
            key, _, value = part.partition("=")
            if key.strip() != "seed":
                raise ValueError(f"unknown fault-plan option {key.strip()!r}")
            seed = int(value)
            continue
        site, *tokens = (tok.strip() for tok in part.split(":"))
        probability, first_n, depth, max_fires, after = 0.0, 0, 1, None, 0
        for token in tokens:
            if token.startswith("first="):
                first_n = int(token[len("first="):])
            elif token.startswith("depth="):
                depth = int(token[len("depth="):])
            elif token.startswith("max="):
                max_fires = int(token[len("max="):])
            elif token.startswith("after="):
                after = int(token[len("after="):])
            else:
                probability = float(token)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"fault probability for {site!r} must be in [0, 1]")
        specs.append(
            FaultSpec(
                site=site,
                probability=probability,
                first_n=first_n,
                depth=depth,
                max_fires=max_fires,
                after=after,
            )
        )
    return FaultPlan(specs, seed=seed)


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------
_installed: FaultPlan | None = None
_env_text: str | None = None
_env_plan: FaultPlan | None = None
_state_lock = threading.Lock()


def install(plan: FaultPlan | None) -> FaultPlan | None:
    """Install (or, with ``None``, remove) the explicit process plan."""
    global _installed
    _installed = plan
    return plan


@contextlib.contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Temporarily make ``plan`` the active fault plan."""
    previous = _installed
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def active_plan() -> FaultPlan | None:
    """The explicit plan if installed, else the (cached) env plan."""
    if _installed is not None:
        return _installed
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    global _env_text, _env_plan
    with _state_lock:
        if text != _env_text:
            _env_plan = parse_plan(text)
            _env_text = text
        return _env_plan


# ----------------------------------------------------------------------
# Instrumentation-point helpers
# ----------------------------------------------------------------------
def should_fire(site: str, attempt: int = 0, instance: str | None = None) -> bool:
    """Cheap site check: False (one dict/env lookup) with no plan."""
    plan = active_plan()
    return plan is not None and plan.should_fire(site, attempt, instance=instance)


def corrupt_value(site: str, value: float, attempt: int = 0) -> float:
    """Replace a measurement with NaN when ``site`` fires."""
    return float("nan") if should_fire(site, attempt) else value


def corrupt_bytes(site: str, data: bytes) -> bytes:
    """Truncate a byte payload to half when ``site`` fires."""
    return data[: len(data) // 2] if should_fire(site) else data
