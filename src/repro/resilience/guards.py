"""Stage-boundary invariant guards: self-checking pipeline artifacts.

Crash tolerance is only half of reliability — the other half is never
letting a *silently wrong* artifact propagate (or worse, enter the
content-addressed cache, where it would poison every later run that
shares the key).  This module implements the checks that run at stage
boundaries of the synthesis flow:

* **functional**: a bounded combinational equivalence check
  (:func:`repro.sat.cec.check_equivalence` with a ``sat_node_limit``)
  between a restructuring stage's input and output networks — random
  simulation always, a full SAT proof only while the networks are
  small enough to afford one;
* **structural (AIG)**: acyclicity/topological order, two-input
  fanin arity, canonical fanin ordering, interface-array consistency;
* **structural (library)**: every NLDM table finite, slew/load
  (capacitance) axes strictly monotone, non-negative areas and
  leakages — invariants the dataclass validators enforce at
  construction but which a pickle round-trip through a hostile disk
  bypasses;
* **structural (netlist)**: every gate instantiates a known library
  cell and the gate list is topologically ordered.

Check functions return a list of human-readable violation strings
(empty = healthy).  The :class:`repro.core.stages.FlowRunner` invokes
a stage's guard on every cache *miss*, before the artifact is stored:
a violation vetoes caching (quarantine) and — in the default
``enforce`` mode — raises
:class:`repro.resilience.errors.GuardViolation`, a
:class:`PermanentError` (recomputing the same wrong answer cannot
help).  ``REPRO_GUARDS=warn`` downgrades violations to counters plus
``FlowResult.guard_violations`` entries; ``REPRO_GUARDS=off`` skips
the checks entirely.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING

from .. import obs

if TYPE_CHECKING:
    from ..charlib.nldm import Library
    from ..mapping.netlist import MappedNetlist
    from ..synth.aig import AIG

#: Environment knob: ``enforce`` (default) raises on violation,
#: ``warn`` records without failing, ``off`` disables the guards.
ENV_VAR = "REPRO_GUARDS"

#: Combined AND-node budget above which the CEC guard stays
#: simulation-only (override with ``REPRO_GUARD_CEC_LIMIT``).
DEFAULT_CEC_SAT_LIMIT = 200

#: Random patterns for the CEC guard's simulation pre-filter.
CEC_PATTERNS = 64

_ARC_TABLES = (
    "cell_rise",
    "cell_fall",
    "rise_transition",
    "fall_transition",
    "rise_power",
    "fall_power",
)
_CONSTRAINT_TABLES = ("rise_constraint", "fall_constraint")


def mode() -> str:
    """Active guard mode: ``enforce`` | ``warn`` | ``off``."""
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if value in ("0", "off", "false", "no"):
        return "off"
    if value == "warn":
        return "warn"
    return "enforce"


def cec_sat_limit() -> int:
    try:
        return int(os.environ.get("REPRO_GUARD_CEC_LIMIT", DEFAULT_CEC_SAT_LIMIT))
    except ValueError:
        return DEFAULT_CEC_SAT_LIMIT


# ----------------------------------------------------------------------
# AIG invariants
# ----------------------------------------------------------------------
def check_aig_invariants(aig: "AIG") -> list[str]:
    """Structural well-formedness of an and-inverter graph.

    Every property here holds by construction through the public
    :class:`repro.synth.aig.AIG` API; a violation therefore means a
    buggy pass mutated internals directly, or an artifact was
    deserialized from a corrupted source.
    """
    from ..synth.aig import lit_var

    violations: list[str] = []
    n = len(aig._fanin0)
    if len(aig._fanin1) != n or len(aig._is_pi) != n:
        return [
            f"fanin/pi arrays disagree on node count "
            f"({n}, {len(aig._fanin1)}, {len(aig._is_pi)})"
        ]
    if n == 0 or aig._is_pi[0] or aig._fanin0[0] != -1 or aig._fanin1[0] != -1:
        violations.append("node 0 is not the constant-FALSE node")
    for node in range(1, n):
        f0, f1 = aig._fanin0[node], aig._fanin1[node]
        if aig._is_pi[node]:
            if f0 != -1 or f1 != -1:
                violations.append(f"PI node {node} has fanins ({f0}, {f1})")
            continue
        if f0 < 0 or f1 < 0:
            violations.append(f"AND node {node} has arity < 2 ({f0}, {f1})")
            continue
        if f0 > f1:
            violations.append(
                f"AND node {node} fanins not canonically ordered ({f0} > {f1})"
            )
        if lit_var(f0) >= node or lit_var(f1) >= node:
            violations.append(
                f"AND node {node} breaks topological order (fanins "
                f"{lit_var(f0)}, {lit_var(f1)}) — cycle or dangling reference"
            )
    for i, pi in enumerate(aig.pis):
        if not (0 < pi < n) or not aig._is_pi[pi]:
            violations.append(f"pis[{i}] = {pi} is not a PI node")
    for i, po in enumerate(aig.pos):
        if po < 0 or lit_var(po) >= n:
            violations.append(f"pos[{i}] = {po} references node {lit_var(po)} >= {n}")
    if len(aig.pi_names) != len(aig.pis):
        violations.append(
            f"{len(aig.pi_names)} PI names for {len(aig.pis)} PIs"
        )
    if len(aig.po_names) != len(aig.pos):
        violations.append(
            f"{len(aig.po_names)} PO names for {len(aig.pos)} POs"
        )
    return violations


def synthesis_guard(stage: str, before: "AIG", after: "AIG") -> list[str]:
    """Guard for a restructuring stage: interface, structure, function.

    Returns violation strings; the CEC part is bounded (see module
    docstring) so this runs after *every* synthesis stage without an
    unbounded solver bill.
    """
    from ..sat.cec import check_equivalence

    obs.count("guard.check")
    obs.count(f"guard.check.{stage}")
    violations = check_aig_invariants(after)
    if before.num_pis != after.num_pis:
        violations.append(
            f"PI count changed: {before.num_pis} -> {after.num_pis}"
        )
    if before.num_pos != after.num_pos:
        violations.append(
            f"PO count changed: {before.num_pos} -> {after.num_pos}"
        )
    if violations:
        return violations  # CEC needs a structurally sane network
    result = check_equivalence(
        before,
        after,
        simulation_patterns=CEC_PATTERNS,
        sat_node_limit=cec_sat_limit(),
    )
    if not result.equivalent:
        violations.append(
            f"cec: output {result.failing_output} differs from the stage "
            f"input under PI assignment {result.counterexample}"
        )
    elif not result.proven:
        # Simulation found nothing but the SAT budget was exceeded:
        # the artifact passes, with the reduced confidence visible.
        obs.count("guard.cec.unproven")
    return violations


# ----------------------------------------------------------------------
# Library invariants
# ----------------------------------------------------------------------
def _check_table(owner: str, field: str, table) -> list[str]:
    violations: list[str] = []
    axes = (("slews", table.slews), ("loads", table.loads))
    for axis_name, axis in axes:
        if any(not math.isfinite(v) for v in axis):
            violations.append(f"{owner}.{field}: non-finite {axis_name} axis")
        elif any(b <= a for a, b in zip(axis, axis[1:])):
            violations.append(
                f"{owner}.{field}: {axis_name} axis not strictly increasing"
            )
    if any(not math.isfinite(v) for row in table.values for v in row):
        violations.append(f"{owner}.{field}: non-finite table value")
    return violations


def check_library_invariants(library: "Library") -> list[str]:
    """Finiteness and monotonicity of every characterized table.

    :class:`repro.charlib.nldm.NLDMTable` validates its axes at
    construction and the characterization engine sanitizes non-finite
    measurements — but artifacts that travelled through a disk cache
    (pickle bypasses ``__post_init__``) or a subprocess boundary get
    re-checked here before signoff trusts them.
    """
    violations: list[str] = []
    for cell in library.cells.values():
        if not math.isfinite(cell.area) or cell.area < 0.0:
            violations.append(f"{cell.name}: non-physical area {cell.area!r}")
        for pin, cap in cell.input_caps.items():
            if not math.isfinite(cap) or cap < 0.0:
                violations.append(
                    f"{cell.name}.{pin}: non-physical input cap {cap!r}"
                )
        for state, leak in cell.leakage_by_state.items():
            if not math.isfinite(leak) or leak < 0.0:
                violations.append(
                    f"{cell.name}[{state}]: non-physical leakage {leak!r}"
                )
        for arc in cell.arcs:
            owner = f"{cell.name}.{arc.related_pin}->{arc.output_pin}"
            for field in _ARC_TABLES:
                violations.extend(_check_table(owner, field, getattr(arc, field)))
        for arc in cell.constraints:
            owner = f"{cell.name}.{arc.constrained_pin}/{arc.timing_type}"
            for field in _CONSTRAINT_TABLES:
                violations.extend(_check_table(owner, field, getattr(arc, field)))
    return violations


# ----------------------------------------------------------------------
# Netlist invariants
# ----------------------------------------------------------------------
def netlist_guard(library: "Library", netlist: "MappedNetlist") -> list[str]:
    """Mapped-netlist sanity: known cells, topological gate order."""
    obs.count("guard.check")
    obs.count("guard.check.map")
    violations: list[str] = []
    defined = set(netlist.pi_nets)
    for gate in netlist.gates:
        if gate.cell not in library:
            violations.append(f"gate {gate.name}: unknown cell {gate.cell!r}")
        for pin, net in gate.pins.items():
            if net not in defined:
                violations.append(
                    f"gate {gate.name}.{pin}: net {net!r} has no earlier driver"
                )
        defined.add(gate.output_net)
    for net in netlist.po_nets:
        if net not in defined:
            violations.append(f"PO net {net!r} is undriven")
    return violations
