"""Fault tolerance layer: error taxonomy, retry ladders, degradation,
deterministic fault injection, crash-safe journaling, subprocess
isolation, and stage-boundary guards (``repro.resilience``).

Six pieces, adopted across the pipeline:

* :mod:`repro.resilience.errors` — the structured exception taxonomy
  (``transient`` / ``permanent`` / ``degraded``) every layer raises;
* :mod:`repro.resilience.retry` — generic retry ladders with
  ``resilience.retry.*`` counters (the Newton solver's
  damping/gmin/time-step ladder is the canonical user);
* :mod:`repro.resilience.faults` — a seedable, deterministic fault
  injection harness (``REPRO_FAULTS`` / :class:`FaultPlan`) that can
  force every failure the recovery paths handle;
* :mod:`repro.resilience.journal` — the write-ahead run journal
  (``--journal`` / ``--resume`` on the CLI) that makes a ``kill -9``'d
  sweep resumable to byte-identical output;
* :mod:`repro.resilience.isolation` — supervised worker subprocesses
  with heartbeats, a stall/memory watchdog, and crash restart
  (``parallel_map(..., isolate="process")``);
* :mod:`repro.resilience.guards` — stage-boundary invariant checks
  (bounded CEC plus AIG/library/netlist structural invariants) that
  quarantine wrong artifacts before they can enter the cache.

See ``docs/ROBUSTNESS.md`` for the full taxonomy, the retry rungs,
degraded-mode semantics, the fault-injection cookbook, the journal
format, and guard semantics.
"""

from . import faults, guards
from .errors import (
    DEGRADED,
    PERMANENT,
    TRANSIENT,
    AdmissionError,
    CacheCorruptionError,
    CalibrationError,
    DegradedError,
    GuardViolation,
    InjectedCrashError,
    InjectedFaultError,
    JournalError,
    JournalLockedError,
    JournalMismatchError,
    MeasurementError,
    ParallelExecutionError,
    PermanentError,
    QueueSaturatedError,
    QuotaExceededError,
    ReproError,
    ServiceDrainingError,
    StageTimeoutError,
    TimeoutExceeded,
    TransientError,
    WorkerCrashError,
    WorkerHungError,
    WorkerMemoryError,
    classify,
    is_transient,
)
from .faults import ENV_VAR, FaultPlan, FaultSpec, injecting, install, parse_plan
from .isolation import process_map, run_isolated, task_heartbeat
from .journal import (
    RunJournal,
    acquire_writer_lock,
    artifact_digest,
    config_fingerprint,
    load_records,
)
from .retry import run_ladder

__all__ = [
    "TRANSIENT",
    "PERMANENT",
    "DEGRADED",
    "ReproError",
    "TransientError",
    "PermanentError",
    "DegradedError",
    "AdmissionError",
    "CacheCorruptionError",
    "CalibrationError",
    "GuardViolation",
    "InjectedCrashError",
    "InjectedFaultError",
    "JournalError",
    "JournalLockedError",
    "JournalMismatchError",
    "MeasurementError",
    "ParallelExecutionError",
    "QueueSaturatedError",
    "QuotaExceededError",
    "ServiceDrainingError",
    "StageTimeoutError",
    "TimeoutExceeded",
    "WorkerCrashError",
    "WorkerHungError",
    "WorkerMemoryError",
    "classify",
    "is_transient",
    "faults",
    "guards",
    "ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "injecting",
    "install",
    "parse_plan",
    "process_map",
    "run_isolated",
    "task_heartbeat",
    "RunJournal",
    "acquire_writer_lock",
    "artifact_digest",
    "config_fingerprint",
    "load_records",
    "run_ladder",
]
