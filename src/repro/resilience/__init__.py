"""Fault tolerance layer: error taxonomy, retry ladders, degradation,
and deterministic fault injection (``repro.resilience``).

Three pieces, adopted across the pipeline:

* :mod:`repro.resilience.errors` — the structured exception taxonomy
  (``transient`` / ``permanent`` / ``degraded``) every layer raises;
* :mod:`repro.resilience.retry` — generic retry ladders with
  ``resilience.retry.*`` counters (the Newton solver's
  damping/gmin/time-step ladder is the canonical user);
* :mod:`repro.resilience.faults` — a seedable, deterministic fault
  injection harness (``REPRO_FAULTS`` / :class:`FaultPlan`) that can
  force every failure the recovery paths handle.

See ``docs/ROBUSTNESS.md`` for the full taxonomy, the retry rungs,
degraded-mode semantics, and the fault-injection cookbook.
"""

from . import faults
from .errors import (
    DEGRADED,
    PERMANENT,
    TRANSIENT,
    CacheCorruptionError,
    CalibrationError,
    DegradedError,
    InjectedFaultError,
    MeasurementError,
    ParallelExecutionError,
    PermanentError,
    ReproError,
    StageTimeoutError,
    TimeoutExceeded,
    TransientError,
    classify,
    is_transient,
)
from .faults import ENV_VAR, FaultPlan, FaultSpec, injecting, install, parse_plan
from .retry import run_ladder

__all__ = [
    "TRANSIENT",
    "PERMANENT",
    "DEGRADED",
    "ReproError",
    "TransientError",
    "PermanentError",
    "DegradedError",
    "CacheCorruptionError",
    "CalibrationError",
    "InjectedFaultError",
    "MeasurementError",
    "ParallelExecutionError",
    "StageTimeoutError",
    "TimeoutExceeded",
    "classify",
    "is_transient",
    "faults",
    "ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "injecting",
    "install",
    "parse_plan",
    "run_ladder",
]
