"""Retry ladders: progressively relaxed re-attempts of a transient
failure, with per-rung observability.

A *ladder* is an ordered sequence of rungs, each describing one
attempt's parameters — rung 0 is always the nominal configuration, so
a run that never fails is bit-identical to a run without the ladder.
On a retryable failure the next rung is tried; the counters let a
``--profile`` run show exactly how hard the pipeline had to work:

* ``resilience.retry`` / ``resilience.retry.<site>`` — one per
  re-attempt;
* ``resilience.retry.<site>.rung<i>`` — the rung that was attempted;
* ``resilience.recovered.<site>`` — a retry eventually succeeded;
* ``resilience.exhausted.<site>`` — every rung failed (the last
  error is re-raised).

The canonical user is the Newton solver
(:data:`repro.spice.engine.NEWTON_LADDER`: damping relaxation, a
gmin-style conductance floor, a larger iteration budget); the helper
is generic so other subsystems can adopt the same discipline.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, TypeVar

from .. import obs
from .errors import TransientError

R = TypeVar("R")


def run_ladder(
    site: str,
    rungs: Sequence[Any],
    attempt: Callable[[int, Any], R],
    *,
    retry_on: type[BaseException] | tuple[type[BaseException], ...] = TransientError,
) -> R:
    """Run ``attempt(index, rung)`` over ``rungs`` until one succeeds.

    Failures matching ``retry_on`` advance to the next rung; any other
    exception propagates immediately.  When every rung fails, the last
    error is re-raised after counting ``resilience.exhausted.<site>``.
    """
    if not rungs:
        raise ValueError(f"retry ladder for {site!r} needs at least one rung")
    last: BaseException | None = None
    for index, rung in enumerate(rungs):
        if index:
            obs.count("resilience.retry")
            obs.count(f"resilience.retry.{site}")
            obs.count(f"resilience.retry.{site}.rung{index}")
        try:
            result = attempt(index, rung)
        except retry_on as exc:
            last = exc
            continue
        if index:
            obs.count(f"resilience.recovered.{site}")
        return result
    obs.count(f"resilience.exhausted.{site}")
    assert last is not None
    raise last
