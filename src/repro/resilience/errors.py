"""Structured exception taxonomy for fault-tolerant flow execution.

Every failure the pipeline can encounter is classified into one of
three kinds, carried on the exception class (or instance) as
``classification``:

* ``transient`` — retrying (possibly with relaxed parameters) may
  succeed: Newton non-convergence, a corrupt disk-cache entry, a
  timed-out stage, an injected chaos fault;
* ``permanent`` — retrying cannot help: bad configuration, a
  diverged calibration, an impossible request;
* ``degraded`` — the operation *completed* but on a fallback path
  with reduced fidelity (e.g. an analytic stand-in for a failed SPICE
  arc); raised only when a strict mode escalates degradation into an
  error.

The module is an import leaf: it depends on nothing else in
:mod:`repro`, so every layer (``spice``, ``charlib``, ``device``,
``core``, ``obs``) can adopt the taxonomy without import cycles.
Domain modules subclass these types next to the code that raises them
(e.g. :class:`repro.spice.engine.ConvergenceError` is a
:class:`TransientError` that is still a ``RuntimeError`` for
backward compatibility).

See ``docs/ROBUSTNESS.md`` for the recovery policy attached to each
classification.
"""

from __future__ import annotations

#: The three failure classifications.
TRANSIENT = "transient"
PERMANENT = "permanent"
DEGRADED = "degraded"


class ReproError(Exception):
    """Base of the structured error taxonomy.

    ``site`` optionally names the pipeline location that failed (the
    same dotted names the fault-injection harness uses, e.g.
    ``"spice.newton"``); ``classification`` is one of
    :data:`TRANSIENT` / :data:`PERMANENT` / :data:`DEGRADED` and may
    be overridden per class or per instance.
    """

    classification: str = PERMANENT

    def __init__(self, message: str = "", *args, site: str | None = None):
        super().__init__(message, *args)
        self.site = site


class TransientError(ReproError):
    """A failure that a retry ladder may recover from."""

    classification = TRANSIENT


class PermanentError(ReproError):
    """A failure no amount of retrying can fix."""

    classification = PERMANENT


class DegradedError(ReproError):
    """Degraded (fallback-quality) results escalated by a strict mode."""

    classification = DEGRADED


# ----------------------------------------------------------------------
# Shared domain errors
# ----------------------------------------------------------------------
class CacheCorruptionError(TransientError):
    """A disk cache entry failed its checksum or did not unpickle.

    Never escapes :class:`repro.core.artifacts.ArtifactCache` — the
    entry is quarantined and the lookup degrades to a miss — but the
    type documents *why* and is what the cache raises internally.
    """


class MeasurementError(TransientError):
    """A characterization measurement produced a non-physical value
    (NaN/inf delay, slew, or energy)."""


class InjectedFaultError(TransientError):
    """An error injected by the chaos harness at a site with no more
    specific domain exception (e.g. ``parallel.worker``)."""


class TimeoutExceeded(TransientError):
    """A deadline or timeout expired before the work finished."""

    def __init__(
        self,
        message: str = "",
        *args,
        site: str | None = None,
        timeout_s: float | None = None,
    ):
        super().__init__(message, *args, site=site)
        self.timeout_s = timeout_s


class StageTimeoutError(TimeoutExceeded):
    """A pipeline stage exceeded its per-stage timeout or the flow
    deadline (see :class:`repro.core.stages.FlowRunner`)."""


class InjectedCrashError(PermanentError):
    """Simulated process death injected at the ``journal.crash`` site.

    Raised *after* a journal record has been committed (written,
    flushed, and fsync'd), so tests can model ``kill -9`` landing
    between any two records of a sweep and then exercise the resume
    path.  Permanent: nothing in-process should retry past a simulated
    death."""


class WorkerCrashError(TransientError):
    """An isolated worker subprocess died before returning a result.

    Transient: the supervisor restarts the worker and the task is
    eligible for re-dispatch (and the caller's retry ladder may try
    again)."""


class WorkerHungError(WorkerCrashError):
    """The watchdog killed a worker that stopped making progress
    (no heartbeat within the task's stall budget)."""


class WorkerMemoryError(WorkerCrashError):
    """The watchdog killed a worker whose resident set exceeded the
    configured memory cap."""


class GuardViolation(PermanentError):
    """A stage-boundary invariant guard rejected an artifact.

    The offending artifact is quarantined — it never enters the
    artifact cache — and ``violations`` carries every individual
    failed check.  Permanent: recomputing the same stage with the same
    inputs would produce the same wrong artifact.
    """

    def __init__(
        self,
        message: str = "",
        *args,
        site: str | None = None,
        stage: str | None = None,
        violations: tuple[str, ...] | list[str] = (),
    ):
        super().__init__(message, *args, site=site)
        self.stage = stage
        self.violations = tuple(violations)


class JournalError(PermanentError):
    """A run journal is unreadable or structurally invalid."""


class JournalMismatchError(JournalError):
    """A ``--resume`` journal was recorded by an incompatible run
    (different configuration digest or a newer journal format)."""


class JournalLockedError(JournalError):
    """Another live process holds the writer lock on a journal path.

    Two writers appending to one journal interleave frames and poison
    every later ``--resume``, so :class:`~repro.resilience.journal.RunJournal`
    takes an exclusive ``<path>.lock`` file (holding the writer's pid)
    on ``create``/``resume``.  A lock whose pid is dead is *stale* —
    left behind by ``kill -9`` — and is silently reclaimed; only a
    lock owned by a live process raises this.  Permanent: retrying
    while the owner lives would corrupt the journal."""


# ----------------------------------------------------------------------
# Service admission errors (repro.server)
# ----------------------------------------------------------------------
class AdmissionError(TransientError):
    """A characterization-service submission was not admitted.

    Load shedding, not failure: the service is protecting itself and
    the caller should retry after ``retry_after_s`` seconds (surfaced
    as an HTTP ``Retry-After`` header by :mod:`repro.server.http`).
    Transient by definition — capacity comes back.
    """

    def __init__(
        self,
        message: str = "",
        *args,
        site: str | None = None,
        retry_after_s: float | None = None,
    ):
        super().__init__(message, *args, site=site)
        self.retry_after_s = retry_after_s


class QueueSaturatedError(AdmissionError):
    """The bounded job queue is full; the submission was shed rather
    than queued unboundedly (``server.queue_full``)."""


class QuotaExceededError(AdmissionError):
    """The submitting tenant already holds its full pending-job quota;
    admitting more would let one tenant starve the others."""


class ServiceDrainingError(AdmissionError):
    """The service received a drain request (SIGTERM) and no longer
    admits work; in-flight and journaled jobs still complete."""


class CalibrationError(ReproError, ValueError):
    """Compact-model calibration cannot proceed or diverged.

    Also a ``ValueError`` so pre-taxonomy callers that caught
    ``ValueError`` keep working.
    """


class ParallelExecutionError(ReproError):
    """Aggregate failure of a ``collect``-policy parallel fan-out.

    ``errors`` holds ``(index, label, exception)`` triples for every
    failed task.  The aggregate classifies as transient iff *all*
    component failures are transient.
    """

    def __init__(self, message: str = "", errors=()):
        super().__init__(message)
        self.errors = list(errors)
        if self.errors and all(is_transient(exc) for _, _, exc in self.errors):
            self.classification = TRANSIENT


# ----------------------------------------------------------------------
# Classification helpers
# ----------------------------------------------------------------------
def classify(exc: BaseException) -> str:
    """Classification of any exception (non-taxonomy -> permanent)."""
    value = getattr(exc, "classification", PERMANENT)
    return value if value in (TRANSIENT, PERMANENT, DEGRADED) else PERMANENT


def is_transient(exc: BaseException) -> bool:
    """True when a retry ladder is allowed to re-attempt after ``exc``."""
    return classify(exc) == TRANSIENT
