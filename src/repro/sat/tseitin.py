"""Tseitin transformation: AIG -> CNF.

Each AIG node becomes one SAT variable; an AND node ``n = a & b``
contributes the three clauses ``(!n | a)``, ``(!n | b)``,
``(n | !a | !b)``.  The encoding is the bridge between the synthesis
data structures and the CDCL engine for equivalence checking and
SAT-based resubstitution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .solver import Solver

if TYPE_CHECKING:
    from ..synth.aig import AIG


class AIGEncoder:
    """Encodes one or more AIGs into a shared solver instance."""

    def __init__(self, solver: Solver | None = None):
        self.solver = solver or Solver()
        self._const_var: int | None = None

    def _constant_var(self) -> int:
        if self._const_var is None:
            self._const_var = self.solver.new_var()
            self.solver.add_clause([-self._const_var])  # constant FALSE
        return self._const_var

    def encode(self, aig: "AIG", pi_vars: list[int] | None = None) -> dict[int, int]:
        """Encode ``aig``; returns node-id -> solver-variable map.

        ``pi_vars`` allows sharing input variables between two encoded
        networks (the miter construction); when omitted, fresh
        variables are allocated.
        """
        from ..synth.aig import lit_is_compl, lit_var

        if pi_vars is not None and len(pi_vars) != len(aig.pis):
            raise ValueError("pi_vars length must match the number of PIs")
        node_var: dict[int, int] = {0: self._constant_var()}
        for i, node in enumerate(aig.pis):
            node_var[node] = pi_vars[i] if pi_vars is not None else self.solver.new_var()
        for node in aig.and_nodes():
            f0, f1 = aig.fanins(node)
            a = node_var[lit_var(f0)] * (-1 if lit_is_compl(f0) else 1)
            b = node_var[lit_var(f1)] * (-1 if lit_is_compl(f1) else 1)
            n = self.solver.new_var()
            node_var[node] = n
            self.solver.add_clause([-n, a])
            self.solver.add_clause([-n, b])
            self.solver.add_clause([n, -a, -b])
        return node_var

    def literal(self, node_var: dict[int, int], lit: int) -> int:
        """Convert an AIG literal to a solver literal."""
        return node_var[lit >> 1] * (-1 if lit & 1 else 1)
