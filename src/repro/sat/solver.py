"""A CDCL SAT solver.

The paper's synthesis pipeline leans on SAT in two places: SAT-based
resubstitution with don't-cares (ABC's ``mfs``) and the equivalence
checking that guards every netlist transformation.  This module
provides the reasoning engine: a conflict-driven clause-learning
solver with two-watched-literal propagation, first-UIP learning,
VSIDS-style activity ordering, phase saving, and Luby restarts.

Literal encoding: DIMACS-style signed integers (variable ``v`` > 0,
literal ``v`` or ``-v``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


UNASSIGNED = 0
TRUE = 1
FALSE = -1


@dataclass
class SolverStats:
    """Counters exposed for tests and tuning."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0


def _luby(i: int) -> int:
    """The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...); 1-based."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class Solver:
    """CDCL SAT solver over clauses of DIMACS literals."""

    def __init__(self):
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        self._assign: list[int] = [UNASSIGNED]  # index 0 unused
        self._level: list[int] = [0]
        self._reason: list[int | None] = [None]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._qhead = 0
        # Lazy max-heap over (-activity, var) for decision ordering;
        # stale entries are skipped at pop time (MiniSat order_heap).
        self._order: list[tuple[float, int]] = []
        self.stats = SolverStats()
        self._ok = True

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable and return its index (1-based)."""
        self.num_vars += 1
        self._assign.append(UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        heapq.heappush(self._order, (0.0, self.num_vars))
        return self.num_vars

    def _ensure_vars(self, clause: list[int]) -> None:
        needed = max(abs(l) for l in clause)
        while self.num_vars < needed:
            self.new_var()

    def add_clause(self, literals: list[int]) -> bool:
        """Add a clause; returns False if the formula became UNSAT.

        Safe to call between queries: any leftover search state from a
        previous ``solve`` is rolled back to decision level 0 first, so
        unit clauses are evaluated against root-level implications only.
        """
        if not self._ok:
            return False
        if self._trail_lim:
            self._backtrack(0)
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            if -lit in seen:
                return True  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        # Simplify against root-level assignments: literals false at
        # level 0 are permanently false (drop them); a literal true at
        # level 0 satisfies the clause forever.  This also guarantees
        # both installed watches start out non-false, preserving the
        # watched-literal invariant for clauses added between queries.
        simplified: list[int] = []
        for lit in clause:
            if abs(lit) > self.num_vars:
                simplified.append(lit)
                continue
            value = self._value(lit)
            if value == TRUE:
                return True
            if value == UNASSIGNED:
                simplified.append(lit)
        clause = simplified
        if not clause:
            self._ok = False
            return False
        self._ensure_vars(clause)
        if len(clause) == 1:
            lit = clause[0]
            value = self._value(lit)
            if value == FALSE:
                self._ok = False
                return False
            if value == UNASSIGNED:
                self._enqueue(lit, None)
                conflict = self._propagate()
                if conflict is not None:
                    self._ok = False
                    return False
            return True
        index = len(self.clauses)
        self.clauses.append(clause)
        self._watch(clause[0], index)
        self._watch(clause[1], index)
        return True

    def _watch(self, lit: int, clause_index: int) -> None:
        self._watches.setdefault(-lit, []).append(clause_index)

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        if value == UNASSIGNED:
            return UNASSIGNED
        return value if lit > 0 else -value

    def _enqueue(self, lit: int, reason: int | None) -> None:
        var = abs(lit)
        self._assign[var] = TRUE if lit > 0 else FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)

    def _propagate(self) -> int | None:
        """Unit propagation; returns a conflicting clause index or None.

        Hot path: literal values are computed inline from the raw
        assignment array instead of going through :meth:`_value`.
        """
        assign = self._assign
        clauses = self.clauses
        watches = self._watches
        trail = self._trail
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            watch_list = watches.get(lit)
            if not watch_list:
                continue
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                clause = clauses[ci]
                # Normalize: the false literal goes to position 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                v = assign[first] if first > 0 else -assign[-first]
                if v == TRUE:
                    i += 1
                    continue
                # Search replacement watch.
                moved = False
                for j in range(2, len(clause)):
                    other = clause[j]
                    ov = assign[other] if other > 0 else -assign[-other]
                    if ov != FALSE:
                        clause[1], clause[j] = other, clause[1]
                        watches.setdefault(-other, []).append(ci)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                if v == FALSE:
                    return ci  # conflict
                self._enqueue(first, ci)
                i += 1
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        heapq.heappush(self._order, (-self._activity[var], var))
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._order = [(-self._activity[v], v) for v in range(1, self.num_vars + 1)]
            heapq.heapify(self._order)

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis -> (learned clause, backtrack level)."""
        current_level = len(self._trail_lim)
        seen = [False] * (self.num_vars + 1)
        learned: list[int] = [0]  # placeholder for the asserting literal
        counter = 0
        lit = None
        clause = self.clauses[conflict]
        index = len(self._trail)

        while True:
            for q in clause:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Pick the next literal from the trail.
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            seen[abs(lit)] = False
            if counter == 0:
                learned[0] = -lit
                break
            reason = self._reason[abs(lit)]
            clause = self.clauses[reason] if reason is not None else []

        if len(learned) == 1:
            return learned, 0
        back_level = max(self._level[abs(q)] for q in learned[1:])
        return learned, back_level

    def _backtrack(self, level: int) -> None:
        while self._trail_lim and len(self._trail_lim) > level:
            limit = self._trail_lim[-1]
            while len(self._trail) > limit:
                lit = self._trail.pop()
                var = abs(lit)
                self._assign[var] = UNASSIGNED
                self._reason[var] = None
                heapq.heappush(self._order, (-self._activity[var], var))
            self._trail_lim.pop()
        self._qhead = min(self._qhead, len(self._trail))

    def _decide(self) -> int | None:
        while self._order:
            neg_activity, var = heapq.heappop(self._order)
            if self._assign[var] != UNASSIGNED:
                continue  # stale entry
            if -neg_activity != self._activity[var]:
                # Stale activity snapshot; a fresher entry exists.
                if (-self._activity[var], var) > (neg_activity, var):
                    heapq.heappush(self._order, (-self._activity[var], var))
                    continue
            return var if self._phase[var] else -var
        # Heap exhausted: fall back to a linear scan (covers stale-heap
        # corner cases); returns None when everything is assigned.
        for var in range(1, self.num_vars + 1):
            if self._assign[var] == UNASSIGNED:
                heapq.heappush(self._order, (-self._activity[var], var))
                return var if self._phase[var] else -var
        return None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(self, assumptions: list[int] | None = None, conflict_limit: int | None = None) -> bool | None:
        """Solve under optional assumptions.

        Returns True (SAT), False (UNSAT), or None if the conflict
        limit was exhausted (budgeted incomplete call).
        """
        if not self._ok:
            return False
        if assumptions:
            self._ensure_vars(list(assumptions))
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False

        assumptions = assumptions or []
        restart_index = 1
        restart_budget = 32 * _luby(restart_index)
        conflicts_total = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_total += 1
                if conflict_limit is not None and conflicts_total > conflict_limit:
                    self._backtrack(0)
                    return None
                if len(self._trail_lim) == 0:
                    return False
                learned, back_level = self._analyze(conflict)
                # Backtracking below the assumption levels is fine: the
                # main loop re-enqueues assumptions as decisions.
                self._backtrack(back_level)
                if len(learned) == 1:
                    if self._value(learned[0]) == FALSE:
                        return False
                    if self._value(learned[0]) == UNASSIGNED:
                        self._enqueue(learned[0], None)
                else:
                    index = len(self.clauses)
                    self.clauses.append(learned)
                    self._watch(learned[0], index)
                    self._watch(learned[1], index)
                    self.stats.learned_clauses += 1
                    if self._value(learned[0]) == UNASSIGNED:
                        self._enqueue(learned[0], index)
                self._var_inc /= self._var_decay
                restart_budget -= 1
                if restart_budget <= 0:
                    self.stats.restarts += 1
                    restart_index += 1
                    restart_budget = 32 * _luby(restart_index)
                    self._backtrack(0)
                continue

            # Assumptions first.
            all_assumed = True
            for lit in assumptions:
                value = self._value(lit)
                if value == FALSE:
                    return False
                if value == UNASSIGNED:
                    self._trail_lim.append(len(self._trail))
                    self._enqueue(lit, None)
                    all_assumed = False
                    break
            if not all_assumed:
                continue

            decision = self._decide()
            if decision is None:
                return True
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)

    def _assumption_level(self, assumptions: list[int]) -> int:
        return min(len(assumptions), len(self._trail_lim))

    # ------------------------------------------------------------------
    def model(self) -> dict[int, bool]:
        """Satisfying assignment after a True result."""
        return {
            var: self._assign[var] == TRUE
            for var in range(1, self.num_vars + 1)
            if self._assign[var] != UNASSIGNED
        }

    def value(self, var: int) -> bool | None:
        state = self._assign[var]
        if state == UNASSIGNED:
            return None
        return state == TRUE


def solve_cnf(clauses: list[list[int]], assumptions: list[int] | None = None) -> bool | None:
    """One-shot convenience wrapper."""
    solver = Solver()
    for clause in clauses:
        if not solver.add_clause(list(clause)):
            return False
    return solver.solve(assumptions)
