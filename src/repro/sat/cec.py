"""Combinational equivalence checking (CEC).

Builds a miter between two AIGs over shared primary inputs and asks
the CDCL solver whether any output pair can differ.  Every synthesis
transformation in this repository is guarded by this check (plus
random simulation as a fast pre-filter), mirroring how ABC's ``cec``
is used to validate optimization scripts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from typing import TYPE_CHECKING

from .solver import Solver
from .tseitin import AIGEncoder

if TYPE_CHECKING:
    from ..synth.aig import AIG


@dataclass(frozen=True)
class CECResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    #: PO index that differs (first one found), if any.
    failing_output: int | None = None
    #: PI assignment demonstrating the difference, if any.
    counterexample: tuple[bool, ...] | None = None
    #: True when the verdict is a SAT proof (or a concrete
    #: counterexample); False when a ``sat_node_limit`` bounded the
    #: check to random simulation and no difference was found.
    proven: bool = True


def _simulation_filter(a: "AIG", b: "AIG", patterns: int, seed: int) -> CECResult | None:
    """Random simulation: returns a refutation or None (no difference found)."""
    rng = random.Random(seed)
    words = [rng.getrandbits(patterns) for _ in a.pis]
    outs_a = a.simulate(words, width=patterns)
    outs_b = b.simulate(words, width=patterns)
    for index, (wa, wb) in enumerate(zip(outs_a, outs_b)):
        diff = wa ^ wb
        if diff:
            bit = (diff & -diff).bit_length() - 1
            cex = tuple(bool((w >> bit) & 1) for w in words)
            return CECResult(False, failing_output=index, counterexample=cex)
    return None


def check_equivalence(
    a: "AIG",
    b: "AIG",
    simulation_patterns: int = 256,
    seed: int = 0,
    sat_node_limit: int | None = None,
) -> CECResult:
    """Prove or refute equivalence of two combinational networks.

    The networks must agree on PI and PO counts (names are not
    compared; positional correspondence is used, which matches how the
    optimization passes preserve interface ordering).

    ``sat_node_limit`` bounds the expensive SAT phase: when the
    combined AND count exceeds it, the check stops after the random
    simulation pre-filter and returns an *unproven* pass
    (``equivalent=True, proven=False``).  This is what lets the
    stage-boundary guards run a CEC on every synthesis stage without
    an unbounded solver bill (see ``docs/ROBUSTNESS.md``).
    """
    if a.num_pis != b.num_pis:
        raise ValueError(f"PI count mismatch: {a.num_pis} vs {b.num_pis}")
    if a.num_pos != b.num_pos:
        raise ValueError(f"PO count mismatch: {a.num_pos} vs {b.num_pos}")

    if simulation_patterns > 0 and a.num_pis > 0:
        refutation = _simulation_filter(a, b, simulation_patterns, seed)
        if refutation is not None:
            return refutation

    if sat_node_limit is not None and a.num_ands + b.num_ands > sat_node_limit:
        return CECResult(True, proven=False)

    solver = Solver()
    encoder = AIGEncoder(solver)
    pi_vars = [solver.new_var() for _ in a.pis]
    map_a = encoder.encode(a, pi_vars)
    map_b = encoder.encode(b, pi_vars)

    for index, (po_a, po_b) in enumerate(zip(a.pos, b.pos)):
        lit_a = encoder.literal(map_a, po_a)
        lit_b = encoder.literal(map_b, po_b)
        # XOR output: x <-> (a != b)
        x = solver.new_var()
        solver.add_clause([-x, lit_a, lit_b])
        solver.add_clause([-x, -lit_a, -lit_b])
        solver.add_clause([x, -lit_a, lit_b])
        solver.add_clause([x, lit_a, -lit_b])
        result = solver.solve(assumptions=[x])
        if result is True:
            model = solver.model()
            cex = tuple(model.get(v, False) for v in pi_vars)
            return CECResult(False, failing_output=index, counterexample=cex)
        # UNSAT for this output: force x false and continue.
        solver.add_clause([-x])
    return CECResult(True)


def assert_equivalent(a: "AIG", b: "AIG", context: str = "") -> None:
    """Raise ``AssertionError`` with diagnostics when networks differ."""
    result = check_equivalence(a, b)
    if not result.equivalent:
        prefix = f"{context}: " if context else ""
        raise AssertionError(
            f"{prefix}networks differ on output {result.failing_output} "
            f"under inputs {result.counterexample}"
        )
