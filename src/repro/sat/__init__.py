"""SAT reasoning engine: CDCL solver, Tseitin encoding, equivalence checking."""

from .solver import Solver, SolverStats, solve_cnf
from .tseitin import AIGEncoder
from .cec import CECResult, assert_equivalent, check_equivalence

__all__ = [
    "Solver",
    "SolverStats",
    "solve_cnf",
    "AIGEncoder",
    "CECResult",
    "assert_equivalent",
    "check_equivalence",
]
