"""Job model for the characterization service.

A job is one unit of request-scoped work: a :class:`JobSpec` (what to
compute, for whom, how urgently, with what budget) plus the mutable
execution state the service tracks (:class:`Job`).  The spec's
parameters are plain JSON data by construction — that is what makes a
job content-addressable: :meth:`JobSpec.job_key` fingerprints only the
*result-determining* fields (kind + params), so two tenants asking for
the same corner coalesce onto one computation while their priority,
deadline, and identity stay per-submission.

State machine (enforced by :meth:`Job.finish` — exactly one terminal
transition per job, which is the "zero lost, zero duplicated" half of
the service contract)::

    PENDING --> RUNNING --> DONE
       |           |------> FAILED
       |------------------> DONE/FAILED   (coalesced follower: adopts
                                           its primary's terminal state)
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..resilience.journal import config_fingerprint

__all__ = ["JOB_KINDS", "JobSpec", "Job", "PENDING", "RUNNING", "DONE", "FAILED"]

#: The request vocabulary.  ``probe`` is a cheap deterministic job for
#: tests and health checks (sleep/fail on command); ``characterize``
#: builds a library at a ``(temperature, vdd)`` corner; ``evaluate``
#: runs the synthesis scenarios on an EPFL circuit against a corner.
JOB_KINDS = ("probe", "characterize", "evaluate")

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_TERMINAL = (DONE, FAILED)


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one requested computation.

    ``params`` must be plain JSON data (validated at construction);
    ``tenant``/``priority``/``deadline_s`` shape scheduling but not the
    result, so they stay outside :meth:`job_key`.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    tenant: str = "default"
    #: Higher runs sooner within the tenant's share.
    priority: int = 0
    #: Wall-clock budget from *admission* [s]; ``None`` = unbounded.
    deadline_s: float | None = None

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; choose from {JOB_KINDS}"
            )
        try:
            canonical = json.loads(json.dumps(dict(self.params)))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"job params must be plain JSON data: {exc}") from exc
        object.__setattr__(self, "params", canonical)
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s!r}")

    def job_key(self) -> str:
        """Content address of the *result* this spec asks for."""
        return "server.job." + config_fingerprint(
            {"kind": self.kind, "params": self.params}
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(
            kind=data["kind"],
            params=data.get("params") or {},
            tenant=data.get("tenant") or "default",
            priority=int(data.get("priority") or 0),
            deadline_s=data.get("deadline_s"),
        )


class Job:
    """One admitted submission and its execution state.

    Thread-safety: state transitions go through :meth:`start` /
    :meth:`finish` under the job's own lock; :meth:`finish` refuses a
    second terminal transition, so completion accounting can trust
    "one terminal event per job id" unconditionally.
    """

    def __init__(self, job_id: str, spec: JobSpec, *, now: float | None = None):
        self.id = job_id
        self.spec = spec
        self.key = spec.job_key()
        self.state = PENDING
        self.submitted_at = time.time()
        #: Absolute ``time.monotonic`` deadline (set at admission).
        self.deadline_at = (
            None
            if spec.deadline_s is None
            else (now if now is not None else time.monotonic()) + spec.deadline_s
        )
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: Any = None
        self.error: str | None = None
        self.error_kind: str | None = None
        self.attempts = 0
        #: Primary job id this submission coalesced onto (``None`` for
        #: a primary).
        self.coalesced_into: str | None = None
        self._lock = threading.Lock()
        self._done = threading.Event()

    # -- transitions ----------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self.state in _TERMINAL:
                raise RuntimeError(f"job {self.id} already {self.state}")
            self.state = RUNNING
            self.attempts += 1
            if self.started_at is None:
                self.started_at = time.time()

    def requeued(self) -> None:
        """Back to PENDING after a recoverable worker failure."""
        with self._lock:
            if self.state in _TERMINAL:
                raise RuntimeError(f"job {self.id} already {self.state}")
            self.state = PENDING

    def finish(
        self,
        *,
        result: Any = None,
        error: BaseException | str | None = None,
        error_kind: str | None = None,
    ) -> None:
        """The single terminal transition (DONE or FAILED)."""
        with self._lock:
            if self.state in _TERMINAL:
                raise RuntimeError(
                    f"duplicate terminal transition for job {self.id} "
                    f"(already {self.state})"
                )
            self.finished_at = time.time()
            if error is None:
                self.state = DONE
                self.result = result
            else:
                self.state = FAILED
                self.error = str(error)
                if error_kind is not None:
                    self.error_kind = error_kind
                elif isinstance(error, BaseException):
                    self.error_kind = type(error).__name__
                else:
                    self.error_kind = "error"
        self._done.set()

    # -- queries --------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def remaining_s(self, now: float | None = None) -> float | None:
        """Seconds left on the deadline; ``None`` when unbounded."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - (now if now is not None else time.monotonic())

    def to_dict(self) -> dict[str, Any]:
        """JSON status view (the ``GET /jobs/<id>`` payload)."""
        out = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "kind": self.spec.kind,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
        }
        if self.coalesced_into is not None:
            out["coalesced_into"] = self.coalesced_into
        if self.error is not None:
            out["error"] = self.error
            out["error_kind"] = self.error_kind
        return out

    def __repr__(self) -> str:
        return f"Job({self.id!r}, {self.spec.kind}, {self.state})"
