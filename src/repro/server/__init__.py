"""Characterization-as-a-service (``repro serve``).

The service tier turns the batch pipeline into a long-running,
admission-controlled job server: a bounded weighted-fair queue with
per-tenant quotas in front of the resilience worker pool, jobs
content-addressed by config fingerprint (duplicates coalesce; results
persist and reload), a circuit breaker over worker crashes, per-job
deadlines propagated into stage execution, and SIGTERM-graceful drain
backed by the write-ahead run journal so an interrupted session
resumes to byte-identical results.

Layering: ``server`` sits on top of ``core`` (contexts, flows, cache),
``resilience`` (journal, isolation, faults, error taxonomy) and
``obs`` (counters/spans/ledger).  Nothing below imports it.

See ``docs/ROBUSTNESS.md`` ("Service robustness") for the design and
``benchmarks/server_load.py`` for the load/chaos harness.
"""

from .breaker import CircuitBreaker
from .jobs import JOB_KINDS, Job, JobSpec
from .queue import JobQueue
from .runners import execute_job
from .service import CharacterizationService, unfinished_specs

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobSpec",
    "JobQueue",
    "CircuitBreaker",
    "CharacterizationService",
    "execute_job",
    "unfinished_specs",
]
