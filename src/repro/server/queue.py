"""Bounded, weighted-fair, priority job queue.

The scheduling half of admission control (the policy half — quotas,
coalescing, draining — lives in :class:`repro.server.service.
CharacterizationService`).  Three properties, composed:

* **Bounded** — ``push`` on a full queue raises
  :class:`repro.resilience.errors.QueueSaturatedError` carrying a
  retry-after estimate instead of buffering without limit; admitted
  work is never evicted (``push(force=True)`` re-queues an
  already-admitted job past the bound, e.g. after a worker crash).
* **Weighted-fair across tenants** — dequeue runs smooth weighted
  round-robin over the tenants that currently have work: each pop adds
  every active tenant's weight to its running credit, picks the
  largest credit, and charges the pick the total active weight.  A
  tenant with weight 3 gets 3 of every 4 slots against a weight-1
  tenant under saturation, yet the weight-1 tenant is never starved —
  its credit grows until it must win.
* **Priority within a tenant** — each tenant's backlog is a heap
  ordered by ``(-priority, admission sequence)``: urgent first, FIFO
  among equals.

Thread-safe; ``pop`` blocks on a condition variable (with timeout) so
idle workers cost nothing.
"""

from __future__ import annotations

import heapq
import random
import threading
from typing import Any

from .. import obs
from ..resilience import faults
from ..resilience.errors import QueueSaturatedError
from .jobs import Job

__all__ = ["JobQueue"]


class JobQueue:
    """Bounded priority queue with smooth weighted-round-robin tenants.

    ``weights`` maps tenant name to a positive integer share; unknown
    tenants get ``default_weight``.  ``retry_after_s`` on the
    saturation error is ``depth / throughput`` using the caller-fed
    service rate (:meth:`note_service_rate`), clamped to a sane floor
    and jittered ±25% so a burst of shed clients doesn't resubmit in
    lockstep and re-saturate the queue on the same tick (``rng`` is
    injectable for deterministic tests).
    """

    def __init__(
        self,
        capacity: int = 64,
        weights: dict[str, int] | None = None,
        default_weight: int = 1,
        rng: random.Random | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.weights = dict(weights or {})
        self.default_weight = max(1, int(default_weight))
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        #: tenant -> heap of ``(-priority, seq, job)``.
        self._backlogs: dict[str, list[tuple[int, int, Job]]] = {}
        #: tenant -> SWRR running credit.
        self._credit: dict[str, int] = {}
        self._seq = 0
        self._size = 0
        self._closed = False
        #: EWMA of seconds of service per job (for retry-after).
        self._service_s = 1.0
        self._rng = rng or random.Random()

    # -- sizing ---------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return self._size

    def depth(self) -> int:
        return len(self)

    def note_service_rate(self, seconds_per_job: float) -> None:
        """Feed one completed-job duration into the retry-after EWMA."""
        with self._lock:
            self._service_s = 0.8 * self._service_s + 0.2 * max(
                1e-3, seconds_per_job
            )

    def retry_after_s(self) -> float:
        """How long a shed client should wait before resubmitting."""
        with self._lock:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> float:
        # ±25% jitter decorrelates shed clients: without it every
        # client told "retry in 3.2 s" comes back in the same instant.
        jitter = self._rng.uniform(0.75, 1.25)
        return max(0.05, self._size * self._service_s * jitter)

    # -- producer side --------------------------------------------------
    def push(self, job: Job, force: bool = False) -> None:
        """Enqueue one admitted job.

        ``force`` bypasses the capacity bound for jobs the service
        already accepted (crash re-queues must never be shed — the
        client was told the job was admitted).  The ``server.queue_full``
        fault site injects artificial saturation for chaos tests.
        """
        with self._lock:
            if not force and (
                self._size >= self.capacity
                or faults.should_fire("server.queue_full")
            ):
                obs.count("server.queue.full")
                raise QueueSaturatedError(
                    f"job queue is full ({self._size}/{self.capacity} "
                    f"pending); retry later",
                    site="server.queue_full",
                    retry_after_s=self._retry_after_locked(),
                )
            tenant = job.spec.tenant
            backlog = self._backlogs.setdefault(tenant, [])
            self._credit.setdefault(tenant, 0)
            heapq.heappush(backlog, (-job.spec.priority, self._seq, job))
            self._seq += 1
            self._size += 1
            obs.gauge("server.queue.depth", self._size)
            self._not_empty.notify()

    # -- consumer side --------------------------------------------------
    def _pick_tenant(self) -> str:
        """One smooth-WRR step over tenants with pending work."""
        active = [t for t, backlog in self._backlogs.items() if backlog]
        if len(active) == 1:
            return active[0]
        total = 0
        for tenant in active:
            weight = self.weights.get(tenant, self.default_weight)
            self._credit[tenant] = self._credit.get(tenant, 0) + weight
            total += weight
        pick = max(active, key=lambda t: (self._credit[t], t))
        self._credit[pick] -= total
        return pick

    def pop(self, timeout: float | None = None) -> Job | None:
        """Next job by fairness + priority; ``None`` on timeout/close."""
        with self._not_empty:
            while self._size == 0:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            tenant = self._pick_tenant()
            _, _, job = heapq.heappop(self._backlogs[tenant])
            self._size -= 1
            obs.gauge("server.queue.depth", self._size)
            return job

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Wake every blocked ``pop`` (they return ``None`` when empty)."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def snapshot(self) -> dict[str, Any]:
        """Depth per tenant (for health endpoints)."""
        with self._lock:
            return {
                "depth": self._size,
                "capacity": self.capacity,
                "tenants": {
                    tenant: len(backlog)
                    for tenant, backlog in self._backlogs.items()
                    if backlog
                },
            }
