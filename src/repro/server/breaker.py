"""Circuit breaker around the service's worker pool.

Worker crashes (subprocess death, watchdog kills, injected chaos) are
retried per job — but when *every* job starts crashing the pool, the
failure is systemic (a poisoned corner, an OOM'ing host) and retrying
each job three times only multiplies the damage.  The breaker watches
consecutive worker failures across jobs and, past a threshold, stops
dispatch entirely for a cooldown; one half-open probe job then decides
whether the pool has recovered.

The breaker gates **dequeue, not admission**: while OPEN, jobs keep
queuing (up to the queue's own bound, whose shedding stays in effect),
so a transient pool outage delays work instead of rejecting it — the
queue is exactly the buffer that makes that graceful.

States and transitions::

    CLOSED --(threshold consecutive failures)--> OPEN
    OPEN   --(cooldown elapsed)----------------> HALF_OPEN
    HALF_OPEN --(probe succeeds)---------------> CLOSED
    HALF_OPEN --(probe fails)------------------> OPEN (cooldown restarts)

Counters: ``server.breaker.trip`` / ``.probe`` / ``.close``; gauge
``server.breaker.state`` (0 closed, 1 half-open, 2 open).
"""

from __future__ import annotations

import threading
import time

from .. import obs

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe."""

    def __init__(self, threshold: int = 3, cooldown_s: float = 5.0):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _set_state(self, state: str) -> None:
        self._state = state
        obs.gauge("server.breaker.state", _STATE_GAUGE[state])

    def allow(self) -> bool:
        """May a worker dispatch the next job right now?

        In OPEN, flips to HALF_OPEN once the cooldown elapses and
        admits exactly one probe; every other caller waits.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if time.monotonic() - self._opened_at < self.cooldown_s:
                    return False
                self._set_state(HALF_OPEN)
                self._probing = False
            # HALF_OPEN: exactly one in-flight probe.
            if self._probing:
                return False
            self._probing = True
            obs.count("server.breaker.probe")
            return True

    def record_success(self) -> None:
        """A dispatched job ran on a healthy worker (its own outcome —
        pass, fail, deadline — is irrelevant to pool health)."""
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._set_state(CLOSED)
                obs.count("server.breaker.close")
            self._probing = False

    def record_failure(self) -> None:
        """A dispatched job lost its worker (crash/hang/OOM kill)."""
        with self._lock:
            self._failures += 1
            tripped = (
                self._state == HALF_OPEN or self._failures >= self.threshold
            )
            if tripped and self._state != OPEN:
                self._set_state(OPEN)
                self._opened_at = time.monotonic()
                obs.count("server.breaker.trip")
            elif self._state == OPEN:
                self._opened_at = time.monotonic()
            self._probing = False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
            }
