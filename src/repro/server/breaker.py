"""Circuit breaker over a repeatedly-failing dependency.

Grown for the service's worker pool, reused verbatim by the remote
artifact-cache tier (:class:`repro.cache.remote.RemoteCacheClient`):
worker crashes (subprocess death, watchdog kills, injected chaos) are
retried per job — but when *every* job starts crashing the pool, the
failure is systemic (a poisoned corner, an OOM'ing host, a partitioned
cache server) and retrying each operation only multiplies the damage.
The breaker watches consecutive failures across operations and, past a
threshold, stops dispatch entirely for a cooldown; one half-open probe
then decides whether the dependency has recovered.

In the service the breaker gates **dequeue, not admission**: while
OPEN, jobs keep queuing (up to the queue's own bound, whose shedding
stays in effect), so a transient pool outage delays work instead of
rejecting it.  In the cache tier it gates **every remote operation**:
while OPEN the cache runs local-only (degraded mode) and the next
post-cooldown lookup doubles as the recovery probe.

States and transitions::

    CLOSED --(threshold consecutive failures)--> OPEN
    OPEN   --(cooldown elapsed)----------------> HALF_OPEN
    HALF_OPEN --(probe succeeds)---------------> CLOSED
    HALF_OPEN --(probe fails)------------------> OPEN (cooldown restarts)

Counters (under the breaker's ``name``, default ``server.breaker``):
``<name>.trip`` / ``.probe`` / ``.close``; gauge ``<name>.state``
(0 closed, 1 half-open, 2 open).

``clock`` is injectable (default :func:`time.monotonic`) so tests can
drive the cooldown deterministically; the breaker assumes the clock
never goes backwards — exactly the guarantee ``time.monotonic`` makes
and wall clocks do not (see ``tests/test_breaker.py``).
"""

from __future__ import annotations

import threading
import time

from .. import obs

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 5.0,
        *,
        name: str = "server.breaker",
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _set_state(self, state: str) -> None:
        self._state = state
        obs.gauge(f"{self.name}.state", _STATE_GAUGE[state])

    def allow(self) -> bool:
        """May a worker dispatch the next job right now?

        In OPEN, flips to HALF_OPEN once the cooldown elapses and
        admits exactly one probe; every other caller waits.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.cooldown_s:
                    return False
                self._set_state(HALF_OPEN)
                self._probing = False
            # HALF_OPEN: exactly one in-flight probe.
            if self._probing:
                return False
            self._probing = True
            obs.count(f"{self.name}.probe")
            return True

    def record_success(self) -> None:
        """A dispatched job ran on a healthy worker (its own outcome —
        pass, fail, deadline — is irrelevant to pool health)."""
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._set_state(CLOSED)
                obs.count(f"{self.name}.close")
            self._probing = False

    def record_failure(self) -> None:
        """A dispatched job lost its worker (crash/hang/OOM kill)."""
        with self._lock:
            self._failures += 1
            tripped = (
                self._state == HALF_OPEN or self._failures >= self.threshold
            )
            if tripped and self._state != OPEN:
                self._set_state(OPEN)
                self._opened_at = self._clock()
                obs.count(f"{self.name}.trip")
            elif self._state == OPEN:
                self._opened_at = self._clock()
            self._probing = False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
            }
