"""The characterization service: admission, execution, recovery.

:class:`CharacterizationService` is the long-running core behind
``repro serve``.  It ties the existing resilience substrate into a
request-serving shape:

* **Admission control** — :meth:`submit` either returns an admitted
  :class:`repro.server.jobs.Job` or raises a subclass of
  :class:`repro.resilience.errors.AdmissionError` carrying a
  retry-after hint: the queue is full (load shedding), the tenant is
  over quota, or the service is draining.  Admitted work is never
  silently dropped — every admitted job reaches exactly one terminal
  state, even across a crash (see the journal notes below).
* **Coalescing** — jobs are content-addressed by
  :meth:`JobSpec.job_key`.  A submission whose key is already in
  flight becomes a *follower* of the running primary (one computation,
  N answers); one whose key is already in the completed-results store
  returns finished immediately.
* **Weighted-fair scheduling** — the bounded
  :class:`repro.server.queue.JobQueue` picks the next job by smooth
  weighted round-robin across tenants, priority-ordered within each.
* **Supervised execution** — worker threads run job bodies either
  in-process (sharing the service's
  :class:`repro.core.artifacts.ArtifactCache`) or in supervised
  subprocesses (``isolate="process"`` via
  :func:`repro.resilience.isolation.run_isolated`).  A worker crash
  re-queues the job (bounded attempts) and feeds the
  :class:`repro.server.breaker.CircuitBreaker`, which pauses *dequeue*
  — never admission — while the pool looks systemically unhealthy.
* **Deadlines** — a job's ``deadline_s`` starts at admission and is
  propagated into the stage runner
  (:class:`repro.core.stages.FlowRunner` ``deadline_at``), so a job
  that waited too long in the queue fails fast instead of starting
  synthesis it cannot finish.
* **Crash safety / graceful drain** — with a
  :class:`repro.resilience.journal.RunJournal`, admission of a primary
  commits a ``job_submit`` record and its terminal state commits
  ``job_done`` (write-ahead, fsync'd).  :func:`unfinished_specs`
  replays a journal into the set of submitted-but-unfinished specs, so
  ``repro serve --resume`` finishes exactly the jobs a ``SIGTERM``/
  ``kill -9`` interrupted; completed results reload byte-identically
  from the results directory.

Counters (all under ``server.``, persisted by the run ledger):
``submitted``, ``admitted``, ``shed`` (+ ``.queue_full`` / ``.quota``
/ ``.draining`` / ``.injected``), ``coalesced``, ``cached``,
``completed``, ``failed``, ``retried``, ``worker_crash``; gauges
``queue.depth``, ``inflight``, ``breaker.state``; histogram
``job.wall_s``.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Any

from .. import obs
from ..resilience import faults
from ..resilience.errors import (
    InjectedFaultError,
    QueueSaturatedError,
    QuotaExceededError,
    ServiceDrainingError,
    StageTimeoutError,
    WorkerCrashError,
)
from .breaker import CircuitBreaker
from .jobs import Job, JobSpec
from .queue import JobQueue
from .runners import execute_job, job_task

__all__ = ["CharacterizationService", "unfinished_specs"]


def _result_path(results_dir: Path, key: str) -> Path:
    # ``server.job.<hex>`` -> ``<hex>.json``: filesystem-safe and
    # reversible.
    return results_dir / (key.rsplit(".", 1)[-1] + ".json")


def _result_bytes(result: Any) -> bytes:
    """Canonical on-disk form; byte-stable across identical reruns."""
    return (json.dumps(result, indent=2, sort_keys=True) + "\n").encode()


def unfinished_specs(records: list[dict]) -> list[JobSpec]:
    """Submitted-but-unfinished job specs from journal records.

    A key whose *latest* record is a ``job_submit`` (no ``job_done``
    after it) was in flight when the writer died; one re-submission per
    such key recomputes it (followers of the lost primary re-coalesce
    through the results store).  Last-event ordering — not submit/done
    counting — keeps the rule correct across resumed sessions, where a
    recovery run appends a *second* submit/done pair for the same key.
    Order of first submission is preserved.
    """
    open_submit: dict[str, bool] = {}
    specs: dict[str, dict] = {}
    order: list[str] = []
    for record in records:
        kind = record.get("kind")
        key = record.get("key")
        if not key:
            continue
        if kind == "job_submit" and isinstance(record.get("spec"), dict):
            if key not in specs:
                order.append(key)
            specs[key] = record["spec"]
            open_submit[key] = True
        elif kind == "job_done":
            open_submit[key] = False
    return [JobSpec.from_dict(specs[key]) for key in order if open_submit.get(key)]


class CharacterizationService:
    """Admission-controlled characterization job service.

    Pure-Python, embeddable (the load harness drives it in-process;
    ``repro serve`` wraps it in HTTP).  ``start()`` spins up the worker
    threads; ``drain()``/``shutdown()`` stop admission and finish (or
    abandon to the journal) in-flight work.
    """

    def __init__(
        self,
        *,
        capacity: int = 64,
        workers: int = 2,
        isolate: str = "thread",
        quotas: dict[str, int] | None = None,
        default_quota: int | None = None,
        weights: dict[str, int] | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 2.0,
        max_attempts: int = 3,
        default_deadline_s: float | None = None,
        cache=None,
        results_dir: str | os.PathLike | None = None,
        journal=None,
        task_timeout_s: float | None = None,
        max_rss_mb: float | None = None,
    ):
        if isolate not in ("thread", "process"):
            raise ValueError(f"isolate must be 'thread' or 'process', got {isolate!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        from ..core.artifacts import ArtifactCache

        self.isolate = isolate
        self.workers = workers
        self.max_attempts = max(1, int(max_attempts))
        self.default_deadline_s = default_deadline_s
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self.cache = cache if cache is not None else ArtifactCache()
        self.results_dir = Path(results_dir) if results_dir is not None else None
        if self.results_dir is not None:
            self.results_dir.mkdir(parents=True, exist_ok=True)
        self.journal = journal
        self.task_timeout_s = task_timeout_s
        self.max_rss_mb = max_rss_mb

        self._queue = JobQueue(capacity=capacity, weights=weights)
        self._breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown_s=breaker_cooldown_s
        )
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        #: key -> id of the in-flight primary computing it.
        self._primaries: dict[str, str] = {}
        #: key -> follower job ids waiting on the primary.
        self._followers: dict[str, list[str]] = {}
        #: key -> completed result (also persisted under results_dir).
        self._results: dict[str, Any] = {}
        self._active_per_tenant: dict[str, int] = {}
        self._inflight = 0
        self._next_id = 0
        self._draining = False
        self._stop = False
        self._threads: list[threading.Thread] = []
        #: Authoritative local counter mirror (``/metrics`` must work
        #: even in a context with no tracer installed).
        self.counters: dict[str, int] = {}
        # Worker threads and HTTP handler threads do not inherit the
        # creator's context-local tracer; every entry point re-enters a
        # copy of the creation context so spans/counters keep landing
        # in the surrounding trace.
        self._obs_context = contextvars.copy_context()

        if self.results_dir is not None:
            self._load_results()

    # -- observability helpers ------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        obs.count(name, n)
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def _load_results(self) -> None:
        """Reload persisted results (the resume fast-path)."""
        for path in sorted(self.results_dir.glob("*.json")):
            try:
                value = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # torn write from a crash mid-persist
            self._results["server.job." + path.stem] = value
        if self._results:
            self._count("server.results_loaded", len(self._results))

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "CharacterizationService":
        """Spin up the worker threads (idempotent)."""
        with self._lock:
            if self._threads:
                return self
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._thread_main,
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def _thread_main(self) -> None:
        self._obs_context.copy().run(self._worker_loop)

    def begin_drain(self) -> None:
        """Stop admitting new jobs (non-blocking, idempotent)."""
        with self._lock:
            self._draining = True

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting; wait for queued + in-flight work to finish.

        Returns ``True`` when the service went fully idle within
        ``timeout`` — the clean-drain exit.  On ``False`` the remaining
        work is still journaled (``job_submit`` without ``job_done``),
        so a later ``--resume`` completes it.
        """
        self.begin_drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self.idle:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)

    def shutdown(self, timeout: float | None = None) -> bool:
        """Drain, then stop and join the worker threads."""
        drained = self.drain(timeout)
        with self._lock:
            self._stop = True
        self._queue.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        return drained

    @property
    def idle(self) -> bool:
        with self._lock:
            return self._inflight == 0 and self._queue.depth() == 0

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- submission -----------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Admit one job (or raise an :class:`AdmissionError`)."""
        return self._obs_context.copy().run(self._submit, spec)

    def _submit(self, spec: JobSpec) -> Job:
        self._count("server.submitted")
        if faults.should_fire("server.submit"):
            self._count("server.shed")
            self._count("server.shed.injected")
            raise InjectedFaultError(
                "injected submission failure", site="server.submit"
            )
        if spec.deadline_s is None and self.default_deadline_s is not None:
            spec = JobSpec(
                kind=spec.kind,
                params=spec.params,
                tenant=spec.tenant,
                priority=spec.priority,
                deadline_s=self.default_deadline_s,
            )
        with self._lock:
            if self._draining or self._stop:
                self._count("server.shed")
                self._count("server.shed.draining")
                raise ServiceDrainingError(
                    "service is draining; not admitting new jobs",
                    site="server.submit",
                    retry_after_s=None,
                )
            job = Job(self._alloc_id(), spec)
            key = job.key

            # Fast path: the answer is already known.
            if key in self._results:
                self._jobs[job.id] = job
                job.finish(result=self._results[key])
                self._count("server.admitted")
                self._count("server.cached")
                self._count("server.completed")
                return job

            tenant = spec.tenant
            quota = self.quotas.get(tenant, self.default_quota)
            if (
                quota is not None
                and self._active_per_tenant.get(tenant, 0) >= quota
            ):
                self._count("server.shed")
                self._count("server.shed.quota")
                raise QuotaExceededError(
                    f"tenant {tenant!r} is at its quota of {quota} "
                    f"outstanding jobs",
                    site="server.submit",
                    retry_after_s=self._queue.retry_after_s(),
                )

            # Coalesce onto an in-flight primary.
            primary_id = self._primaries.get(key)
            if primary_id is not None:
                job.coalesced_into = primary_id
                self._jobs[job.id] = job
                self._followers.setdefault(key, []).append(job.id)
                self._active_per_tenant[tenant] = (
                    self._active_per_tenant.get(tenant, 0) + 1
                )
                self._count("server.admitted")
                self._count("server.coalesced")
                return job

            # Fresh primary: take a queue slot (may shed).
            try:
                self._queue.push(job)
            except QueueSaturatedError:
                self._count("server.shed")
                self._count("server.shed.queue_full")
                raise
            self._jobs[job.id] = job
            self._primaries[key] = job.id
            self._active_per_tenant[tenant] = (
                self._active_per_tenant.get(tenant, 0) + 1
            )
            if self.journal is not None:
                self.journal.record(
                    "job_submit", id=job.id, key=key, spec=spec.to_dict()
                )
            self._count("server.admitted")
            return job

    def _alloc_id(self) -> str:
        self._next_id += 1
        return f"job-{self._next_id:06d}"

    # -- queries --------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def result(self, job_id: str) -> Any:
        job = self.get(job_id)
        return None if job is None or job.state != "done" else job.result

    def progress(self, job_id: str) -> dict[str, Any] | None:
        """Live progress view for one job (``GET /jobs/<id>/progress``).

        The job's own status (state, attempt count, timestamps) plus a
        snapshot of the service-wide context a client needs to judge
        *why* the job is where it is: queue depth (is it waiting behind
        a backlog?), breaker state (is dequeue paused?), in-flight
        count, and the ``server.*`` / stage counters at this instant.
        Polling the endpoint twice and diffing the counters shows what
        the service did in between.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            return {
                "job": job.to_dict(),
                "counters": dict(sorted(self.counters.items())),
                "queue": self._queue.snapshot(),
                "breaker": self._breaker.snapshot(),
                "inflight": self._inflight,
            }

    def health(self) -> dict[str, Any]:
        with self._lock:
            return {
                "status": "draining" if self._draining else "ok",
                "ready": not self._draining and not self._stop,
                "inflight": self._inflight,
                "queue": self._queue.snapshot(),
                "breaker": self._breaker.snapshot(),
                "jobs": len(self._jobs),
                "results": len(self._results),
                "workers": self.workers,
                "isolate": self.isolate,
            }

    def metrics(self) -> dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "queue": self._queue.snapshot(),
                "breaker": self._breaker.snapshot(),
                "inflight": self._inflight,
            }

    # -- execution ------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                if self._stop:
                    return
            # Pop and claim under one service-lock hold: ``idle`` (also
            # read under the service lock) can therefore never observe
            # the instant where a job has left the queue but is not yet
            # counted in flight — the window that would let ``drain``
            # declare victory with work still pending.
            with self._lock:
                job = self._queue.pop(timeout=0)
                if job is not None:
                    self._inflight += 1
                    obs.gauge("server.inflight", self._inflight)
            if job is None:
                time.sleep(0.02)
                continue
            remaining = job.remaining_s()
            if remaining is not None and remaining <= 0:
                # Expired while queued: fail fast, never start work.
                self._count("server.deadline_expired")
                self._finish(
                    job,
                    error=StageTimeoutError(
                        f"job {job.id} deadline expired after "
                        f"{job.spec.deadline_s:g}s in the queue",
                        site="server.deadline",
                    ),
                )
                self._release_inflight()
                continue
            if not self._breaker.allow():
                # Pool unhealthy: keep the job (admitted work is never
                # shed), check again shortly.
                self._queue.push(job, force=True)
                self._release_inflight()
                time.sleep(0.05)
                continue
            self._execute(job, remaining)

    def _execute(self, job: Job, budget_s: float | None) -> None:
        # The worker loop already claimed the in-flight slot at pop.
        job.start()
        t0 = time.monotonic()
        try:
            with obs.span(
                "server.job", kind=job.spec.kind, tenant=job.spec.tenant
            ):
                if faults.should_fire("server.worker_crash"):
                    raise WorkerCrashError(
                        f"injected worker crash on {job.id}",
                        site="server.worker_crash",
                    )
                if self.isolate == "process":
                    cache_dir = self.cache.cache_dir
                    result = run_isolated_job(
                        job, budget_s, cache_dir, self.task_timeout_s,
                        self.max_rss_mb,
                    )
                else:
                    result = execute_job(
                        job.spec.kind,
                        job.spec.params,
                        cache=self.cache,
                        budget_s=budget_s,
                    )
        except WorkerCrashError as exc:
            self._count("server.worker_crash")
            self._breaker.record_failure()
            if job.attempts < self.max_attempts:
                self._count("server.retried")
                job.requeued()
                self._queue.push(job, force=True)
            else:
                self._finish(job, error=exc)
            # Inflight is released only after the job is back in the
            # queue (or terminal), so ``drain`` never sees a spuriously
            # idle instant with work still pending.
            self._release_inflight()
            return
        except Exception as exc:
            # The worker itself was healthy; the job failed on its own
            # terms (bad params, deadline, guard violation, ...).
            self._breaker.record_success()
            self._finish(job, error=exc)
            self._release_inflight()
            return
        self._breaker.record_success()
        elapsed = time.monotonic() - t0
        self._queue.note_service_rate(elapsed)
        obs.observe("server.job.wall_s", elapsed)
        self._finish(job, result=result)
        self._release_inflight()

    def _release_inflight(self) -> None:
        with self._lock:
            self._inflight -= 1
            obs.gauge("server.inflight", self._inflight)

    def _finish(self, job: Job, *, result: Any = None, error=None) -> None:
        """Terminal transition for a primary and all its followers."""
        with self._lock:
            key = job.key
            followers = self._followers.pop(key, [])
            if self._primaries.get(key) == job.id:
                del self._primaries[key]
            if error is None:
                self._results[key] = result
                digest = self._persist_result(key, result)
            else:
                digest = None
            if self.journal is not None and job.coalesced_into is None:
                # Followers are not journaled at submit, so they carry
                # no completion record either; one (submit, done) pair
                # per primary keeps resume replay exact.  A journal
                # write failure (disk full, closed mid-shutdown) must
                # not discard a computed result — the job still reaches
                # its terminal state; the un-done submit record simply
                # re-runs on resume, which is safe (content-addressed).
                try:
                    self.journal.record(
                        "job_done",
                        id=job.id,
                        key=key,
                        status="done" if error is None else "failed",
                        digest=digest,
                        error=None if error is None else str(error),
                    )
                except Exception:
                    self._count("server.journal_error")
            job.finish(result=result, error=error)
            self._count("server.completed" if error is None else "server.failed")
            self._retire_tenant_slot(job.spec.tenant)
            for follower_id in followers:
                follower = self._jobs[follower_id]
                follower.finish(result=result, error=error)
                self._count(
                    "server.completed" if error is None else "server.failed"
                )
                self._retire_tenant_slot(follower.spec.tenant)

    def _retire_tenant_slot(self, tenant: str) -> None:
        active = self._active_per_tenant.get(tenant, 0) - 1
        if active > 0:
            self._active_per_tenant[tenant] = active
        else:
            self._active_per_tenant.pop(tenant, None)

    def _persist_result(self, key: str, result: Any) -> str | None:
        """Atomically write the canonical result file; returns digest."""
        data = _result_bytes(result)
        digest = hashlib.sha256(data).hexdigest()[:32]
        if self.results_dir is None:
            return digest
        path = _result_path(self.results_dir, key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            # A failed persist degrades to memory-only; the in-memory
            # result still answers this session's followers.
            with contextlib.suppress(OSError):
                tmp.unlink()
        return digest


def run_isolated_job(job, budget_s, cache_dir, task_timeout_s, max_rss_mb):
    """Dispatch one job body to a supervised subprocess."""
    from ..resilience.isolation import run_isolated

    payload = (
        job.spec.kind,
        dict(job.spec.params),
        budget_s,
        str(cache_dir) if cache_dir is not None else None,
    )
    return run_isolated(
        job_task,
        payload,
        label=job.id,
        task_timeout_s=task_timeout_s,
        max_rss_mb=max_rss_mb,
    )
