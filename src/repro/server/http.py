"""Thin JSON/HTTP front end for the characterization service.

Standard-library only (:mod:`http.server`): the repo's no-new-deps
rule applies to the service tier too.  The HTTP layer adds *no*
policy — every admission decision is the service's; this module just
maps it onto status codes:

====================  ======================================================
``POST /jobs``        submit a :class:`repro.server.jobs.JobSpec` (JSON
                      body); ``202`` + job status on admission, ``429`` +
                      ``Retry-After`` on shedding (queue full / quota),
                      ``503`` + ``Retry-After`` while draining, ``400`` on
                      a malformed spec
``GET /jobs/<id>``    job status (``to_dict``), ``404`` unknown
``GET /jobs/<id>/progress``  live progress: job status plus the queue /
                      breaker / counter snapshot explaining it
``GET /jobs/<id>/result``  the result JSON once done (``409`` if not yet
                      terminal, ``500``-style body if the job failed)
``GET /healthz``      liveness — always ``200`` while the process serves
``GET /readyz``       readiness — ``200`` accepting, ``503`` draining
``GET /metrics``      ``server.*`` counter snapshot + queue/breaker state
``POST /drain``       begin graceful drain (idempotent)
====================  ======================================================

Threading: ``ThreadingHTTPServer`` gives one handler thread per
connection; the service wraps its own entry points in the creator's
observability context, so handler threads need no special setup.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..resilience.errors import (
    AdmissionError,
    QueueSaturatedError,
    QuotaExceededError,
    ServiceDrainingError,
)
from .jobs import JobSpec
from .service import CharacterizationService

__all__ = ["ServiceHTTPServer", "make_server"]


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # The service instance is attached to the server object.
    @property
    def service(self) -> CharacterizationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------
    def _send(
        self,
        code: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any] | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > 1 << 20:
            return None
        try:
            return json.loads(self.rfile.read(length))
        except (ValueError, OSError):
            return None

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parts = self.path.rstrip("/").split("/")
        if self.path in ("/healthz", "/healthz/"):
            self._send(200, self.service.health())
        elif self.path in ("/readyz", "/readyz/"):
            health = self.service.health()
            self._send(200 if health["ready"] else 503, health)
        elif self.path in ("/metrics", "/metrics/"):
            self._send(200, self.service.metrics())
        elif len(parts) == 3 and parts[1] == "jobs":
            job = self.service.get(parts[2])
            if job is None:
                self._send(404, {"error": f"no such job {parts[2]!r}"})
            else:
                self._send(200, job.to_dict())
        elif len(parts) == 4 and parts[1] == "jobs" and parts[3] == "progress":
            progress = self.service.progress(parts[2])
            if progress is None:
                self._send(404, {"error": f"no such job {parts[2]!r}"})
            else:
                self._send(200, progress)
        elif len(parts) == 4 and parts[1] == "jobs" and parts[3] == "result":
            job = self.service.get(parts[2])
            if job is None:
                self._send(404, {"error": f"no such job {parts[2]!r}"})
            elif job.state == "done":
                self._send(200, {"id": job.id, "result": job.result})
            elif job.state == "failed":
                self._send(
                    200,
                    {"id": job.id, "error": job.error, "error_kind": job.error_kind},
                )
            else:
                self._send(
                    409, {"id": job.id, "state": job.state, "error": "not finished"}
                )
        else:
            self._send(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path.rstrip("/") == "/drain":
            # Flip the flag only; the caller polls /readyz for progress.
            self.service.begin_drain()
            self._send(202, {"status": "draining"})
            return
        if self.path.rstrip("/") != "/jobs":
            self._send(404, {"error": f"no route {self.path!r}"})
            return
        payload = self._read_json()
        if payload is None:
            self._send(400, {"error": "body must be a JSON job spec"})
            return
        try:
            spec = JobSpec.from_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            self._send(400, {"error": f"bad job spec: {exc}"})
            return
        try:
            job = self.service.submit(spec)
        except ServiceDrainingError as exc:
            self._send(503, {"error": str(exc)}, {"Retry-After": "1"})
        except (QueueSaturatedError, QuotaExceededError) as exc:
            retry_after = exc.retry_after_s or 0.1
            self._send(
                429,
                {"error": str(exc), "retry_after_s": retry_after},
                {"Retry-After": f"{max(1, round(retry_after))}"},
            )
        except AdmissionError as exc:
            self._send(429, {"error": str(exc)}, {"Retry-After": "1"})
        else:
            self._send(202, job.to_dict())


class ServiceHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying the service instance."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: CharacterizationService, verbose=False):
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose


def make_server(
    host: str, port: int, service: CharacterizationService, verbose: bool = False
) -> ServiceHTTPServer:
    return ServiceHTTPServer((host, port), service, verbose=verbose)
