"""Job bodies: what each :data:`repro.server.jobs.JOB_KINDS` computes.

One entry point, :func:`execute_job`, shared by both execution tiers:

* thread tier — the service worker thread calls it directly, sharing
  the service's :class:`repro.core.artifacts.ArtifactCache` object;
* process tier — :func:`job_task` is the picklable wrapper the
  supervised subprocess runs (``run_isolated``); it rebuilds a cache on
  the same *directory*, so the disk tier is still shared.

Every result is plain JSON data (dicts/lists/scalars only): it must
serialize to the per-key result file byte-identically across runs,
which is what makes the drain/resume contract checkable with ``cmp``.

The per-job deadline arrives as ``budget_s`` (seconds remaining at
dispatch) and is spent where the work happens: ``evaluate`` forwards
it to :func:`repro.core.flow.run_scenarios` (stage-level checks),
``characterize``/``probe`` check it at their few boundaries.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from ..resilience.errors import StageTimeoutError

__all__ = ["execute_job", "job_task"]


def _deadline_at(budget_s: float | None) -> float | None:
    return None if budget_s is None else time.monotonic() + budget_s


def _check_deadline(deadline_at: float | None, what: str) -> None:
    if deadline_at is not None and time.monotonic() >= deadline_at:
        raise StageTimeoutError(
            f"job deadline exhausted before {what}", site="server.deadline"
        )


def _run_probe(params: Mapping[str, Any], deadline_at: float | None) -> dict:
    """Deterministic test job: sleep, then echo — or fail on command."""
    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s > 0:
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if sleep_s > remaining:
                time.sleep(max(0.0, remaining))
                raise StageTimeoutError(
                    f"probe sleep of {sleep_s:g}s exceeds the job deadline",
                    site="server.deadline",
                )
        time.sleep(sleep_s)
    if params.get("fail"):
        raise ValueError(str(params.get("fail")))
    return {"kind": "probe", "echo": params.get("echo")}


def _run_characterize(params: Mapping[str, Any], cache, deadline_at) -> dict:
    """Characterize the default technology at a ``(T, vdd)`` corner."""
    from ..core.context import DesignContext

    temperature = float(params.get("temperature", 10.0))
    vdd = params.get("vdd")
    _check_deadline(deadline_at, "characterization")
    context = DesignContext.default(
        temperature,
        cache=cache,
        vdd=None if vdd is None else float(vdd),
    )
    library = context.library
    return {
        "kind": "characterize",
        "temperature_k": library.temperature,
        "vdd": vdd if vdd is None else float(vdd),
        "cells": len(library),
        "fingerprint": library.fingerprint(),
        "degraded": sorted(library.degraded_arcs()),
    }


def _run_evaluate(params: Mapping[str, Any], cache, deadline_at) -> dict:
    """All (or chosen) scenarios on one EPFL circuit at a corner."""
    from ..benchgen import EPFL_SUITE, build_circuit
    from ..core.context import DesignContext
    from ..core.flow import SCENARIOS, run_scenarios

    circuit = params.get("circuit")
    if circuit not in EPFL_SUITE:
        raise ValueError(
            f"unknown circuit {circuit!r}; choose from {sorted(EPFL_SUITE)}"
        )
    scenarios = params.get("scenarios") or list(SCENARIOS)
    unknown = [s for s in scenarios if s not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenarios {unknown}; choose from {sorted(SCENARIOS)}")
    temperature = float(params.get("temperature", 10.0))
    vdd = params.get("vdd")
    preset = str(params.get("preset", "default"))
    vectors = int(params.get("vectors", 512))

    aig = build_circuit(circuit, preset)
    _check_deadline(deadline_at, "characterization")
    context = DesignContext.default(
        temperature,
        cache=cache,
        vdd=None if vdd is None else float(vdd),
    )
    _check_deadline(deadline_at, "synthesis")
    results = run_scenarios(
        aig,
        context=context,
        scenarios=list(scenarios),
        vectors=vectors,
        deadline_s=(
            None if deadline_at is None else max(0.0, deadline_at - time.monotonic())
        ),
    )
    return {
        "kind": "evaluate",
        "circuit": circuit,
        "preset": preset,
        "temperature_k": temperature,
        "vdd": vdd if vdd is None else float(vdd),
        "scenarios": {name: result.to_dict() for name, result in results.items()},
    }


def execute_job(
    kind: str,
    params: Mapping[str, Any],
    *,
    cache=None,
    budget_s: float | None = None,
) -> dict:
    """Run one job body; returns its plain-JSON result."""
    deadline_at = _deadline_at(budget_s)
    if kind == "probe":
        return _run_probe(params, deadline_at)
    if cache is None:
        from ..core.artifacts import ArtifactCache

        cache = ArtifactCache()
    if kind == "characterize":
        return _run_characterize(params, cache, deadline_at)
    if kind == "evaluate":
        return _run_evaluate(params, cache, deadline_at)
    raise ValueError(f"unknown job kind {kind!r}")


def job_task(payload: tuple) -> dict:
    """Subprocess entry point (``isolate="process"``): unpack, run.

    ``payload`` is ``(kind, params, budget_s, cache_dir)``; the worker
    opens its own cache on the shared directory so expensive artifacts
    (characterized corners, mapped netlists) persist across workers and
    restarts.
    """
    kind, params, budget_s, cache_dir = payload
    from ..core.artifacts import ArtifactCache

    cache = ArtifactCache(cache_dir=cache_dir)
    return execute_job(kind, params, cache=cache, budget_s=budget_s)
