"""The shared artifact-cache tiers (``repro.cache``).

:class:`repro.core.artifacts.ArtifactCache` composes three tiers —
memory LRU, local disk, and (this package) an optional **remote blob
server** shared by every characterization host — all speaking one
sha256-framed entry format (:mod:`repro.cache.framing`), each
verifying independently so corruption anywhere degrades to a cache
miss, never to a wrong artifact.

* :mod:`repro.cache.framing` — the self-verifying entry frame;
* :mod:`repro.cache.blobserver` — the ``repro cache-serve`` HTTP blob
  store (verify-on-upload, verify-on-read, LRU-bounded, scrubbable);
* :mod:`repro.cache.remote` — the never-fail client: timeouts,
  bounded full-jitter retries, a circuit breaker into local-only
  degraded mode, quarantine + refetch on corruption, write-behind
  upload on recovery;
* :mod:`repro.cache.scrub` — ``repro cache scrub`` integrity sweeps
  over the disk tier and/or a remote server.

Layering: below ``core`` (which wires the remote tier in behind
``REPRO_CACHE_REMOTE`` / ``--cache-remote``), above ``resilience``,
``obs``, and ``server.breaker``.  See ``docs/ROBUSTNESS.md`` ("Remote
cache tier") for the failure matrix.
"""

from .blobserver import BlobCacheServer, BlobStore, make_blob_server
from .framing import decode_entry, encode_entry, verify_frame
from .scrub import scrub_disk, scrub_remote

#: Lazy (PEP 562): ``remote`` reuses :class:`repro.server.breaker.
#: CircuitBreaker`, and eagerly importing the server stack here would
#: make ``core`` (which imports :mod:`repro.cache.framing`) depend on
#: everything above it.  ``from repro.cache import RemoteCacheClient``
#: still works; the cost moves to first use.
_LAZY = {"RemoteCacheClient": "remote", "RemoteCacheError": "remote"}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)


__all__ = [
    "BlobCacheServer",
    "BlobStore",
    "make_blob_server",
    "decode_entry",
    "encode_entry",
    "verify_frame",
    "RemoteCacheClient",
    "RemoteCacheError",
    "scrub_disk",
    "scrub_remote",
]
