"""Fault-tolerant client for the remote artifact-cache tier.

:class:`RemoteCacheClient` is the third tier behind
:class:`repro.core.artifacts.ArtifactCache` (memory → disk → remote).
Its one design rule is **never-fail**: no remote condition — a dead
server, a slow server, a partitioned network, a server returning
garbage — may ever make a characterization run slower than bounded,
wrong, or dead.  Every public method catches everything and degrades
to "cache miss" / "upload deferred"; the flow then simply computes
locally, exactly as if no remote tier were configured.

Hardening, layer by layer:

* **timeouts** — separate connect and read timeouts on every request;
  a hung server costs at most ``connect + read`` seconds, once,
  because…
* **circuit breaker** — a reused
  :class:`repro.server.breaker.CircuitBreaker` counts consecutive
  transport failures; past the threshold the client trips into
  *local-only degraded mode* (gauge ``cache.remote.degraded`` = 1) and
  every operation is skipped at the cost of one lock acquisition.
  After the cooldown the next operation doubles as the half-open
  probe; success closes the breaker (gauge back to 0) and flushes the
  write-behind queue;
* **bounded retries with full jitter** — transient transport errors
  retry up to ``max_retries`` times inside one operation, sleeping
  ``uniform(0, min(cap, base·2^attempt))`` so a thundering herd of
  workers never synchronizes on a recovering server;
* **integrity** — every fetched blob is verified against its sha256
  frame (:func:`repro.cache.framing.verify_frame`) *before* unpickling
  anywhere; a mismatch re-fetches exactly once (in-flight corruption
  heals itself).  A second bad copy quarantines the blob on the server
  (``POST /quarantine``) and counts as a breaker failure — a lying
  server is an unhealthy server — and the lookup degrades to a miss;
* **write-behind** — a put that cannot reach the server (or arrives
  while degraded) is stashed in a bounded latest-wins queue and
  uploaded when the breaker closes again, so a server outage costs
  warm-cache sharing only for its own duration.

Chaos sites ``cache.remote.timeout`` / ``cache.remote.corrupt`` /
``cache.remote.partition`` (:mod:`repro.resilience.faults`) inject
each failure class deterministically; ``benchmarks/cache_remote.py``
drives them plus a real ``kill -9`` of the server.

Counters (ledger-persisted via the ``cache.`` prefix):
``cache.remote.hit/miss/put/error/timeout/corrupt/refetch/
write_behind/writeback/degraded_skip``; gauge ``cache.remote.degraded``;
breaker counters under ``cache.remote.breaker.*``.
"""

from __future__ import annotations

import contextlib
import http.client
import random
import socket
import threading
import time
from collections import OrderedDict
from typing import Any
from urllib.parse import urlparse

from .. import obs
from ..resilience import faults
from ..resilience.errors import CacheCorruptionError, TransientError
from ..server.breaker import CircuitBreaker
from .framing import verify_frame

__all__ = ["RemoteCacheClient", "RemoteCacheError"]


class RemoteCacheError(TransientError):
    """A remote cache operation failed after its bounded retries.

    Internal to the client — the public methods translate it into a
    miss/deferred-upload; it never escapes to flow code."""


def _parse_url(url: str) -> tuple[str, int]:
    """``host:port`` or ``http://host:port[/]`` -> ``(host, port)``."""
    text = url.strip()
    if "//" not in text:
        text = "//" + text
    parsed = urlparse(text, scheme="http")
    if parsed.scheme != "http":
        raise ValueError(f"remote cache URL must be http://, got {url!r}")
    if not parsed.hostname or not parsed.port:
        raise ValueError(f"remote cache URL needs host and port, got {url!r}")
    return parsed.hostname, parsed.port


class RemoteCacheClient:
    """Never-fail HTTP client for one ``repro cache-serve`` endpoint."""

    def __init__(
        self,
        url: str,
        *,
        connect_timeout_s: float = 1.0,
        read_timeout_s: float = 5.0,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        max_pending_writes: int = 64,
        rng: random.Random | None = None,
        clock=time.monotonic,
    ):
        self.url = url
        self.host, self.port = _parse_url(url)
        self.connect_timeout_s = connect_timeout_s
        self.read_timeout_s = read_timeout_s
        self.max_retries = max(0, int(max_retries))
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold,
            cooldown_s=breaker_cooldown_s,
            name="cache.remote.breaker",
            clock=clock,
        )
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        #: key -> frame bytes awaiting upload (latest wins, bounded).
        self._pending: OrderedDict[str, bytes] = OrderedDict()
        self.max_pending_writes = max_pending_writes
        self.counters: dict[str, int] = {}
        obs.gauge("cache.remote.degraded", 0)

    # -- bookkeeping ----------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        obs.count(name, n)
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    @property
    def degraded(self) -> bool:
        """Local-only mode: the breaker is keeping the network away."""
        return self.breaker.state != "closed"

    def stats(self) -> dict[str, Any]:
        with self._lock:
            counters = dict(sorted(self.counters.items()))
            pending = len(self._pending)
        return {
            "url": self.url,
            "breaker": self.breaker.snapshot(),
            "pending_writes": pending,
            "counters": counters,
        }

    # -- transport ------------------------------------------------------
    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        """One HTTP round trip with injected-fault hooks.

        Raises :class:`RemoteCacheError` on any transport failure
        (refused, reset, timed out); HTTP status handling is the
        caller's job.
        """
        if faults.should_fire("cache.remote.partition"):
            raise RemoteCacheError(
                "injected network partition", site="cache.remote.partition"
            )
        if faults.should_fire("cache.remote.timeout"):
            self._count("cache.remote.timeout")
            raise RemoteCacheError(
                "injected remote timeout", site="cache.remote.timeout"
            )
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout_s
        )
        try:
            conn.connect()
            # Connect succeeded under the (short) connect budget; reads
            # get their own, typically longer, allowance.
            if conn.sock is not None:
                conn.sock.settimeout(self.read_timeout_s)
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Length": str(len(body))} if body else {},
            )
            response = conn.getresponse()
            data = response.read()
            return response.status, data
        except socket.timeout as exc:
            self._count("cache.remote.timeout")
            raise RemoteCacheError(
                f"remote cache timed out: {exc}", site="cache.remote.timeout"
            ) from exc
        except (OSError, http.client.HTTPException) as exc:
            raise RemoteCacheError(
                f"remote cache unreachable: {exc}", site="cache.remote.partition"
            ) from exc
        finally:
            with contextlib.suppress(Exception):
                conn.close()

    def _request_with_retry(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        """Bounded retries with full-jitter exponential backoff."""
        last: Exception | None = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                cap = min(self.backoff_cap_s, self.backoff_base_s * 2**attempt)
                time.sleep(self._rng.uniform(0.0, cap))
                self._count("cache.remote.retry")
            try:
                return self._request(method, path, body)
            except RemoteCacheError as exc:
                last = exc
        raise last  # type: ignore[misc]  # loop always ran once

    # -- breaker choreography -------------------------------------------
    def _admit(self) -> bool:
        """May this operation touch the network right now?"""
        if self.breaker.allow():
            return True
        self._count("cache.remote.degraded_skip")
        return False

    def _succeeded(self) -> None:
        recovered = self.breaker.state != "closed"
        self.breaker.record_success()
        if recovered:
            obs.gauge("cache.remote.degraded", 0)
            self._count("cache.remote.recovered")
        self._flush_pending()

    def _failed(self) -> None:
        was_open = self.breaker.state == "open"
        self.breaker.record_failure()
        if self.breaker.state == "open" and not was_open:
            obs.gauge("cache.remote.degraded", 1)

    # -- public API -----------------------------------------------------
    def get(self, digest: str) -> bytes | None:
        """The verified frame stored under ``digest``, else ``None``.

        ``None`` covers every non-answer uniformly: a true miss, a
        degraded-mode skip, a timeout, and a blob that failed
        verification twice.  The caller recomputes; correctness never
        depends on the remote tier answering.
        """
        if not self._admit():
            return None
        try:
            data = self._fetch_verified(digest)
        except RemoteCacheError:
            self._count("cache.remote.error")
            self._failed()
            return None
        except Exception:
            # Absolute backstop: a client bug must degrade to a miss,
            # not take the flow down.
            self._count("cache.remote.error")
            self._failed()
            return None
        self._succeeded()
        if data is None:
            self._count("cache.remote.miss")
        else:
            self._count("cache.remote.hit")
        return data

    def _fetch_verified(self, digest: str) -> bytes | None:
        """GET + verify, with one quarantine-and-refetch on corruption."""
        for fetch in range(2):
            status, data = self._request_with_retry("GET", f"/blob/{digest}")
            if status == 404:
                return None
            if status != 200:
                raise RemoteCacheError(
                    f"remote cache answered HTTP {status} for {digest}",
                    site="cache.remote.partition",
                )
            data = faults.corrupt_bytes("cache.remote.corrupt", data)
            try:
                verify_frame(data)
            except CacheCorruptionError:
                self._count("cache.remote.corrupt")
                if fetch == 0:
                    # Could be in-flight corruption: one clean refetch
                    # settles it without destroying a good server copy.
                    self._count("cache.remote.refetch")
                    continue
                # Two bad copies: the stored blob (or the path to it)
                # is rotten.  Quarantine it server-side so no other
                # host burns a fetch on it, and treat the server as
                # unhealthy so the breaker can take it out of the loop.
                with contextlib.suppress(RemoteCacheError):
                    self._request_with_retry("POST", f"/quarantine/{digest}")
                raise RemoteCacheError(
                    f"remote blob {digest} failed verification twice",
                    site="cache.remote.corrupt",
                )
            return data
        return None  # unreachable; loop returns or raises

    def put(self, digest: str, data: bytes) -> bool:
        """Upload one frame; defer (write-behind) when that fails.

        Returns ``True`` when the frame reached the server now,
        ``False`` when it was stashed for later — either way the
        caller's local tiers already hold the value, so this is purely
        advisory.
        """
        if not self._admit():
            self._stash(digest, data)
            return False
        try:
            status, _ = self._request_with_retry("PUT", f"/blob/{digest}", data)
        except RemoteCacheError:
            self._count("cache.remote.put_error")
            self._failed()
            self._stash(digest, data)
            return False
        except Exception:
            self._count("cache.remote.put_error")
            self._failed()
            self._stash(digest, data)
            return False
        if status != 200:
            # The server refused the frame (4xx) — most likely an
            # injected local corruption caught before it spread.  Not a
            # transport failure: the server is healthy, drop the write.
            self._count("cache.remote.put_rejected")
            self._succeeded()
            return False
        self._count("cache.remote.put")
        self._succeeded()
        return True

    def probe(self) -> bool:
        """One explicit health check (used by recovery loops/tests)."""
        if not self._admit():
            return False
        try:
            status, _ = self._request_with_retry("GET", "/healthz")
        except Exception:
            self._failed()
            return False
        if status != 200:
            self._failed()
            return False
        self._succeeded()
        return True

    def scrub(self) -> dict[str, int] | None:
        """Ask the server to re-verify its store (``repro cache scrub``)."""
        if not self._admit():
            return None
        try:
            status, body = self._request_with_retry("POST", "/scrub")
        except Exception:
            self._failed()
            return None
        if status != 200:
            self._failed()
            return None
        self._succeeded()
        import json

        try:
            return json.loads(body)
        except ValueError:
            return None

    # -- write-behind ---------------------------------------------------
    def _stash(self, digest: str, data: bytes) -> None:
        """Queue an upload for when the server comes back."""
        with self._lock:
            if digest in self._pending:
                self._pending.move_to_end(digest)
            self._pending[digest] = data
            while len(self._pending) > self.max_pending_writes:
                self._pending.popitem(last=False)
                self._count_locked("cache.remote.write_behind_dropped")
        self._count("cache.remote.write_behind")

    def _count_locked(self, name: str, n: int = 1) -> None:
        # Counter twin of _count for paths already holding self._lock.
        obs.count(name, n)
        self.counters[name] = self.counters.get(name, 0) + n

    def _flush_pending(self) -> None:
        """Upload deferred writes after a recovery (bounded, one pass)."""
        while True:
            with self._lock:
                if not self._pending:
                    return
                digest, data = self._pending.popitem(last=False)
            try:
                status, _ = self._request_with_retry(
                    "PUT", f"/blob/{digest}", data
                )
            except Exception:
                # Server went away again mid-flush: re-stash and let
                # the breaker machinery handle the new outage.
                with self._lock:
                    self._pending[digest] = data
                    self._pending.move_to_end(digest, last=False)
                self._failed()
                return
            if status == 200:
                self._count("cache.remote.writeback")

    def __repr__(self) -> str:
        return (
            f"RemoteCacheClient({self.url!r}, breaker={self.breaker.state}, "
            f"pending={len(self._pending)})"
        )
