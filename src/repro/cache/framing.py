"""The sha256-framed on-wire/on-disk entry format shared by every
artifact-cache tier.

A cache entry is stored — on the local disk tier, on a remote blob
server, and in flight between them — as one self-verifying frame::

    MAGIC (7 bytes) | sha256(payload) (32 bytes) | payload (pickle)

The frame is what makes integrity *checkable at every boundary*: the
disk tier verifies on read, the blob server verifies on upload and on
scrub, and :class:`repro.cache.remote.RemoteCacheClient` verifies every
fetched blob before it is allowed anywhere near ``pickle.loads`` — a
lying or bit-rotten server degrades to a cache miss, never to corrupt
artifacts (see ``docs/ROBUSTNESS.md``).

This module is an import leaf (only :mod:`repro.resilience.errors`
below it), so the ``core`` cache, the ``cache`` package, and the CLI
can all share one definition without cycles.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any

from ..resilience.errors import CacheCorruptionError

__all__ = [
    "MAGIC",
    "DIGEST_LEN",
    "HEADER_LEN",
    "encode_entry",
    "decode_entry",
    "verify_frame",
]

#: Frame header: magic + format version.  Bump on layout changes so
#: stale entries from older builds quarantine cleanly everywhere.
MAGIC = b"RPRAC2\0"
DIGEST_LEN = 32  # sha256
HEADER_LEN = len(MAGIC) + DIGEST_LEN


def encode_entry(value: Any) -> bytes:
    """Serialize a cache value with an integrity checksum."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return MAGIC + hashlib.sha256(payload).digest() + payload


def verify_frame(data: bytes) -> None:
    """Check a frame's header and checksum *without* unpickling.

    Raises :class:`CacheCorruptionError` on any defect.  This is the
    whole verification a blob server (which must never unpickle
    payloads it merely stores) or a fetching client (which must not
    unpickle unverified bytes) needs.
    """
    if len(data) < HEADER_LEN:
        raise CacheCorruptionError("truncated cache entry")
    if not data.startswith(MAGIC):
        raise CacheCorruptionError("unrecognized cache entry header")
    digest = data[len(MAGIC):HEADER_LEN]
    if hashlib.sha256(data[HEADER_LEN:]).digest() != digest:
        raise CacheCorruptionError("cache entry checksum mismatch")


def decode_entry(data: bytes) -> Any:
    """Inverse of :func:`encode_entry`; raises on any corruption."""
    verify_frame(data)
    try:
        return pickle.loads(data[HEADER_LEN:])
    except Exception as exc:
        raise CacheCorruptionError(f"cache entry does not unpickle: {exc}") from exc
