"""Integrity scrubbing for the artifact-cache tiers (``repro cache scrub``).

Bit rot is silent until the read that trips over it; a scrub turns it
into scheduled maintenance instead.  :func:`scrub_disk` walks a disk
tier directory and re-verifies every ``*.pkl`` frame the way
:class:`repro.core.artifacts.ArtifactCache` would on a lookup —
corrupt entries are quarantined (renamed ``*.corrupt``) so they can
never poison a run, and the counts come back for reporting.
:func:`scrub_remote` asks a ``repro cache-serve`` server to do the
same for its blob store (``POST /scrub``).

Both are safe to run concurrently with live readers/writers: a
quarantine is an atomic rename, and an entry written *during* the walk
is either skipped or verified — never half-read into a false positive
(torn reads fail verification and the fresh atomic replace reinstates
the entry on the next write anyway).
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path

from .. import obs
from ..resilience.errors import CacheCorruptionError
from .framing import verify_frame

__all__ = ["scrub_disk", "scrub_remote"]


def scrub_disk(cache_dir: str | os.PathLike) -> dict[str, int]:
    """Re-verify every disk-tier entry under ``cache_dir``.

    Returns ``{"checked": N, "ok": N, "quarantined": N}``.  Unreadable
    files count as corrupt: an entry that cannot be read cannot serve a
    hit either.
    """
    root = Path(cache_dir).expanduser()
    checked = ok = quarantined = 0
    for path in sorted(root.glob("*.pkl")):
        checked += 1
        try:
            verify_frame(path.read_bytes())
        except (OSError, CacheCorruptionError):
            with contextlib.suppress(OSError):
                os.replace(path, path.with_suffix(".corrupt"))
                quarantined += 1
                obs.count("cache.scrub.quarantined")
        else:
            ok += 1
    obs.count("cache.scrub.checked", checked)
    return {"checked": checked, "ok": ok, "quarantined": quarantined}


def scrub_remote(url: str) -> dict[str, int] | None:
    """Scrub a remote blob server; ``None`` when it cannot be reached."""
    from .remote import RemoteCacheClient

    client = RemoteCacheClient(url)
    return client.scrub()
