"""The remote artifact-cache blob server (``repro cache-serve``).

A deliberately dumb, deliberately robust HTTP blob store: it holds
sha256-framed cache entries (:mod:`repro.cache.framing`) keyed by the
same ``sha256(cache_key)`` digest the disk tier uses, so any number of
characterization hosts can share one warm cache.  All policy lives in
the client (:class:`repro.cache.remote.RemoteCacheClient`) — the
server only stores, verifies, and bounds:

* **verifies on upload** — a ``PUT`` whose body fails
  :func:`repro.cache.framing.verify_frame` is rejected with ``400``
  and never stored, so one corrupting client cannot poison the fleet;
* **verifies on read** — a blob that rotted on the server's own disk
  is quarantined (renamed ``*.corrupt``) and answered ``404``, which
  the client treats as an ordinary miss;
* **bounded** — ``max_mb`` caps the store; least-recently-used blobs
  (mtime, refreshed on every hit) are evicted after each write;
* **scrubbable** — ``POST /scrub`` re-verifies every blob in place and
  quarantines failures (also reachable via ``repro cache scrub
  --remote``).

Routes::

    GET  /healthz            liveness + entry/byte counts
    GET  /metrics            counter snapshot (cache.remote.server.*)
    GET  /blob/<digest>      frame bytes, 404 when absent/corrupt
    PUT  /blob/<digest>      store a verified frame (200; 400 bad frame)
    POST /quarantine/<digest> client-reported corruption (idempotent)
    POST /scrub              verify everything, quarantine failures

Standard-library only (``http.server``), same as ``repro serve``.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from ..resilience.errors import CacheCorruptionError
from .framing import verify_frame

__all__ = ["BlobStore", "BlobCacheServer", "make_blob_server"]

#: Blob names are hex digests of cache keys (the disk tier truncates
#: sha256 to 40 hex chars; accept anything digest-shaped).
_DIGEST_RE = re.compile(r"^[0-9a-f]{8,64}$")

#: Maximum accepted blob size: characterized libraries pickle to well
#: under this; anything larger is a client bug, not an artifact.
MAX_BLOB_BYTES = 64 << 20


class BlobStore:
    """Thread-safe, size-bounded directory of verified frames."""

    def __init__(self, root: str | os.PathLike, max_mb: float | None = None):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_mb = max_mb
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def _path(self, digest: str) -> Path:
        return self.root / f"{digest}.blob"

    # -- operations -----------------------------------------------------
    def get(self, digest: str) -> bytes | None:
        """The verified frame for ``digest``, or ``None``.

        Verification happens on *every* read: a blob that fails its
        checksum is quarantined immediately so it is served at most
        zero times — the client's own verification is a second,
        independent line of defense, not the only one.
        """
        path = self._path(digest)
        try:
            data = path.read_bytes()
        except OSError:
            self._count("cache.remote.server.miss")
            return None
        try:
            verify_frame(data)
        except CacheCorruptionError:
            self.quarantine(digest)
            self._count("cache.remote.server.miss")
            return None
        # Refresh mtime so LRU eviction sees this blob as hot.
        with contextlib.suppress(OSError):
            os.utime(path)
        self._count("cache.remote.server.hit")
        return data

    def put(self, digest: str, data: bytes) -> None:
        """Store one verified frame (raises on a bad frame)."""
        verify_frame(data)
        path = self._path(digest)
        tmp = path.with_suffix(f".tmp{os.getpid()}.{threading.get_ident()}")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            with contextlib.suppress(OSError):
                tmp.unlink()
            raise
        self._count("cache.remote.server.put")
        self._enforce_cap(keep=path)

    def quarantine(self, digest: str) -> bool:
        """Move a blob aside so it is never served again."""
        path = self._path(digest)
        if not path.exists():
            return False
        with contextlib.suppress(OSError):
            os.replace(path, path.with_suffix(".corrupt"))
            self._count("cache.remote.server.quarantined")
            return True
        return False

    def scrub(self) -> dict[str, int]:
        """Re-verify every blob; quarantine failures; report counts."""
        checked = ok = quarantined = 0
        for path in sorted(self.root.glob("*.blob")):
            checked += 1
            try:
                verify_frame(path.read_bytes())
            except (OSError, CacheCorruptionError):
                if self.quarantine(path.stem):
                    quarantined += 1
            else:
                ok += 1
        self._count("cache.remote.server.scrubs")
        return {"checked": checked, "ok": ok, "quarantined": quarantined}

    def _enforce_cap(self, keep: Path | None = None) -> None:
        """Evict least-recently-used blobs over the size cap."""
        if self.max_mb is None:
            return
        budget = self.max_mb * 1024 * 1024
        with self._lock:
            entries = []
            total = 0
            for path in self.root.glob("*.blob"):
                with contextlib.suppress(OSError):
                    st = path.stat()
                    entries.append((st.st_mtime, st.st_size, path))
                    total += st.st_size
            entries.sort()  # oldest first
            for _, size, path in entries:
                if total <= budget:
                    break
                if keep is not None and path == keep:
                    continue
                with contextlib.suppress(OSError):
                    path.unlink()
                    total -= size
                    self.counters["cache.remote.server.evict"] = (
                        self.counters.get("cache.remote.server.evict", 0) + 1
                    )

    # -- introspection --------------------------------------------------
    def stats(self) -> dict[str, Any]:
        entries = 0
        total = 0
        for path in self.root.glob("*.blob"):
            with contextlib.suppress(OSError):
                total += path.stat().st_size
                entries += 1
        with self._lock:
            counters = dict(sorted(self.counters.items()))
        return {
            "entries": entries,
            "bytes": total,
            "max_mb": self.max_mb,
            "counters": counters,
        }


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-cache-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def store(self) -> BlobStore:
        return self.server.store  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------
    def _send_json(self, code: int, payload: dict[str, Any]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, data: bytes) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _digest(self, prefix: str) -> str | None:
        rest = self.path.rstrip("/")[len(prefix):]
        return rest if _DIGEST_RE.fullmatch(rest) else None

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.rstrip("/") in ("/healthz", ""):
            stats = self.store.stats()
            self._send_json(
                200,
                {"status": "ok", "entries": stats["entries"], "bytes": stats["bytes"]},
            )
        elif self.path.rstrip("/") == "/metrics":
            self._send_json(200, self.store.stats())
        elif self.path.startswith("/blob/"):
            digest = self._digest("/blob/")
            if digest is None:
                self._send_json(400, {"error": "malformed blob digest"})
                return
            data = self.store.get(digest)
            if data is None:
                self._send_json(404, {"error": f"no blob {digest!r}"})
            else:
                self._send_bytes(data)
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_PUT(self) -> None:  # noqa: N802 (http.server API)
        if not self.path.startswith("/blob/"):
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        digest = self._digest("/blob/")
        if digest is None:
            self._send_json(400, {"error": "malformed blob digest"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BLOB_BYTES:
            self._send_json(400, {"error": f"bad blob size {length}"})
            return
        try:
            data = self.rfile.read(length)
            self.store.put(digest, data)
        except CacheCorruptionError as exc:
            # Reject, never store: an upload that fails verification
            # would otherwise poison every other host's cache.
            self._send_json(400, {"error": f"rejected corrupt frame: {exc}"})
        except OSError as exc:
            self._send_json(500, {"error": f"store failed: {exc}"})
        else:
            self._send_json(200, {"stored": digest})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path.startswith("/quarantine/"):
            digest = self._digest("/quarantine/")
            if digest is None:
                self._send_json(400, {"error": "malformed blob digest"})
                return
            self._send_json(200, {"quarantined": self.store.quarantine(digest)})
        elif self.path.rstrip("/") == "/scrub":
            self._send_json(200, self.store.scrub())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})


class BlobCacheServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying the blob store."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, store: BlobStore, verbose: bool = False):
        super().__init__(address, _Handler)
        self.store = store
        self.verbose = verbose


def make_blob_server(
    host: str,
    port: int,
    root: str | os.PathLike,
    max_mb: float | None = None,
    verbose: bool = False,
) -> BlobCacheServer:
    return BlobCacheServer((host, port), BlobStore(root, max_mb=max_mb), verbose)
