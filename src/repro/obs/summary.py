"""Human-readable trace summaries.

Aggregates a flat list of :class:`~repro.obs.tracer.SpanRecord` into a
tree keyed by span *path* (parent names joined with ``/``), so repeated
invocations of the same stage fold into one line with a call count:

    flow.run                        1x   812.4 ms
      synth.balance                 3x    41.2 ms
      synth.rewrite                 3x   203.9 ms   applied=17
      flow.map                      1x   122.0 ms

Per node: call count, total wall time, self time (total minus child
time), and the counters recorded while that span was active.  A "top
counters" section follows with the global totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .tracer import SpanRecord

__all__ = ["SummaryNode", "build_summary", "render_summary"]


@dataclass
class SummaryNode:
    """One aggregated line of the summary tree."""

    name: str
    calls: int = 0
    total: float = 0.0
    child_time: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    children: dict[str, "SummaryNode"] = field(default_factory=dict)

    @property
    def self_time(self) -> float:
        return max(0.0, self.total - self.child_time)


def build_summary(spans: list[SpanRecord]) -> SummaryNode:
    """Fold span records into an aggregated tree (root is synthetic)."""
    by_id = {record.span_id: record for record in spans}

    def path_of(record: SpanRecord) -> tuple[str, ...]:
        names: list[str] = []
        current: SpanRecord | None = record
        guard = 0
        while current is not None and guard <= len(spans):
            guard += 1
            names.append(current.name)
            current = by_id.get(current.parent_id) if current.parent_id else None
        return tuple(reversed(names))

    root = SummaryNode(name="<root>")
    for record in spans:
        node = root
        for name in path_of(record):
            node = node.children.setdefault(name, SummaryNode(name=name))
        node.calls += 1
        duration = record.duration or 0.0
        node.total += duration
        for key, value in record.counters.items():
            node.counters[key] = node.counters.get(key, 0) + value
        parent = by_id.get(record.parent_id) if record.parent_id else None
        if parent is not None:
            # Accumulate child time on the parent's aggregate node.
            pnode = root
            for name in path_of(parent):
                pnode = pnode.children.setdefault(name, SummaryNode(name=name))
            pnode.child_time += duration
    return root


def _format_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.2f} ms"
    return f"{seconds * 1e6:8.1f} us"


def _format_count(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.4g}"


def _render_node(node: SummaryNode, depth: int, lines: list[str]) -> None:
    label = "  " * depth + node.name
    counters = ""
    if node.counters:
        shown = sorted(node.counters.items(), key=lambda kv: -abs(kv[1]))[:3]
        counters = "   " + " ".join(
            f"{key.rsplit('.', 1)[-1]}={_format_count(value)}" for key, value in shown
        )
    lines.append(
        f"{label:44s} {node.calls:5d}x {_format_time(node.total)}"
        f"  self {_format_time(node.self_time)}{counters}"
    )
    for child in sorted(node.children.values(), key=lambda c: -c.total):
        _render_node(child, depth + 1, lines)


def render_summary(
    spans: list[SpanRecord],
    metrics: dict[str, Any] | None = None,
    top_counters: int = 12,
) -> str:
    """Render the span tree plus a top-counters table as text."""
    lines: list[str] = []
    if spans:
        lines.append(f"{'span':44s} {'calls':>6} {'total':>11} {'(self)':>16}")
        lines.append("-" * 86)
        root = build_summary(spans)
        for child in sorted(root.children.values(), key=lambda c: -c.total):
            _render_node(child, 0, lines)
    else:
        lines.append("(no spans recorded)")

    metrics = metrics or {}
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("")
        lines.append("top counters")
        lines.append("-" * 44)
        ordered = sorted(counters.items(), key=lambda kv: -abs(kv[1]))[:top_counters]
        for name, value in ordered:
            lines.append(f"  {name:38s} {_format_count(value):>12}")
    gauges = metrics.get("gauges") or {}
    if gauges:
        lines.append("")
        lines.append("gauges")
        lines.append("-" * 44)
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:38s} {value:12.6g}")
    hists = metrics.get("histograms") or {}
    if hists:
        lines.append("")
        lines.append("histograms")
        lines.append("-" * 44)
        for name, stats in sorted(hists.items()):
            quantiles = " ".join(
                f"{q}={stats[q]:.4g}"
                for q in ("p50", "p95", "p99")
                if q in stats  # older JSONL traces predate p99
            )
            lines.append(
                f"  {name:30s} n={stats['count']:<6d} mean={stats['mean']:.4g}"
                f" {quantiles} max={stats['max']:.4g}"
            )
    return "\n".join(lines)
