"""Persistent run ledger: one JSONL record per flow run.

The tracer answers "where did *this* run spend its time"; the ledger
answers "how does that compare to every run before it".  Flow commands
(``synthesize``, ``evaluate``) append one schema-versioned record per
invocation — config fingerprint, per-stage wall/self times, the
operationally interesting counters (cache hits/misses, kernel-path
choices, degraded arcs, guard violations), and peak RSS from the
resource monitor — to an append-only JSONL file, so performance and
health trends survive the process and are diffable between commits.

The destination is :envvar:`REPRO_LEDGER` (default
``.repro/ledger.jsonl`` in the working directory); the values ``""``,
``0``, ``off``, ``none`` and ``disabled`` turn the ledger off, as does
the ``--no-ledger`` flag.  ``repro ledger list/show/compare/trend``
reads it back (tolerating a torn tail, like every other append-only
file in this codebase — see :mod:`repro.resilience.journal`).

This module deliberately imports nothing outside :mod:`repro.obs`:
``resilience`` imports ``obs``, so the fingerprint helper is a local
mirror of :func:`repro.resilience.journal.config_fingerprint` rather
than an import of it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from .summary import SummaryNode, build_summary
from .tracer import Tracer

__all__ = [
    "LEDGER_SCHEMA",
    "DEFAULT_LEDGER_PATH",
    "ledger_path",
    "config_fingerprint",
    "build_record",
    "append",
    "read",
    "compare",
    "trend",
]

LEDGER_SCHEMA = "repro-ledger/1"
DEFAULT_LEDGER_PATH = ".repro/ledger.jsonl"

#: ``REPRO_LEDGER`` values that mean "no ledger".
_DISABLED = {"", "0", "off", "none", "disabled"}

#: Span-name prefixes that make it into the per-stage table.  Matches
#: the pipeline taxonomy in ``docs/OBSERVABILITY.md`` — coarse enough
#: to stay a handful of rows per run, fine enough to localize a
#: regression to a stage before reaching for ``--trace``.
_STAGE_PREFIXES = ("flow.", "stage.", "isolation.", "charlib.", "synth.", "server.")

#: Counter prefixes worth persisting per run (cache health, kernel
#: path, resilience events).  High-cardinality hot-loop counters
#: (``spice.newton.iterations`` and friends) stay out of the ledger.
_COUNTER_PREFIXES = (
    "cache.",
    "guard.",
    "stage.timeout",
    "stage.deadline",
    "stage.error",
    "isolation.",
    "journal.",
    "faults.",
    "resilience.",
    "charlib.arc.degraded",
    "spice.kernel.",
    # Trajectory-batch telemetry: batch widths and lockstep-vs-instance
    # step counts, so ledger records show how much batching the run got.
    "spice.batch.",
    "charlib.spice.kernel.",
    # STA engine health: incremental-vs-full retime mix and query
    # volume, so ``repro ledger compare`` surfaces timing-path drift.
    "sta.",
    # Characterization-service health: admitted/shed/coalesced/
    # completed jobs, breaker trips — one serve session appends one
    # record on shutdown, so service behavior trends like everything
    # else (docs/ROBUSTNESS.md, "Service robustness").
    "server.",
)


def ledger_path(override: str | os.PathLike | None = None) -> Path | None:
    """Resolve the ledger destination; ``None`` means disabled.

    Precedence: explicit ``override`` (the ``--ledger`` flag), then
    :envvar:`REPRO_LEDGER`, then :data:`DEFAULT_LEDGER_PATH`.
    """
    if override is not None:
        text = str(override).strip()
        return None if text.lower() in _DISABLED else Path(text)
    env = os.environ.get("REPRO_LEDGER")
    if env is not None:
        text = env.strip()
        return None if text.lower() in _DISABLED else Path(text)
    return Path(DEFAULT_LEDGER_PATH)


def config_fingerprint(config: Mapping[str, Any] | None) -> str | None:
    """Stable digest of a JSON-serializable run configuration.

    Mirrors :func:`repro.resilience.journal.config_fingerprint` (same
    canonicalization, same truncation) so a ledger record and a journal
    created from the same run bear the same fingerprint.
    """
    if config is None:
        return None
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


# ----------------------------------------------------------------------
# Record construction
# ----------------------------------------------------------------------
def _collect_stages(node: SummaryNode, out: dict[str, dict[str, float]]) -> None:
    for child in node.children.values():
        if child.name.startswith(_STAGE_PREFIXES):
            row = out.setdefault(
                child.name, {"calls": 0, "wall_s": 0.0, "self_s": 0.0}
            )
            row["calls"] += child.calls
            row["wall_s"] += child.total
            row["self_s"] += child.self_time
        _collect_stages(child, out)


def build_record(
    tracer: Tracer,
    *,
    command: str,
    config: Mapping[str, Any] | None = None,
    status: str = "ok",
) -> dict[str, Any]:
    """Distill one run's tracer into a ledger record.

    The record is self-contained plain JSON: schema tag, wall-clock
    timestamp, config fingerprint (plus the config itself, for ``repro
    ledger show``), total duration, the per-stage wall/self table, the
    filtered counters, and the peak-RSS/CPU gauges the resource monitor
    recorded.
    """
    metrics = tracer.metrics_snapshot()
    stages: dict[str, dict[str, float]] = {}
    _collect_stages(build_summary(tracer.spans), stages)
    counters = {
        name: value
        for name, value in sorted(metrics["counters"].items())
        if name.startswith(_COUNTER_PREFIXES)
    }
    gauges = {
        name: value
        for name, value in sorted(metrics["gauges"].items())
        if name.startswith(("resource.", "isolation.worker."))
    }
    rss_candidates = [
        gauges.get("resource.peak_rss_mb"),
        gauges.get("isolation.worker.peak_rss_mb"),
    ]
    peak_rss = max((v for v in rss_candidates if v is not None), default=None)
    return {
        "schema": LEDGER_SCHEMA,
        "ts": time.time(),
        "command": command,
        "status": status,
        "config_fingerprint": config_fingerprint(config),
        "config": dict(config) if config is not None else None,
        "duration_s": round(tracer.elapsed(), 6),
        "peak_rss_mb": peak_rss,
        "stages": {
            name: {
                "calls": int(row["calls"]),
                "wall_s": round(row["wall_s"], 6),
                "self_s": round(row["self_s"], 6),
            }
            for name, row in sorted(stages.items())
        },
        "counters": counters,
        "gauges": gauges,
    }


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def append(record: Mapping[str, Any], path: str | os.PathLike) -> Path:
    """Append one record to the ledger file (created on first use)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, default=str)
    with open(target, "a") as fh:
        fh.write(line + "\n")
    return target


def read(path: str | os.PathLike) -> list[dict[str, Any]]:
    """All parseable ledger records, oldest first.

    A run killed mid-append tears the final line; hand-edits or a
    future schema can leave odd lines anywhere.  Everything that is
    not a well-formed ``repro-ledger/*`` object is skipped — the
    readable prefix of history is always available.
    """
    target = Path(path)
    if not target.exists():
        return []
    records: list[dict[str, Any]] = []
    for line in target.read_text(errors="replace").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue  # torn tail / hand-damaged line
        if isinstance(obj, dict) and str(obj.get("schema", "")).startswith(
            "repro-ledger/"
        ):
            records.append(obj)
    return records


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
def compare(old: Mapping[str, Any], new: Mapping[str, Any]) -> dict[str, Any]:
    """Per-stage and total deltas between two ledger records.

    Returns plain data (the CLI renders it): total/peak-RSS deltas, a
    row per stage present in either record (``wall_s`` old/new and the
    fractional delta, ``None`` where a side is missing), counter deltas
    for keys present in either, and whether the configs match — a
    timing comparison across different configs is labelled as such
    rather than refused.
    """
    old_stages = old.get("stages") or {}
    new_stages = new.get("stages") or {}
    rows = []
    for name in sorted(set(old_stages) | set(new_stages)):
        before = old_stages.get(name, {}).get("wall_s")
        after = new_stages.get(name, {}).get("wall_s")
        if before and after is not None:
            delta = (after - before) / before
        else:
            delta = None
        rows.append({"stage": name, "old_s": before, "new_s": after, "delta": delta})
    old_counters = old.get("counters") or {}
    new_counters = new.get("counters") or {}
    counter_deltas = {
        name: new_counters.get(name, 0) - old_counters.get(name, 0)
        for name in sorted(set(old_counters) | set(new_counters))
        if new_counters.get(name, 0) != old_counters.get(name, 0)
    }
    old_total = old.get("duration_s")
    new_total = new.get("duration_s")
    return {
        "same_config": (
            old.get("config_fingerprint") == new.get("config_fingerprint")
        ),
        "old_duration_s": old_total,
        "new_duration_s": new_total,
        "duration_delta": (
            (new_total - old_total) / old_total if old_total and new_total is not None
            else None
        ),
        "old_peak_rss_mb": old.get("peak_rss_mb"),
        "new_peak_rss_mb": new.get("peak_rss_mb"),
        "stages": rows,
        "counter_deltas": counter_deltas,
    }


def trend(
    records: Iterable[Mapping[str, Any]],
    field: str = "duration_s",
    last: int = 20,
) -> dict[str, list[float]]:
    """Per-command series of ``field`` over the most recent records.

    ``field`` is a top-level numeric record key (``duration_s``,
    ``peak_rss_mb``) or ``stages.<name>`` for one stage's wall time.
    Records without the value are skipped.
    """
    series: dict[str, list[float]] = {}
    for record in records:
        if field.startswith("stages."):
            value = (record.get("stages") or {}).get(field[7:], {}).get("wall_s")
        else:
            value = record.get(field)
        if isinstance(value, (int, float)):
            series.setdefault(str(record.get("command", "?")), []).append(float(value))
    return {command: values[-last:] for command, values in series.items()}


def sparkline(values: list[float]) -> str:
    """Tiny unicode chart for ``repro ledger trend``."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi <= lo:
        return blocks[0] * len(values)
    span = hi - lo
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values)
