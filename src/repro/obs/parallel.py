"""Context-propagating parallel map for experiment fan-out.

The tracer is context-local (:mod:`contextvars`), so a bare
``ThreadPoolExecutor`` worker would see *no* tracer and silently drop
its spans.  :func:`parallel_map` snapshots the submitting context —
active tracer *and* active span — per task, so worker spans land in
the same trace, correctly parented under the span that was open at
submission time.  Results preserve input order regardless of
completion order, which is what keeps ``jobs=N`` runs byte-identical
to serial ones.
"""

from __future__ import annotations

import contextvars
from typing import Callable, Iterable, List, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def effective_jobs(jobs: int | None) -> int:
    """Normalize a user-facing ``jobs`` knob (``None``/0 -> serial)."""
    return max(1, jobs or 1)


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], jobs: int | None = 1
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across worker threads.

    With ``jobs <= 1`` (or a single item) this is a plain list
    comprehension — no pool, no context copies, identical stack
    traces.  Otherwise tasks run on up to ``jobs`` threads, each
    inside a fresh copy of the caller's :mod:`contextvars` context;
    the result list is ordered by input position and the first worker
    exception propagates to the caller.
    """
    items = list(items)
    jobs = effective_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        futures = [
            pool.submit(contextvars.copy_context().run, fn, item) for item in items
        ]
        return [future.result() for future in futures]
