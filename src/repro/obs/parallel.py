"""Context-propagating parallel map for experiment fan-out.

The tracer is context-local (:mod:`contextvars`), so a bare
``ThreadPoolExecutor`` worker would see *no* tracer and silently drop
its spans.  :func:`parallel_map` snapshots the submitting context —
active tracer *and* active span — per task, so worker spans land in
the same trace, correctly parented under the span that was open at
submission time.  Results preserve input order regardless of
completion order, which is what keeps ``jobs=N`` runs byte-identical
to serial ones.

Failure semantics (see ``docs/ROBUSTNESS.md``):

* every task failure is annotated in place with ``task_index`` and
  ``task_label`` attributes (and an ``add_note`` on Python >= 3.11)
  before it propagates, so a worker traceback names the task;
* ``on_error="fail_fast"`` (default) cancels queued sibling tasks on
  the first failure, *drains* already-running ones (the pool is shut
  down with ``wait=True`` — no thread is abandoned mid-task), then
  re-raises the original exception;
* ``on_error="collect"`` runs every task to completion and raises one
  :class:`repro.resilience.errors.ParallelExecutionError` aggregating
  all failures;
* ``timeout_s`` bounds the whole fan-out; on expiry remaining tasks
  are cancelled and a
  :class:`repro.resilience.errors.TimeoutExceeded` is raised (running
  tasks are abandoned to finish in the background — the one case the
  pool does not drain).

The ``parallel.worker`` fault-injection site
(:mod:`repro.resilience.faults`) can force a task failure to exercise
these paths deterministically.
"""

from __future__ import annotations

import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import Callable, Iterable, List, Sequence, TypeVar, Union

from .tracer import count

T = TypeVar("T")
R = TypeVar("R")

#: Per-task labels: a ready-made sequence or a function of the item.
Labels = Union[Sequence[str], Callable[[T], str], None]


def effective_jobs(jobs: int | None) -> int:
    """Normalize a user-facing ``jobs`` knob (``None``/0 -> serial)."""
    return max(1, jobs or 1)


def _label_for(labels: Labels, fn: Callable, item, index: int) -> str:
    if labels is None:
        return f"{getattr(fn, '__name__', 'task')}[{index}]"
    if callable(labels):
        return str(labels(item))
    return str(labels[index])


def _annotate(exc: BaseException, label: str, index: int) -> BaseException:
    """Attach the failing task's identity to its exception."""
    exc.task_index = index
    exc.task_label = label
    if hasattr(exc, "add_note"):  # Python >= 3.11
        exc.add_note(f"parallel_map task {index} ({label}) failed")
    return exc


def _run_one(fn: Callable[[T], R], item: T, label: str) -> R:
    # Lazy import: obs must stay importable without triggering the
    # resilience package (which itself imports obs).
    from ..resilience import faults

    if faults.should_fire("parallel.worker"):
        from ..resilience.errors import InjectedFaultError

        raise InjectedFaultError(
            f"injected worker fault in {label}", site="parallel.worker"
        )
    return fn(item)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
    *,
    labels: Labels = None,
    on_error: str = "fail_fast",
    timeout_s: float | None = None,
    isolate: str = "thread",
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across worker threads.

    With ``jobs <= 1`` (or a single item) tasks run inline — no pool,
    no context copies.  Otherwise tasks run on up to ``jobs`` threads,
    each inside a fresh copy of the caller's :mod:`contextvars`
    context; the result list is ordered by input position.

    ``labels`` names tasks for error annotation (a sequence aligned
    with ``items`` or a callable of the item); ``on_error`` selects
    fail-fast or collect-errors semantics and ``timeout_s`` bounds the
    whole fan-out (see the module docstring).

    ``isolate="process"`` delegates to
    :func:`repro.resilience.isolation.process_map`: each worker is a
    supervised subprocess with heartbeats, a stall/memory watchdog,
    and crash restart.  The contract is the same (ordered results,
    identical failure semantics) but ``fn`` and all values must
    pickle, and ``timeout_s`` becomes the *per-task* stall budget
    rather than a whole-fan-out deadline.
    """
    if on_error not in ("fail_fast", "collect"):
        raise ValueError(f"on_error must be 'fail_fast' or 'collect', not {on_error!r}")
    if isolate not in ("thread", "process"):
        raise ValueError(f"isolate must be 'thread' or 'process', not {isolate!r}")
    items = list(items)
    if isolate == "process":
        from ..resilience.isolation import process_map

        return process_map(
            fn,
            items,
            effective_jobs(jobs),
            labels=[_label_for(labels, fn, item, i) for i, item in enumerate(items)],
            on_error=on_error,
            task_timeout_s=timeout_s,
        )
    jobs = effective_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return _serial_map(fn, items, labels, on_error)

    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    results: List[R] = [None] * len(items)  # type: ignore[list-item]
    errors: list[tuple[int, str, Exception]] = []
    pool = ThreadPoolExecutor(max_workers=min(jobs, len(items)))
    drain = True
    try:
        tasks = []
        for index, item in enumerate(items):
            label = _label_for(labels, fn, item, index)
            context = contextvars.copy_context()
            tasks.append((pool.submit(context.run, _run_one, fn, item, label), label))
        for index, (future, label) in enumerate(tasks):
            budget = None if deadline is None else max(0.0, deadline - time.monotonic())
            try:
                results[index] = future.result(timeout=budget)
            except _FuturesTimeout:
                from ..resilience.errors import TimeoutExceeded

                # Cannot drain: the expired task may never finish.
                drain = False
                count("parallel.timeout")
                raise TimeoutExceeded(
                    f"parallel_map deadline of {timeout_s:g}s exceeded while "
                    f"waiting for task {index} ({label})",
                    site="parallel",
                    timeout_s=timeout_s,
                ) from None
            except Exception as exc:
                _annotate(exc, label, index)
                count("parallel.task_failed")
                if on_error == "fail_fast":
                    raise
                errors.append((index, label, exc))
    finally:
        # fail_fast: queued tasks are cancelled, in-flight ones drain.
        pool.shutdown(wait=drain, cancel_futures=True)
    if errors:
        from ..resilience.errors import ParallelExecutionError

        raise ParallelExecutionError(
            f"{len(errors)} of {len(items)} parallel tasks failed: "
            + ", ".join(label for _, label, _ in errors),
            errors=errors,
        )
    return results


def _serial_map(
    fn: Callable[[T], R], items: list[T], labels: Labels, on_error: str
) -> List[R]:
    results: List[R] = []
    errors: list[tuple[int, str, Exception]] = []
    for index, item in enumerate(items):
        label = _label_for(labels, fn, item, index)
        try:
            results.append(_run_one(fn, item, label))
        except Exception as exc:
            _annotate(exc, label, index)
            count("parallel.task_failed")
            if on_error == "fail_fast":
                raise
            errors.append((index, label, exc))
            results.append(None)  # type: ignore[arg-type]
    if errors:
        from ..resilience.errors import ParallelExecutionError

        raise ParallelExecutionError(
            f"{len(errors)} of {len(items)} tasks failed: "
            + ", ".join(label for _, label, _ in errors),
            errors=errors,
        )
    return results
