"""Cross-process telemetry: span forwarding and resource monitoring.

The tracer is context-local and process-local, so spans recorded
inside an ``--isolate process`` worker used to die at the pipe
boundary — a profiled isolated run showed only the supervisor's
``isolation.process_map`` span where the in-process run showed the
whole synthesis tree.  This module closes that gap:

* :func:`snapshot` serializes a worker-side tracer's completed spans
  plus its **raw** metric state (counters, gauges, un-aggregated
  histogram observations) into a plain-dict wire form that crosses the
  existing result pipe;
* :func:`record_task` synthesizes the supervisor-side "dispatching
  task" span (``isolation.task`` with the task's label) and
  :func:`graft` re-parents the worker's span tree under it with fresh
  span ids, merging the worker's metrics into the supervisor tracer —
  so ``--profile`` and ``report-trace`` show the true execution
  profile regardless of the isolation tier;
* :class:`ResourceMonitor` is a sampling daemon thread recording
  RSS/CPU gauges (and an RSS histogram, so the percentile rendering
  applies) for the current process — the per-run resource companion
  the run ledger (:mod:`repro.obs.ledger`) persists.

Everything here is transport-agnostic plain data: snapshots are
JSON-safe dicts, so they pickle across a spawn boundary and could
equally stream over a socket (the characterization-as-a-service
direction in ROADMAP item 1).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any

from .tracer import SpanRecord, Tracer

__all__ = [
    "TELEMETRY_VERSION",
    "snapshot",
    "graft",
    "record_task",
    "ResourceMonitor",
]

#: Bump when the snapshot wire form changes incompatibly; :func:`graft`
#: ignores snapshots from a newer version rather than mis-parsing them.
TELEMETRY_VERSION = 1


# ----------------------------------------------------------------------
# Snapshot (worker side)
# ----------------------------------------------------------------------
def _wire_value(value: Any) -> Any:
    """JSON/pickle-safe projection of a span attribute value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _span_to_wire(record: SpanRecord) -> dict[str, Any]:
    attrs = {
        k: _wire_value(v) for k, v in record.attrs.items() if not k.startswith("__")
    }
    return {
        "id": record.span_id,
        "parent": record.parent_id,
        "name": record.name,
        "start": record.start,
        "duration": record.duration,
        "status": record.status,
        "attrs": attrs,
        "counters": dict(record.counters),
    }


def snapshot(tracer: Tracer) -> dict[str, Any]:
    """Serialize a tracer's completed spans + raw metrics for transport.

    Unlike :meth:`Tracer.metrics_snapshot` the histograms here keep
    their raw observation lists — the receiver merges them into its own
    tracer and re-aggregates, so forwarded percentiles stay exact.
    """
    with tracer._lock:
        spans = list(tracer.spans)
        counters = dict(tracer.counters)
        gauges = dict(tracer.gauges)
        histograms = {name: list(values) for name, values in tracer.histograms.items()}
    return {
        "version": TELEMETRY_VERSION,
        "spans": [_span_to_wire(record) for record in spans],
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


# ----------------------------------------------------------------------
# Graft (supervisor side)
# ----------------------------------------------------------------------
def graft(
    tracer: Tracer,
    snap: dict[str, Any] | None,
    *,
    parent: SpanRecord | None = None,
    start_shift: float = 0.0,
) -> int:
    """Merge a :func:`snapshot` into ``tracer``; returns spans grafted.

    Spans get fresh ids from the receiving tracer; worker-side parent
    links are remapped, and any span whose parent was still open at
    snapshot time (or unknown) is parented directly under ``parent``.
    ``start_shift`` re-bases the worker's epoch-relative start offsets
    into the receiver's epoch (pass the dispatching span's start).
    Counters and gauges merge into the tracer's global aggregates;
    histogram observations are appended raw.
    """
    if not snap or snap.get("version", 0) > TELEMETRY_VERSION:
        return 0
    wire_spans = snap.get("spans") or []
    # Two passes: completion order lists children before their parents,
    # so every id must exist before links are resolved.
    id_map: dict[int, int] = {}
    with tracer._lock:
        for wire in wire_spans:
            id_map[wire["id"]] = tracer._next_id
            tracer._next_id += 1
    fallback = parent.span_id if parent is not None else None
    for wire in wire_spans:
        new_id = id_map[wire["id"]]
        parent_id = id_map.get(wire.get("parent"), fallback)
        if parent_id == new_id:
            # A snapshot taken in a forked worker can carry a stale
            # cross-process parent id that collides with the span's own
            # remapped id; never emit a self-cycle.
            parent_id = fallback
        record = SpanRecord(
            span_id=new_id,
            parent_id=parent_id,
            name=wire["name"],
            start=wire.get("start", 0.0) + start_shift,
            duration=wire.get("duration"),
            attrs=dict(wire.get("attrs") or {}),
            counters=dict(wire.get("counters") or {}),
            status=wire.get("status", "ok"),
        )
        with tracer._lock:
            tracer.spans.append(record)
        for sink in tracer.sinks:
            sink.on_span(record)
    with tracer._lock:
        for name, value in (snap.get("counters") or {}).items():
            tracer.counters[name] = tracer.counters.get(name, 0) + value
        tracer.gauges.update(snap.get("gauges") or {})
        for name, values in (snap.get("histograms") or {}).items():
            tracer.histograms.setdefault(name, []).extend(values)
    return len(wire_spans)


def record_task(
    tracer: Tracer,
    parent: SpanRecord | None,
    label: str,
    start: float,
    end: float,
    *,
    status: str = "ok",
    telemetry: dict[str, Any] | None = None,
    **attrs: Any,
) -> SpanRecord:
    """Record one supervisor-side task span and graft its telemetry.

    ``start``/``end`` are offsets in the receiving tracer's epoch
    (:meth:`Tracer.elapsed` at dispatch and completion).  The worker's
    forwarded spans land *under* the returned task span, which is what
    makes the summary tree read "task X ran these stages in a worker".
    """
    record = SpanRecord(
        span_id=tracer._alloc_span_id(),
        parent_id=parent.span_id if parent is not None else None,
        name="isolation.task",
        start=start,
        duration=max(0.0, end - start),
        attrs={"label": label, **attrs},
        status=status,
    )
    with tracer._lock:
        tracer.spans.append(record)
    for sink in tracer.sinks:
        sink.on_span(record)
    graft(tracer, telemetry, parent=record, start_shift=start)
    return record


# ----------------------------------------------------------------------
# Resource monitoring
# ----------------------------------------------------------------------
def _self_rss_mb() -> float | None:
    """Current resident set of this process in MiB (Linux /proc)."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / (1024 * 1024)
    except (OSError, ValueError, IndexError):
        return None


def _self_cpu_s() -> float | None:
    """CPU seconds (user + system) consumed by this process."""
    try:
        import resource as _resource

        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        return usage.ru_utime + usage.ru_stime
    except Exception:
        return None


class ResourceMonitor:
    """Daemon thread sampling this process's RSS/CPU into a tracer.

    Gauges (last-value / peak semantics):

    * ``resource.rss_mb`` — most recent resident set;
    * ``resource.peak_rss_mb`` — maximum sampled resident set;
    * ``resource.cpu_s`` — CPU seconds consumed since :meth:`start`;
    * ``resource.cpu_percent`` — average CPU utilisation since start.

    Each sample also feeds the ``resource.rss_mb`` histogram so the
    summary's percentile rendering (p50/p95/p99) applies to memory.
    Overhead is one /proc read + one getrusage per ``interval_s``;
    platforms without /proc keep the CPU gauges and skip RSS.
    """

    def __init__(self, tracer: Tracer, interval_s: float = 0.25):
        self.tracer = tracer
        self.interval_s = max(0.02, interval_s)
        self.peak_rss_mb = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._t0 = 0.0
        self._cpu0: float | None = None

    def start(self) -> "ResourceMonitor":
        if self._thread is not None:
            return self
        self._t0 = time.monotonic()
        self._cpu0 = _self_cpu_s()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _sample(self) -> None:
        rss = _self_rss_mb()
        if rss is not None:
            self.peak_rss_mb = max(self.peak_rss_mb, rss)
            self.tracer.gauge("resource.rss_mb", rss)
            self.tracer.gauge("resource.peak_rss_mb", self.peak_rss_mb)
            self.tracer.observe("resource.rss_mb", rss)
        cpu = _self_cpu_s()
        if cpu is not None and self._cpu0 is not None:
            spent = cpu - self._cpu0
            wall = time.monotonic() - self._t0
            self.tracer.gauge("resource.cpu_s", spent)
            if wall > 0:
                self.tracer.gauge("resource.cpu_percent", 100.0 * spent / wall)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample()

    def stop(self) -> None:
        """Stop sampling (idempotent); records one final sample."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        self._sample()

    def __enter__(self) -> "ResourceMonitor":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
