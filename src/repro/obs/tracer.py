"""Zero-dependency tracing core: hierarchical spans + metrics.

The observability substrate every layer of the pipeline reports into.
Design constraints (see ``docs/OBSERVABILITY.md``):

* **Context-local** — the active :class:`Tracer` lives in a
  :mod:`contextvars` variable, so parallel flows (threads, tasks,
  nested experiment harnesses) never interleave their spans.  A thread
  sees no tracer unless it installs one.
* **Near-zero overhead when disabled** — every module-level primitive
  (:func:`span`, :func:`count`, :func:`gauge`, :func:`observe`) costs
  one ``ContextVar.get`` plus one branch when no tracer is installed;
  ``span`` then returns a shared no-op context manager.  The budget is
  enforced by ``benchmarks/test_obs_overhead.py``.
* **Monotonic timing** — spans are stamped with
  :func:`time.perf_counter` offsets relative to tracer creation, so
  wall-clock adjustments never produce negative durations.

Spans form a tree (each records its parent), counters/gauges/
histograms aggregate both globally and on the span that was active
when they were recorded, and completed spans stream to pluggable sinks
(:mod:`repro.obs.sinks`).
"""

from __future__ import annotations

import functools
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "SpanRecord",
    "Tracer",
    "current_tracer",
    "reset_context",
    "span",
    "traced",
    "count",
    "gauge",
    "observe",
]

#: The context-local active tracer.  ``None`` means tracing is off and
#: every primitive short-circuits.
_ACTIVE: ContextVar["Tracer | None"] = ContextVar("repro_obs_tracer", default=None)

#: The context-local active span (scoped per thread/task like the
#: tracer itself, so concurrent contexts build independent trees).
_CURRENT_SPAN: ContextVar["SpanRecord | None"] = ContextVar(
    "repro_obs_span", default=None
)


@dataclass
class SpanRecord:
    """One completed (or in-flight) span of the trace tree."""

    span_id: int
    parent_id: int | None
    name: str
    #: Start offset [s] relative to the tracer epoch (monotonic clock).
    start: float
    #: Wall time [s]; ``None`` while the span is still open.
    duration: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Counter increments recorded while this span was active.
    counters: dict[str, float] = field(default_factory=dict)
    status: str = "ok"

    @property
    def path(self) -> str:
        """Dotted name; filled by the tracer at close time."""
        return self.attrs.get("__path__", self.name)

    def to_dict(self) -> dict[str, Any]:
        attrs = {k: v for k, v in self.attrs.items() if not k.startswith("__")}
        out: dict[str, Any] = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
        }
        if attrs:
            out["attrs"] = attrs
        if self.counters:
            out["counters"] = self.counters
        return out


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager binding one :class:`SpanRecord` to the context."""

    __slots__ = ("_tracer", "record", "_token")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record
        self._token = None

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span after entry."""
        self.record.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._token = _CURRENT_SPAN.set(self.record)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
        if exc_type is not None:
            self.record.status = "error"
            self.record.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close_span(self.record)
        return False


class Tracer:
    """Collects spans and metrics for one logical run.

    The tracer always keeps everything in memory (the default sink);
    extra sinks from :mod:`repro.obs.sinks` receive each span as it
    completes plus the final metric aggregates on :meth:`close`.

    Use as a context manager to install into the current context::

        with Tracer() as tracer:
            with span("flow.run", circuit="adder"):
                count("synth.rewrite.applied", 3)
        print(tracer.render_summary())
    """

    #: Per-histogram sample bound.  A batch run never comes close, but
    #: a long-running ``repro serve`` process observes a latency sample
    #: per job forever — unbounded lists would be a slow memory leak.
    #: When a histogram reaches the bound its oldest half is dropped,
    #: so percentiles always describe the most recent window.
    MAX_HISTOGRAM_SAMPLES = 8192

    def __init__(self, sinks: Iterable[Any] | None = None):
        self.sinks = list(sinks or [])
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self._token = None
        self._closed = False

    # -- installation ---------------------------------------------------
    def install(self) -> None:
        """Make this the active tracer in the current context."""
        self._token = _ACTIVE.set(self)

    def uninstall(self) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None

    def __enter__(self) -> "Tracer":
        self.install()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.uninstall()
        self.close()
        return False

    def elapsed(self) -> float:
        """Seconds since this tracer's epoch (monotonic clock)."""
        return time.perf_counter() - self._epoch

    def _alloc_span_id(self) -> int:
        """Reserve one span id (used by cross-process span grafting)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    # -- spans ----------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        parent = _CURRENT_SPAN.get()
        span_id = self._alloc_span_id()
        record = SpanRecord(
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start=time.perf_counter() - self._epoch,
            attrs=dict(attrs),
        )
        if parent is not None:
            record.attrs["__path__"] = f"{parent.path}/{name}"
        else:
            record.attrs["__path__"] = name
        return _ActiveSpan(self, record)

    def _close_span(self, record: SpanRecord) -> None:
        record.duration = time.perf_counter() - self._epoch - record.start
        with self._lock:
            self.spans.append(record)
        for sink in self.sinks:
            sink.on_span(record)

    # -- metrics --------------------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        """Increment a counter (attributed to the active span too)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n
        active = _CURRENT_SPAN.get()
        if active is not None:
            active.counters[name] = active.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a gauge."""
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a histogram (bounded; see
        :data:`MAX_HISTOGRAM_SAMPLES`)."""
        with self._lock:
            values = self.histograms.setdefault(name, [])
            values.append(value)
            if len(values) > self.MAX_HISTOGRAM_SAMPLES:
                del values[: len(values) // 2]

    def metrics_snapshot(self) -> dict[str, Any]:
        """Aggregated metrics in export form."""
        with self._lock:
            hists = {
                name: _hist_stats(values) for name, values in self.histograms.items()
            }
            return {
                "type": "metrics",
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": hists,
            }

    # -- lifecycle / export ---------------------------------------------
    def close(self) -> None:
        """Flush the metric aggregates and close all sinks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        snapshot = self.metrics_snapshot()
        for sink in self.sinks:
            sink.on_metrics(snapshot)
            sink.close()

    def render_summary(self, top_counters: int = 12) -> str:
        """Human-readable span tree + top counters."""
        from .summary import render_summary

        return render_summary(
            self.spans, self.metrics_snapshot(), top_counters=top_counters
        )


def _hist_stats(values: list[float]) -> dict[str, float]:
    ordered = sorted(values)
    n = len(ordered)
    return {
        "count": n,
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / n,
        "p50": ordered[n // 2],
        "p95": ordered[min(n - 1, (n * 95) // 100)],
        "p99": ordered[min(n - 1, (n * 99) // 100)],
    }


# ----------------------------------------------------------------------
# Module-level primitives: the call sites scattered through the
# pipeline.  Each costs one ContextVar.get + one branch when disabled.
# ----------------------------------------------------------------------
def current_tracer() -> Tracer | None:
    """The tracer installed in the current context, if any."""
    return _ACTIVE.get()


def reset_context() -> None:
    """Detach any inherited tracer/active span from this context.

    A forked worker process inherits the parent's contextvars — tracer
    *and* open span — but must not report into them: the parent objects
    on its side of the fork are dead copies, and a child tracer
    installed on top would silently parent its spans under the stale
    inherited span.  Worker entry points call this first.
    """
    _ACTIVE.set(None)
    _CURRENT_SPAN.set(None)


def span(name: str, **attrs: Any):
    """Open a span under the active tracer (no-op when disabled)."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def count(name: str, n: float = 1) -> None:
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.count(name, n)


def gauge(name: str, value: float) -> None:
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.gauge(name, value)


def observe(name: str, value: float) -> None:
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.observe(name, value)


def traced(name: str | Callable | None = None, **attrs: Any):
    """Decorator form of :func:`span`.

    Usable bare (``@traced``) or configured
    (``@traced("charlib.cell", backend="spice")``); the span name
    defaults to the function's qualified name.
    """

    def decorate(func: Callable, span_name: str | None = None) -> Callable:
        label = span_name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any):
            tracer = _ACTIVE.get()
            if tracer is None:
                return func(*args, **kwargs)
            with tracer.span(label, **attrs):
                return func(*args, **kwargs)

        return wrapper

    if callable(name):
        return decorate(name)
    return lambda func: decorate(func, name)
