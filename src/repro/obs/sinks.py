"""Pluggable trace sinks: where completed spans and metrics go.

The :class:`~repro.obs.tracer.Tracer` keeps everything in memory by
itself (the default "sink"); the classes here add streaming exports.
A sink receives three callbacks:

* ``on_span(record)``   — once per completed span, in completion order;
* ``on_metrics(snapshot)`` — once, the aggregated counters/gauges/
  histograms at tracer close;
* ``close()``           — release resources (idempotent).

The JSONL format is one JSON object per line, ``{"type": "span", ...}``
for spans and a single trailing ``{"type": "metrics", ...}`` record —
append-friendly, greppable, and diffable between runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO

from .tracer import SpanRecord

__all__ = ["Sink", "InMemorySink", "JsonlSink", "read_jsonl"]


class Sink:
    """Base sink; subclasses override what they need."""

    def on_span(self, record: SpanRecord) -> None:
        pass

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


class InMemorySink(Sink):
    """Collects the stream into lists (useful for tests and tooling)."""

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.metrics: dict[str, Any] | None = None

    def on_span(self, record: SpanRecord) -> None:
        self.spans.append(record)

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        self.metrics = snapshot


class JsonlSink(Sink):
    """Streams the trace to a JSONL file (or any text stream)."""

    def __init__(self, target: str | Path | IO[str]):
        if hasattr(target, "write"):
            self._stream: IO[str] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._stream = open(target, "w")
            self._owns = True

    def on_span(self, record: SpanRecord) -> None:
        self._stream.write(json.dumps(record.to_dict()) + "\n")

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        self._stream.write(json.dumps(snapshot) + "\n")

    def close(self) -> None:
        self._stream.flush()
        if self._owns and not self._stream.closed:
            self._stream.close()


def read_jsonl(source: str | Path | IO[str]) -> tuple[list[SpanRecord], dict[str, Any]]:
    """Parse a JSONL trace back into span records + metrics snapshot.

    The inverse of :class:`JsonlSink`; powers ``repro report-trace``.
    Unknown record types are skipped so the format can grow.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        lines = Path(source).read_text().splitlines()
    spans: list[SpanRecord] = []
    metrics: dict[str, Any] = {"type": "metrics", "counters": {}, "gauges": {},
                               "histograms": {}}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        kind = obj.get("type")
        if kind == "span":
            spans.append(
                SpanRecord(
                    span_id=obj["id"],
                    parent_id=obj.get("parent"),
                    name=obj["name"],
                    start=obj["start"],
                    duration=obj.get("duration"),
                    attrs=obj.get("attrs", {}),
                    counters=obj.get("counters", {}),
                    status=obj.get("status", "ok"),
                )
            )
        elif kind == "metrics":
            metrics = obj
    return spans, metrics
