"""Pluggable trace sinks: where completed spans and metrics go.

The :class:`~repro.obs.tracer.Tracer` keeps everything in memory by
itself (the default "sink"); the classes here add streaming exports.
A sink receives three callbacks:

* ``on_span(record)``   — once per completed span, in completion order;
* ``on_metrics(snapshot)`` — once, the aggregated counters/gauges/
  histograms at tracer close;
* ``close()``           — release resources (idempotent).

The JSONL format is one JSON object per line, ``{"type": "span", ...}``
for spans and a single trailing ``{"type": "metrics", ...}`` record —
append-friendly, greppable, and diffable between runs.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, IO

from .tracer import SpanRecord

__all__ = [
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "TraceFormatWarning",
    "read_jsonl",
]


class TraceFormatWarning(UserWarning):
    """A trace file contained lines that could not be parsed."""


class Sink:
    """Base sink; subclasses override what they need."""

    def on_span(self, record: SpanRecord) -> None:
        pass

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


class InMemorySink(Sink):
    """Collects the stream into lists (useful for tests and tooling)."""

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.metrics: dict[str, Any] | None = None

    def on_span(self, record: SpanRecord) -> None:
        self.spans.append(record)

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        self.metrics = snapshot


class JsonlSink(Sink):
    """Streams the trace to a JSONL file (or any text stream).

    ``close`` is idempotent end-to-end: the signal-driven flush path
    (SIGINT/SIGTERM unwinding the CLI context stack) and the normal
    tracer close can both reach it, and a borrowed stream may already
    have been closed by its owner.  After the first close every
    callback is a silent no-op — never a partial write or a
    ``ValueError: I/O operation on closed file``.
    """

    def __init__(self, target: str | Path | IO[str]):
        if hasattr(target, "write"):
            self._stream: IO[str] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._stream = open(target, "w")
            self._owns = True
        self._closed = False

    def _write(self, line: str) -> None:
        if self._closed or self._stream.closed:
            return
        self._stream.write(line + "\n")

    def on_span(self, record: SpanRecord) -> None:
        self._write(json.dumps(record.to_dict()))

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        self._write(json.dumps(snapshot))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if not self._stream.closed:
            self._stream.flush()
            if self._owns:
                self._stream.close()


def read_jsonl(source: str | Path | IO[str]) -> tuple[list[SpanRecord], dict[str, Any]]:
    """Parse a JSONL trace back into span records + metrics snapshot.

    The inverse of :class:`JsonlSink`; powers ``repro report-trace``.
    Unknown record types are skipped so the format can grow, and a
    torn or malformed line (a run killed mid-write leaves a partial
    tail; a metrics-only file has no spans at all) is skipped with a
    :class:`TraceFormatWarning` instead of failing the whole report —
    everything parseable is still returned.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        lines = Path(source).read_text(errors="replace").splitlines()
    spans: list[SpanRecord] = []
    metrics: dict[str, Any] = {"type": "metrics", "counters": {}, "gauges": {},
                               "histograms": {}}
    skipped = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            skipped += 1
            warnings.warn(
                f"skipping malformed trace line {lineno} "
                f"(torn tail from an interrupted run?)",
                TraceFormatWarning,
                stacklevel=2,
            )
            continue
        if not isinstance(obj, dict):
            skipped += 1
            continue
        kind = obj.get("type")
        if kind == "span":
            try:
                spans.append(
                    SpanRecord(
                        span_id=obj["id"],
                        parent_id=obj.get("parent"),
                        name=obj["name"],
                        start=obj["start"],
                        duration=obj.get("duration"),
                        attrs=obj.get("attrs", {}),
                        counters=obj.get("counters", {}),
                        status=obj.get("status", "ok"),
                    )
                )
            except KeyError:
                skipped += 1
                warnings.warn(
                    f"skipping span record at line {lineno} with missing fields",
                    TraceFormatWarning,
                    stacklevel=2,
                )
        elif kind == "metrics":
            metrics = obj
    if skipped:
        metrics = dict(metrics)
        metrics["skipped_lines"] = skipped
    return spans, metrics
