"""Observability layer: tracing, metrics, and profiling (``repro.obs``).

The measurement substrate under the whole cryo-EDA pipeline.  Every
layer (synthesis passes, SPICE engine, characterization, calibration,
STA) reports into the context-local tracer via four primitives —
:func:`span`, :func:`count`, :func:`gauge`, :func:`observe` — all of
which are one-branch no-ops unless a :class:`Tracer` is installed.

Typical use::

    from repro import obs

    with obs.Tracer(sinks=[obs.JsonlSink("run.jsonl")]) as tracer:
        result = flow.run(aig)
    print(tracer.render_summary())

See ``docs/OBSERVABILITY.md`` for the span taxonomy and the CLI
surface (``--trace``, ``--profile``, ``repro report-trace``).
"""

from . import ledger, telemetry
from .parallel import effective_jobs, parallel_map
from .sinks import InMemorySink, JsonlSink, Sink, TraceFormatWarning, read_jsonl
from .summary import SummaryNode, build_summary, render_summary
from .telemetry import ResourceMonitor
from .tracer import (
    SpanRecord,
    Tracer,
    count,
    current_tracer,
    gauge,
    observe,
    span,
    traced,
)

__all__ = [
    "SpanRecord",
    "Tracer",
    "current_tracer",
    "span",
    "traced",
    "count",
    "gauge",
    "observe",
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "TraceFormatWarning",
    "read_jsonl",
    "ResourceMonitor",
    "telemetry",
    "ledger",
    "SummaryNode",
    "build_summary",
    "render_summary",
    "parallel_map",
    "effective_jobs",
]
