"""EPFL control/random-logic benchmark generators (10 circuits).

Programmatic counterparts of the EPFL suite's control half: arbiter,
cavlc, ctrl, dec, i2c, int2float, mem_ctrl, priority, router, voter.
``dec``, ``int2float``, ``priority``, and ``voter`` implement the exact
original semantics (width-parameterized); the protocol controllers
(cavlc, ctrl, i2c, mem_ctrl, router, arbiter) are representative
re-creations built from the same ingredients — priority chains,
opcode decoders, FSM next-state functions, field comparators — since
the original RTL is not redistributable.  The synthesis comparison
(Fig. 3) needs this structural class, not bit-exact H.264 tables.
"""

from __future__ import annotations

from ..synth.aig import AIG, CONST0, CONST1, lit_not
from .wordlevel import WordBuilder


def arbiter(requesters: int = 32) -> AIG:
    """Round-robin-masked priority arbiter.

    Grants exactly one of ``requesters`` request lines, using a mask
    word (the round-robin pointer state) so that masked requests win
    before unmasked ones — the EPFL arbiter's structure.
    """
    wb = WordBuilder("arbiter")
    req = wb.input_word("req", requesters)
    mask = wb.input_word("mask", requesters)
    masked = wb.and_word(req, mask)

    def priority_grant(lines: list[int]) -> list[int]:
        grants = []
        blocked = CONST0
        for line in lines:
            grants.append(wb.aig.add_and(line, lit_not(blocked)))
            blocked = wb.aig.add_or(blocked, line)
        return grants

    grant_masked = priority_grant(masked)
    grant_plain = priority_grant(req)
    any_masked = wb.reduce_or(masked)
    grant = wb.mux_word(any_masked, grant_masked, grant_plain)
    wb.output_word("grant", grant)
    wb.aig.add_po(wb.reduce_or(req), "busy")
    return wb.aig


def cavlc(symbols: int = 8) -> AIG:
    """CAVLC-style coefficient-token encoder (representative).

    Counts total/trailing coefficients of a symbol vector and selects
    a variable-length code through nested comparator/mux tables — the
    ingredient structure of the H.264 CAVLC block.
    """
    wb = WordBuilder("cavlc")
    coeff_nonzero = wb.input_word("nz", symbols)
    coeff_sign = wb.input_word("sign", symbols)
    table_sel = wb.input_word("tsel", 2)

    # total_coeff = popcount(nz) via a full-adder tree.
    def popcount(bits: list[int]) -> list[int]:
        words = [[b] for b in bits]
        while len(words) > 1:
            next_words = []
            for i in range(0, len(words) - 1, 2):
                a, b = words[i], words[i + 1]
                width = max(len(a), len(b)) + 1
                a = a + [CONST0] * (width - len(a))
                b = b + [CONST0] * (width - len(b))
                s, c = wb.add(a[: width - 1], b[: width - 1])
                next_words.append(s + [c])
            if len(words) % 2:
                next_words.append(words[-1])
            words = next_words
        return words[0]

    total = popcount(coeff_nonzero)
    # trailing ones: count consecutive sign bits from the top while nz.
    trailing = wb.constant(0, 2)
    run = CONST1
    for i in reversed(range(symbols)):
        is_one = wb.aig.add_and(coeff_nonzero[i], coeff_sign[i])
        run = wb.aig.add_and(run, is_one)
        inc, _ = wb.add(trailing, wb.constant(1, 2))
        trailing = wb.mux_word(run, inc, trailing)
    # Code selection: nested muxes keyed by table_sel and total.
    base_code = total + trailing
    alt_code = wb.xor_word(base_code, wb.constant(0b1011, len(base_code))[: len(base_code)])
    swapped = wb.mux_word(table_sel[0], alt_code, base_code)
    length_boost, _ = wb.add(swapped, wb.constant(3, len(swapped)))
    code = wb.mux_word(table_sel[1], length_boost, swapped)
    wb.output_word("code", code)
    wb.aig.add_po(wb.reduce_or(coeff_nonzero), "nonempty")
    return wb.aig


def ctrl(opcode_bits: int = 7) -> AIG:
    """Instruction-decoder control block (representative).

    Decodes an opcode into one-hot control lines plus derived strobe
    signals, the structure of the EPFL ``ctrl`` block.
    """
    wb = WordBuilder("ctrl")
    opcode = wb.input_word("op", opcode_bits)
    enable = wb.aig.add_pi("en")
    # Decode the low 4 bits to 16 one-hot lines gated by enable.
    lines = []
    for value in range(16):
        term = enable
        for bit in range(4):
            lit = opcode[bit]
            if not (value >> bit) & 1:
                lit = lit_not(lit)
            term = wb.aig.add_and(term, lit)
        lines.append(term)
    for i, line in enumerate(lines):
        wb.aig.add_po(line, f"sel{i}")
    # Derived strobes from the upper opcode bits.
    upper = opcode[4:]
    wb.aig.add_po(wb.reduce_and(upper), "priv")
    wb.aig.add_po(wb.reduce_xor(opcode), "parity")
    wb.aig.add_po(wb.aig.add_and(enable, wb.reduce_or(upper)), "ext")
    return wb.aig


def dec(address_bits: int = 8) -> AIG:
    """Full decoder: ``address_bits`` -> 2^address_bits one-hot lines."""
    wb = WordBuilder("dec")
    address = wb.input_word("a", address_bits)
    for value in range(1 << address_bits):
        term = CONST1
        for bit in range(address_bits):
            lit = address[bit]
            if not (value >> bit) & 1:
                lit = lit_not(lit)
            term = wb.aig.add_and(term, lit)
        wb.aig.add_po(term, f"line{value}")
    return wb.aig


def i2c(addr_bits: int = 7) -> AIG:
    """I2C-master next-state/control logic (representative).

    Computes the combinational next-state and bus-control outputs of a
    bit-banged I2C master: address match, acknowledge generation,
    shift enable, and arbitration-loss detection.
    """
    wb = WordBuilder("i2c")
    state = wb.input_word("state", 4)
    bit_count = wb.input_word("cnt", 3)
    shift_reg = wb.input_word("shift", 8)
    own_addr = wb.input_word("addr", addr_bits)
    sda_in = wb.aig.add_pi("sda")
    scl_in = wb.aig.add_pi("scl")
    start_req = wb.aig.add_pi("start")
    stop_req = wb.aig.add_pi("stop")

    addr_match = wb.equal(shift_reg[1 : 1 + addr_bits], own_addr)
    count_done = wb.reduce_and(bit_count)
    is_idle = wb.equal(state, wb.constant(0, 4))
    is_addr = wb.equal(state, wb.constant(1, 4))
    is_data = wb.equal(state, wb.constant(2, 4))
    is_ack = wb.equal(state, wb.constant(3, 4))

    next_state_idle = wb.mux_word(start_req, wb.constant(1, 4), wb.constant(0, 4))
    next_state_addr = wb.mux_word(count_done, wb.constant(3, 4), wb.constant(1, 4))
    next_state_data = wb.mux_word(count_done, wb.constant(3, 4), wb.constant(2, 4))
    ack_next = wb.mux_word(addr_match, wb.constant(2, 4), wb.constant(0, 4))
    next_state = wb.mux_word(is_idle, next_state_idle, wb.constant(0, 4))
    next_state = wb.mux_word(is_addr, next_state_addr, next_state)
    next_state = wb.mux_word(is_data, next_state_data, next_state)
    next_state = wb.mux_word(is_ack, ack_next, next_state)
    stop_gate = lit_not(stop_req)
    next_state = [wb.aig.add_and(b, stop_gate) for b in next_state]

    incremented, _ = wb.add(bit_count, wb.constant(1, 3))
    next_count = wb.mux_word(wb.aig.add_or(is_addr, is_data), incremented, bit_count)

    shifted = [sda_in] + shift_reg[:-1]
    shift_en = wb.aig.add_and(scl_in, wb.aig.add_or(is_addr, is_data))
    next_shift = wb.mux_word(shift_en, shifted, shift_reg)

    wb.output_word("next_state", next_state)
    wb.output_word("next_cnt", next_count)
    wb.output_word("next_shift", next_shift)
    wb.aig.add_po(wb.aig.add_and(is_ack, addr_match), "ack_out")
    wb.aig.add_po(wb.aig.add_and(sda_in, lit_not(scl_in)), "arb_lost")
    return wb.aig


def int2float(int_bits: int = 11, mantissa_bits: int = 4, exponent_bits: int = 3) -> AIG:
    """Integer to tiny-float conversion (exact EPFL semantics).

    Normalizes an ``int_bits`` unsigned integer into (exponent,
    mantissa) with leading-one detection and truncation — the EPFL
    int2float is an 11-bit to (3-exp, 4-mant) converter.
    """
    wb = WordBuilder("int2float")
    value = wb.input_word("x", int_bits)
    index, found = wb.leading_one_index(value)
    index_bits = len(index)
    # Shift value left so the leading one sits at the MSB.
    shift_amount = wb.sub(wb.constant(int_bits - 1, index_bits), index)[0]
    normalized = wb.shift_left(value, shift_amount)
    mantissa = normalized[int_bits - 1 - mantissa_bits : int_bits - 1]
    exponent = index[:exponent_bits]
    exponent = [wb.aig.add_and(e, found) for e in exponent]
    mantissa = [wb.aig.add_and(m, found) for m in mantissa]
    wb.output_word("exp", exponent)
    wb.output_word("mant", mantissa)
    return wb.aig


def mem_ctrl(banks: int = 4, addr_bits: int = 10, ports: int = 3) -> AIG:
    """Memory-controller slice (representative).

    Per-port bank decoding, inter-port priority arbitration per bank,
    refresh override, and data-path parity — the ingredient mix of the
    EPFL mem_ctrl block, width-parameterized.
    """
    wb = WordBuilder("mem_ctrl")
    bank_bits = max(1, (banks - 1).bit_length())
    reqs = [wb.aig.add_pi(f"req{p}") for p in range(ports)]
    addrs = [wb.input_word(f"addr{p}", addr_bits) for p in range(ports)]
    wdata = wb.input_word("wdata", 8)
    refresh = wb.aig.add_pi("refresh")

    grants_per_bank: list[list[int]] = []
    for bank in range(banks):
        bank_requests = []
        for p in range(ports):
            match = wb.equal(addrs[p][:bank_bits], wb.constant(bank, bank_bits))
            bank_requests.append(wb.aig.add_and(reqs[p], match))
        # Fixed-priority arbitration within the bank.
        grants = []
        blocked = refresh
        for line in bank_requests:
            grants.append(wb.aig.add_and(line, lit_not(blocked)))
            blocked = wb.aig.add_or(blocked, line)
        grants_per_bank.append(grants)
        wb.aig.add_po(wb.reduce_or(bank_requests), f"bank{bank}_busy")

    for p in range(ports):
        granted = wb.reduce_or([grants_per_bank[b][p] for b in range(banks)])
        wb.aig.add_po(granted, f"gnt{p}")
    # Row address of the granted port 0 request (mux through banks).
    row = addrs[0][bank_bits:]
    for p in range(1, ports):
        take = wb.reduce_or([grants_per_bank[b][p] for b in range(banks)])
        row = wb.mux_word(take, addrs[p][bank_bits:], row)
    wb.output_word("row", row)
    wb.aig.add_po(wb.reduce_xor(wdata), "wparity")
    return wb.aig


def priority(width: int = 64) -> AIG:
    """Priority encoder: one-hot grant of the lowest-index request."""
    wb = WordBuilder("priority")
    req = wb.input_word("req", width)
    blocked = CONST0
    for i in range(width):
        wb.aig.add_po(wb.aig.add_and(req[i], lit_not(blocked)), f"grant{i}")
        blocked = wb.aig.add_or(blocked, req[i])
    wb.aig.add_po(blocked, "any")
    return wb.aig


def router(flit_bits: int = 16, addr_bits: int = 6) -> AIG:
    """NoC-router route-computation logic (representative).

    Compares destination coordinates against the local address and
    produces one-hot output-port requests plus a parity-checked drop
    signal — the EPFL router's decision structure.
    """
    wb = WordBuilder("router")
    dest_x = wb.input_word("dx", addr_bits // 2)
    dest_y = wb.input_word("dy", addr_bits // 2)
    local_x = wb.input_word("lx", addr_bits // 2)
    local_y = wb.input_word("ly", addr_bits // 2)
    payload = wb.input_word("flit", flit_bits)
    valid = wb.aig.add_pi("valid")

    x_eq = wb.equal(dest_x, local_x)
    y_eq = wb.equal(dest_y, local_y)
    x_ge = wb.greater_equal(dest_x, local_x)
    y_ge = wb.greater_equal(dest_y, local_y)

    go_east = wb.aig.add_and(lit_not(x_eq), x_ge)
    go_west = wb.aig.add_and(lit_not(x_eq), lit_not(x_ge))
    go_north = wb.aig.add_and(x_eq, wb.aig.add_and(lit_not(y_eq), y_ge))
    go_south = wb.aig.add_and(x_eq, wb.aig.add_and(lit_not(y_eq), lit_not(y_ge)))
    go_local = wb.aig.add_and(x_eq, y_eq)

    parity = wb.reduce_xor(payload)
    ok = wb.aig.add_and(valid, lit_not(parity))
    for name, port in (
        ("east", go_east),
        ("west", go_west),
        ("north", go_north),
        ("south", go_south),
        ("local", go_local),
    ):
        wb.aig.add_po(wb.aig.add_and(port, ok), f"out_{name}")
    wb.aig.add_po(wb.aig.add_and(valid, parity), "drop")
    return wb.aig


def voter(inputs: int = 101) -> AIG:
    """Majority voter over an odd number of inputs (exact semantics).

    Counts ones with a full-adder compressor tree and compares against
    the majority threshold — structurally the EPFL voter at reduced
    width (the original is 1001 inputs).
    """
    if inputs % 2 == 0:
        raise ValueError("voter needs an odd number of inputs")
    wb = WordBuilder("voter")
    bits = wb.input_word("v", inputs)
    words = [[b] for b in bits]
    while len(words) > 1:
        next_words = []
        for i in range(0, len(words) - 1, 2):
            a, b = words[i], words[i + 1]
            width = max(len(a), len(b)) + 1
            a = a + [CONST0] * (width - len(a))
            b = b + [CONST0] * (width - len(b))
            s, c = wb.add(a[: width - 1], b[: width - 1])
            next_words.append(s + [c])
        if len(words) % 2:
            next_words.append(words[-1])
        words = next_words
    count = words[0]
    threshold = wb.constant(inputs // 2 + 1, len(count))
    wb.aig.add_po(wb.greater_equal(count, threshold), "majority")
    return wb.aig
