"""Word-level circuit builder over AIGs.

Provides the RTL-ish vocabulary (adders, shifters, multipliers,
comparators, multiplexers) from which the EPFL-class benchmark
generators compose their datapaths.  A *word* is a little-endian list
of AIG literals (index 0 = LSB).
"""

from __future__ import annotations

from ..synth.aig import AIG, CONST0, CONST1, lit_not


class WordBuilder:
    """Fluent word-level construction facade over an :class:`AIG`."""

    def __init__(self, name: str):
        self.aig = AIG(name)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def input_word(self, name: str, width: int) -> list[int]:
        """Add a ``width``-bit primary-input word."""
        if width < 1:
            raise ValueError("word width must be at least 1")
        return [self.aig.add_pi(f"{name}[{i}]") for i in range(width)]

    def output_word(self, name: str, word: list[int]) -> None:
        """Register a word as primary outputs."""
        for i, lit in enumerate(word):
            self.aig.add_po(lit, f"{name}[{i}]")

    def constant(self, value: int, width: int) -> list[int]:
        """Constant word."""
        return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]

    # ------------------------------------------------------------------
    # Bit utilities
    # ------------------------------------------------------------------
    def not_word(self, word: list[int]) -> list[int]:
        return [lit_not(b) for b in word]

    def and_word(self, a: list[int], b: list[int]) -> list[int]:
        self._check(a, b)
        return [self.aig.add_and(x, y) for x, y in zip(a, b)]

    def or_word(self, a: list[int], b: list[int]) -> list[int]:
        self._check(a, b)
        return [self.aig.add_or(x, y) for x, y in zip(a, b)]

    def xor_word(self, a: list[int], b: list[int]) -> list[int]:
        self._check(a, b)
        return [self.aig.add_xor(x, y) for x, y in zip(a, b)]

    def mux_word(self, sel: int, then_word: list[int], else_word: list[int]) -> list[int]:
        self._check(then_word, else_word)
        return [self.aig.add_mux(sel, t, e) for t, e in zip(then_word, else_word)]

    def reduce_or(self, word: list[int]) -> int:
        result = CONST0
        for bit in word:
            result = self.aig.add_or(result, bit)
        return result

    def reduce_and(self, word: list[int]) -> int:
        result = CONST1
        for bit in word:
            result = self.aig.add_and(result, bit)
        return result

    def reduce_xor(self, word: list[int]) -> int:
        result = CONST0
        for bit in word:
            result = self.aig.add_xor(result, bit)
        return result

    @staticmethod
    def _check(a: list[int], b: list[int]) -> None:
        if len(a) != len(b):
            raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """(sum, carry)."""
        s = self.aig.add_xor(self.aig.add_xor(a, b), cin)
        c = self.aig.add_maj(a, b, cin)
        return s, c

    def add(self, a: list[int], b: list[int], cin: int = CONST0) -> tuple[list[int], int]:
        """Ripple-carry addition -> (sum word, carry out)."""
        self._check(a, b)
        result = []
        carry = cin
        for x, y in zip(a, b):
            s, carry = self.full_adder(x, y, carry)
            result.append(s)
        return result, carry

    def sub(self, a: list[int], b: list[int]) -> tuple[list[int], int]:
        """a - b -> (difference, borrow-free flag: 1 when a >= b)."""
        diff, carry = self.add(a, self.not_word(b), CONST1)
        return diff, carry

    def neg(self, a: list[int]) -> list[int]:
        """Two's complement negation."""
        result, _ = self.add(self.not_word(a), self.constant(1, len(a)))
        return result

    def greater_equal(self, a: list[int], b: list[int]) -> int:
        """Unsigned a >= b."""
        _, carry = self.sub(a, b)
        return carry

    def equal(self, a: list[int], b: list[int]) -> int:
        self._check(a, b)
        return lit_not(self.reduce_or(self.xor_word(a, b)))

    def mul(self, a: list[int], b: list[int], width: int | None = None) -> list[int]:
        """Shift-and-add multiplication.

        Result truncated/extended to ``width`` (default: len(a)+len(b)).
        """
        out_width = width if width is not None else len(a) + len(b)
        acc = self.constant(0, out_width)
        for i, bit in enumerate(b):
            partial = self.constant(0, out_width)
            for j, abit in enumerate(a):
                if i + j < out_width:
                    partial[i + j] = self.aig.add_and(abit, bit)
            acc, _ = self.add(acc, partial)
        return acc

    def square(self, a: list[int], width: int | None = None) -> list[int]:
        return self.mul(a, a, width)

    def shift_left(self, a: list[int], amount: list[int]) -> list[int]:
        """Barrel shifter: logical left shift by a variable amount."""
        current = list(a)
        for stage, sel in enumerate(amount):
            step = 1 << stage
            shifted = [CONST0] * min(step, len(a)) + current[: len(a) - step]
            shifted = shifted[: len(a)]
            while len(shifted) < len(a):
                shifted.append(CONST0)
            current = self.mux_word(sel, shifted, current)
        return current

    def shift_right(self, a: list[int], amount: list[int]) -> list[int]:
        current = list(a)
        for stage, sel in enumerate(amount):
            step = 1 << stage
            shifted = current[step:] + [CONST0] * min(step, len(a))
            shifted = shifted[: len(a)]
            current = self.mux_word(sel, shifted, current)
        return current

    def rotate_left(self, a: list[int], amount: list[int]) -> list[int]:
        current = list(a)
        n = len(a)
        for stage, sel in enumerate(amount):
            step = (1 << stage) % n
            rotated = current[n - step :] + current[: n - step]
            current = self.mux_word(sel, rotated, current)
        return current

    def divide(self, dividend: list[int], divisor: list[int]) -> tuple[list[int], list[int]]:
        """Restoring division -> (quotient, remainder)."""
        n = len(dividend)
        m = len(divisor)
        remainder = self.constant(0, m + 1)
        divisor_ext = divisor + [CONST0]
        quotient = [CONST0] * n
        for i in reversed(range(n)):
            # Shift remainder left, bring in the next dividend bit.
            remainder = [dividend[i]] + remainder[:-1]
            diff, no_borrow = self.sub(remainder, divisor_ext)
            quotient[i] = no_borrow
            remainder = self.mux_word(no_borrow, diff, remainder)
        return quotient, remainder[:m]

    def isqrt(self, value: list[int]) -> list[int]:
        """Integer square root (digit-recurrence, restoring)."""
        n = len(value)
        if n % 2:
            value = value + [CONST0]
            n += 1
        half = n // 2
        remainder = self.constant(0, n + 2)
        root = self.constant(0, half)
        for i in reversed(range(half)):
            # Bring down the next two bits.
            remainder = [value[2 * i], value[2 * i + 1]] + remainder[:-2]
            # Trial subtrahend: (root << 2) | 01  -> 4*root + 1.
            trial = [CONST1, CONST0] + root + [CONST0] * (len(remainder) - half - 2)
            trial = trial[: len(remainder)]
            diff, fits = self.sub(remainder, trial)
            remainder = self.mux_word(fits, diff, remainder)
            root = [fits] + root[:-1]
        return root

    def leading_one_index(self, word: list[int]) -> tuple[list[int], int]:
        """Index of the most significant 1 -> (index word, any-bit flag).

        The index word has ceil(log2(len(word))) bits.
        """
        n = len(word)
        bits = max(1, (n - 1).bit_length())
        index = self.constant(0, bits)
        found = CONST0
        for i in range(n):  # LSB to MSB: later (higher) bits win
            bit = word[i]
            candidate = self.constant(i, bits)
            index = self.mux_word(bit, candidate, index)
            found = self.aig.add_or(found, bit)
        return index, found
