"""EPFL arithmetic benchmark generators (10 circuits).

Programmatic re-creations of the EPFL combinational suite's arithmetic
half: adder, barrel shifter (bar), divisor (div), hypotenuse (hyp),
log2, max, multiplier, sine (sin), square-root (sqrt), and square.
Each generator is width-parameterized; the defaults are scaled so the
*full suite* synthesizes through the pure-Python flow in minutes while
preserving the structural character of the originals (ripple/carry
chains, digit-recurrence dividers, shift-add cores, mux trees).
"""

from __future__ import annotations

from ..synth.aig import AIG, CONST0
from .wordlevel import WordBuilder


def adder(width: int = 64) -> AIG:
    """Ripple-carry adder: two ``width``-bit inputs, width+1 outputs."""
    wb = WordBuilder("adder")
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)
    total, carry = wb.add(a, b)
    wb.output_word("sum", total + [carry])
    return wb.aig


def bar(width: int = 32) -> AIG:
    """Barrel shifter: variable left-rotate of a ``width``-bit word."""
    if width & (width - 1):
        raise ValueError("barrel shifter width must be a power of two")
    shift_bits = width.bit_length() - 1
    wb = WordBuilder("bar")
    data = wb.input_word("data", width)
    amount = wb.input_word("shift", shift_bits)
    wb.output_word("out", wb.rotate_left(data, amount))
    return wb.aig


def div(width: int = 16) -> AIG:
    """Restoring divider: quotient and remainder of two words."""
    wb = WordBuilder("div")
    dividend = wb.input_word("n", width)
    divisor = wb.input_word("d", width)
    quotient, remainder = wb.divide(dividend, divisor)
    wb.output_word("q", quotient)
    wb.output_word("r", remainder)
    return wb.aig


def hyp(width: int = 12) -> AIG:
    """Hypotenuse: isqrt(a^2 + b^2)."""
    wb = WordBuilder("hyp")
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)
    a2 = wb.square(a, 2 * width)
    b2 = wb.square(b, 2 * width)
    total, carry = wb.add(a2, b2)
    root = wb.isqrt(total + [carry, CONST0])
    wb.output_word("h", root)
    return wb.aig


def log2(width: int = 16, frac_bits: int = 4) -> AIG:
    """Base-2 logarithm: integer part + linear-interpolated fraction.

    Computes floor(log2(x)) by leading-one detection and approximates
    the fractional part by the normalized mantissa bits below the
    leading one (the classic piecewise-linear log approximation the
    hardware log2 blocks use).
    """
    wb = WordBuilder("log2")
    x = wb.input_word("x", width)
    index, found = wb.leading_one_index(x)
    # Normalize: shift x left so the leading one reaches the MSB, then
    # the next bits form the fraction.
    int_bits = len(index)
    max_shift = width - 1
    shift_amount = wb.sub(wb.constant(max_shift, int_bits), index)[0]
    normalized = wb.shift_left(x, shift_amount)
    fraction = normalized[width - 1 - frac_bits : width - 1]
    wb.output_word("int", index)
    wb.output_word("frac", fraction)
    wb.aig.add_po(found, "valid")
    return wb.aig


def max_circuit(width: int = 32, operands: int = 4) -> AIG:
    """Maximum of several unsigned words (comparator + mux tree)."""
    wb = WordBuilder("max")
    words = [wb.input_word(f"w{i}", width) for i in range(operands)]
    current = words[0]
    for contender in words[1:]:
        keep = wb.greater_equal(current, contender)
        current = wb.mux_word(keep, current, contender)
    wb.output_word("max", current)
    return wb.aig


def multiplier(width: int = 12) -> AIG:
    """Shift-and-add array multiplier."""
    wb = WordBuilder("multiplier")
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)
    wb.output_word("p", wb.mul(a, b))
    return wb.aig


def sin(width: int = 12) -> AIG:
    """Fixed-point sine over a quarter period (shift-add polynomial).

    Input x in [0, 1) scaled to ``width`` bits represents an angle of
    x * pi/2; output approximates sin(x * pi/2) in the same fixed-point
    format via the odd polynomial  c1*x - c3*x^3  with shift-add
    constant multipliers — the structure of hardware sine datapaths.
    """
    wb = WordBuilder("sin")
    x = wb.input_word("x", width)
    # x^2 and x^3, truncated back to `width` fractional bits.
    x2_full = wb.square(x, 2 * width)
    x2 = x2_full[width:]  # keep the top bits: x^2 in same format
    x3_full = wb.mul(x2, x, 2 * width)
    x3 = x3_full[width:]
    # sin(pi/2 * x) ~ 1.5708 x - 0.6460 x^3 (minimax-ish over [0,1)).
    # Constant multiplication by shift-add: 1.5708 ~ 1 + 1/2 + 1/16,
    # 0.6460 ~ 1/2 + 1/8 + 1/64.
    def const_mul(word, shifts):
        acc = wb.constant(0, width + 1)
        for shift in shifts:
            shifted = (word[shift:] + [CONST0] * shift) if shift else list(word)
            shifted = shifted + [CONST0]
            acc, _ = wb.add(acc, shifted[: width + 1])
        return acc

    term1 = const_mul(x, [0, 1, 4])
    term3 = const_mul(x3, [1, 3, 6])
    result, _ = wb.sub(term1, term3)
    wb.output_word("sin", result[:width])
    return wb.aig


def sqrt(width: int = 16) -> AIG:
    """Integer square root (digit recurrence)."""
    wb = WordBuilder("sqrt")
    x = wb.input_word("x", width)
    wb.output_word("r", wb.isqrt(x))
    return wb.aig


def square(width: int = 16) -> AIG:
    """Squarer: x * x."""
    wb = WordBuilder("square")
    x = wb.input_word("x", width)
    wb.output_word("p", wb.square(x))
    return wb.aig
