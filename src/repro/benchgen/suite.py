"""The EPFL benchmark suite registry.

All twenty circuits of the EPFL combinational benchmark suite, as
generator functions with size presets:

* ``small``  — fast preset for tests,
* ``default`` — the preset the benchmark harness uses (full suite
  synthesizes in minutes in pure Python),
* ``large``  — closest to the original EPFL widths (expensive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..synth.aig import AIG
from . import arithmetic, control


@dataclass(frozen=True)
class BenchmarkSpec:
    """One suite entry: a generator plus its size presets."""

    name: str
    category: str  # "arithmetic" | "control"
    generator: Callable[..., AIG]
    small: dict
    default: dict
    large: dict

    def build(self, preset: str = "default") -> AIG:
        params = getattr(self, preset)
        aig = self.generator(**params)
        aig.name = self.name
        return aig


EPFL_SUITE: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec(
            "adder", "arithmetic", arithmetic.adder,
            small={"width": 16}, default={"width": 64}, large={"width": 128},
        ),
        BenchmarkSpec(
            "bar", "arithmetic", arithmetic.bar,
            small={"width": 16}, default={"width": 32}, large={"width": 128},
        ),
        BenchmarkSpec(
            "div", "arithmetic", arithmetic.div,
            small={"width": 8}, default={"width": 16}, large={"width": 32},
        ),
        BenchmarkSpec(
            "hyp", "arithmetic", arithmetic.hyp,
            small={"width": 6}, default={"width": 10}, large={"width": 16},
        ),
        BenchmarkSpec(
            "log2", "arithmetic", arithmetic.log2,
            small={"width": 8}, default={"width": 16}, large={"width": 32},
        ),
        BenchmarkSpec(
            "max", "arithmetic", arithmetic.max_circuit,
            small={"width": 8, "operands": 4},
            default={"width": 32, "operands": 4},
            large={"width": 128, "operands": 4},
        ),
        BenchmarkSpec(
            "multiplier", "arithmetic", arithmetic.multiplier,
            small={"width": 6}, default={"width": 12}, large={"width": 24},
        ),
        BenchmarkSpec(
            "sin", "arithmetic", arithmetic.sin,
            small={"width": 8}, default={"width": 12}, large={"width": 20},
        ),
        BenchmarkSpec(
            "sqrt", "arithmetic", arithmetic.sqrt,
            small={"width": 8}, default={"width": 16}, large={"width": 48},
        ),
        BenchmarkSpec(
            "square", "arithmetic", arithmetic.square,
            small={"width": 8}, default={"width": 16}, large={"width": 32},
        ),
        BenchmarkSpec(
            "arbiter", "control", control.arbiter,
            small={"requesters": 8}, default={"requesters": 32}, large={"requesters": 128},
        ),
        BenchmarkSpec(
            "cavlc", "control", control.cavlc,
            small={"symbols": 4}, default={"symbols": 8}, large={"symbols": 16},
        ),
        BenchmarkSpec(
            "ctrl", "control", control.ctrl,
            small={"opcode_bits": 5}, default={"opcode_bits": 7}, large={"opcode_bits": 7},
        ),
        BenchmarkSpec(
            "dec", "control", control.dec,
            small={"address_bits": 5}, default={"address_bits": 8}, large={"address_bits": 8},
        ),
        BenchmarkSpec(
            "i2c", "control", control.i2c,
            small={"addr_bits": 4}, default={"addr_bits": 7}, large={"addr_bits": 7},
        ),
        BenchmarkSpec(
            "int2float", "control", control.int2float,
            small={"int_bits": 8}, default={"int_bits": 11}, large={"int_bits": 11},
        ),
        BenchmarkSpec(
            "mem_ctrl", "control", control.mem_ctrl,
            small={"banks": 2, "addr_bits": 6, "ports": 2},
            default={"banks": 4, "addr_bits": 10, "ports": 3},
            large={"banks": 8, "addr_bits": 14, "ports": 4},
        ),
        BenchmarkSpec(
            "priority", "control", control.priority,
            small={"width": 16}, default={"width": 64}, large={"width": 128},
        ),
        BenchmarkSpec(
            "router", "control", control.router,
            small={"flit_bits": 8, "addr_bits": 4},
            default={"flit_bits": 16, "addr_bits": 6},
            large={"flit_bits": 32, "addr_bits": 8},
        ),
        BenchmarkSpec(
            "voter", "control", control.voter,
            small={"inputs": 25}, default={"inputs": 101}, large={"inputs": 501},
        ),
    ]
}


def build_circuit(name: str, preset: str = "default") -> AIG:
    """Build one suite circuit by name."""
    if name not in EPFL_SUITE:
        raise KeyError(f"unknown benchmark {name!r}; choose from {sorted(EPFL_SUITE)}")
    return EPFL_SUITE[name].build(preset)


def build_suite(preset: str = "default", names: list[str] | None = None) -> dict[str, AIG]:
    """Build the whole suite (or a named subset)."""
    selected = names or sorted(EPFL_SUITE)
    return {name: build_circuit(name, preset) for name in selected}
