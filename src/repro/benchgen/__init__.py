"""EPFL-class benchmark circuit generators (all 20 suite circuits)."""

from .wordlevel import WordBuilder
from .suite import EPFL_SUITE, BenchmarkSpec, build_circuit, build_suite
from . import arithmetic, control

__all__ = [
    "WordBuilder",
    "EPFL_SUITE",
    "BenchmarkSpec",
    "build_circuit",
    "build_suite",
    "arithmetic",
    "control",
]
