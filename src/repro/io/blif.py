"""BLIF reader/writer for LUT networks.

The Berkeley Logic Interchange Format is how LUT-level netlists move
between academic tools.  ``.names`` tables are written as minimized
cube covers (via ISOP) and read back into truth tables.
"""

from __future__ import annotations

from ..synth.isop import Cube, cover_to_tt, isop
from ..synth.lutnet import LUTNetwork
from ..synth.truth import tt_mask


def write_blif(network: LUTNetwork, model: str | None = None) -> str:
    """Serialize a LUT network to BLIF."""
    def pi_name(i: int) -> str:
        if i < len(network.pi_names):
            return network.pi_names[i]
        return f"pi{i}"

    def net_name(node: int) -> str:
        if node == 0:
            return "const0"
        if network.is_pi(node):
            return pi_name(node - 1)
        return f"n{node}"

    lines = [f".model {model or network.name}"]
    lines.append(".inputs " + " ".join(pi_name(i) for i in range(network.num_pis)))
    po_names = [
        network.po_names[i] if i < len(network.po_names) else f"po{i}"
        for i in range(len(network.outputs))
    ]
    lines.append(".outputs " + " ".join(po_names))

    uses_const0 = any(node == 0 for node, _ in network.outputs)
    for index, lut in enumerate(network.luts):
        node = network.lut_id(index)
        k = len(lut.leaves)
        lines.append(
            ".names " + " ".join(net_name(l) for l in lut.leaves) + f" {net_name(node)}"
        )
        cover = isop(lut.table & tt_mask(k), 0, k)
        for cube in cover:
            pattern = "".join(
                "1" if (cube.pos >> v) & 1 else "0" if (cube.neg >> v) & 1 else "-"
                for v in range(k)
            )
            lines.append(f"{pattern} 1")
        if not cover:
            # Constant-0 LUT: an empty cover means always 0 in BLIF.
            pass
    if uses_const0:
        lines.append(".names const0")
    for (node, compl), name in zip(network.outputs, po_names):
        source = net_name(node)
        lines.append(f".names {source} {name}")
        lines.append(("0" if compl else "1") + " 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def parse_blif(text: str) -> LUTNetwork:
    """Parse a (single-model, combinational) BLIF file."""
    # Join continuation lines and strip comments.
    raw_lines = []
    pending = ""
    for line in text.splitlines():
        line = line.split("#", 1)[0].rstrip()
        if not line:
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        raw_lines.append(pending + line)
        pending = ""
    if pending:
        raw_lines.append(pending)

    model = "blif"
    inputs: list[str] = []
    outputs: list[str] = []
    tables: list[tuple[list[str], str, list[str]]] = []  # (ins, out, cubes)
    current: tuple[list[str], str, list[str]] | None = None

    for line in raw_lines:
        tokens = line.split()
        if tokens[0] == ".model":
            model = tokens[1] if len(tokens) > 1 else model
        elif tokens[0] == ".inputs":
            inputs.extend(tokens[1:])
        elif tokens[0] == ".outputs":
            outputs.extend(tokens[1:])
        elif tokens[0] == ".names":
            current = (tokens[1:-1], tokens[-1], [])
            tables.append(current)
        elif tokens[0] == ".end":
            current = None
        elif tokens[0].startswith("."):
            raise ValueError(f"unsupported BLIF construct {tokens[0]!r}")
        else:
            if current is None:
                raise ValueError(f"cube line outside .names: {line!r}")
            current[2].append(line)

    network = LUTNetwork(len(inputs), name=model)
    network.pi_names = list(inputs)
    node_of: dict[str, int] = {name: i + 1 for i, name in enumerate(inputs)}

    for ins, out, cube_lines in tables:
        k = len(ins)
        table = 0
        for cube_line in cube_lines:
            parts = cube_line.split()
            if len(parts) == 1:
                pattern, value = "", parts[0]
            else:
                pattern, value = parts[0], parts[1]
            if value != "1":
                raise ValueError("only on-set (output 1) cubes are supported")
            pos = neg = 0
            for v, ch in enumerate(pattern):
                if ch == "1":
                    pos |= 1 << v
                elif ch == "0":
                    neg |= 1 << v
                elif ch != "-":
                    raise ValueError(f"bad cube character {ch!r}")
            table |= _cube_tt(pos, neg, k)
        leaf_ids = tuple(node_of[name] for name in ins)
        node_of[out] = network.add_lut(leaf_ids, table)

    for name in outputs:
        if name not in node_of:
            raise ValueError(f"output {name!r} is never defined")
        network.outputs.append((node_of[name], False))
        network.po_names.append(name)
    return network


def _cube_tt(pos: int, neg: int, k: int) -> int:
    return cover_to_tt([Cube(pos, neg)], k)
