"""Structural Verilog writer for mapped netlists.

Produces the gate-level Verilog a place-and-route flow would consume:
one module instantiating library cells by name with named port
connections.  Net names are sanitized into Verilog identifiers.
"""

from __future__ import annotations

import re

from ..mapping.netlist import GateInstance, MappedNetlist

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _sanitize(name: str) -> str:
    if _IDENT_RE.match(name):
        return name
    # Escape bus-style names like a[3] into a_3_.
    cleaned = re.sub(r"[^\w$]", "_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "n_" + cleaned
    return cleaned


def write_verilog(netlist: MappedNetlist, module: str | None = None) -> str:
    """Serialize a mapped netlist to structural Verilog."""
    module_name = _sanitize(module or netlist.name or "top")
    rename: dict[str, str] = {}
    used: set[str] = set()

    def net(name: str) -> str:
        if name in rename:
            return rename[name]
        candidate = _sanitize(name)
        base = candidate
        suffix = 1
        while candidate in used:
            candidate = f"{base}_{suffix}"
            suffix += 1
        used.add(candidate)
        rename[name] = candidate
        return candidate

    pis = [net(n) for n in netlist.pi_nets]
    pos = [net(n) for n in netlist.po_nets]

    lines = [f"module {module_name} ("]
    ports = [f"  input  {p}" for p in pis] + [f"  output {p}" for p in pos]
    lines.append(",\n".join(ports))
    lines.append(");")

    internal = []
    for gate in netlist.gates:
        name = net(gate.output_net)
        if name not in pis and name not in pos:
            internal.append(name)
    for chunk_start in range(0, len(internal), 10):
        chunk = internal[chunk_start : chunk_start + 10]
        lines.append("  wire " + ", ".join(chunk) + ";")

    for gate in netlist.gates:
        connections = [f".{pin}({net(source)})" for pin, source in gate.pins.items()]
        connections.append(f".{gate.output_pin}({net(gate.output_net)})")
        lines.append(f"  {gate.cell} {_sanitize(gate.name)} ({', '.join(connections)});")

    # PO aliases when an output net is also an internal/PI net name.
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(r"[A-Za-z_][\w$]*|[().,;]")


def parse_verilog(text: str) -> MappedNetlist:
    """Parse a flat structural Verilog module into a mapped netlist.

    Supports the subset this package writes (and that gate-level
    netlists from synthesis tools commonly use): one module,
    input/output/wire declarations, and cell instances with named port
    connections.  The output pin of an instance is recognized as the
    port driving a net not driven elsewhere; by convention (and in our
    writer) it is the *last* connection of the instance.
    """
    # Strip comments.
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    tokens = _TOKEN_RE.findall(text)
    pos = 0

    def expect(value: str) -> None:
        nonlocal pos
        if pos >= len(tokens) or tokens[pos] != value:
            found = tokens[pos] if pos < len(tokens) else "<eof>"
            raise ValueError(f"expected {value!r}, found {found!r}")
        pos += 1

    def take() -> str:
        nonlocal pos
        if pos >= len(tokens):
            raise ValueError("unexpected end of file")
        token = tokens[pos]
        pos += 1
        return token

    expect("module")
    name = take()
    netlist = MappedNetlist(name)

    # Port list: (input a, output b, ...) or plain names.
    if tokens[pos] == "(":
        pos += 1
        direction = None
        while tokens[pos] != ")":
            token = take()
            if token in ("input", "output", "wire", ","):
                if token in ("input", "output"):
                    direction = token
                continue
            if direction == "input":
                netlist.pi_nets.append(token)
            elif direction == "output":
                netlist.po_nets.append(token)
        pos += 1  # ')'
    expect(";")

    while pos < len(tokens) and tokens[pos] != "endmodule":
        token = take()
        if token in ("input", "output", "wire"):
            while tokens[pos] != ";":
                net = take()
                if net == ",":
                    continue
                if token == "input" and net not in netlist.pi_nets:
                    netlist.pi_nets.append(net)
                elif token == "output" and net not in netlist.po_nets:
                    netlist.po_nets.append(net)
            pos += 1
            continue
        # Cell instance: CELL name ( .pin(net), ... );
        cell_name = token
        instance = take()
        expect("(")
        connections: list[tuple[str, str]] = []
        while tokens[pos] != ")":
            if tokens[pos] == ",":
                pos += 1
                continue
            expect(".")
            pin = take()
            expect("(")
            net = take()
            expect(")")
            connections.append((pin, net))
        pos += 1  # ')'
        expect(";")
        if not connections:
            raise ValueError(f"instance {instance!r} has no connections")
        output_pin, output_net = connections[-1]
        pins = dict(connections[:-1])
        netlist.gates.append(
            GateInstance(
                name=instance,
                cell=cell_name,
                pins=pins,
                output_net=output_net,
                output_pin=output_pin,
            )
        )
    if pos >= len(tokens):
        raise ValueError("missing endmodule")
    return netlist
