"""AIGER format reader/writer (ASCII ``aag`` and binary ``aig``).

AIGER is the interchange format of the logic-synthesis community (ABC,
the EPFL suite, and the hardware model-checking competitions all speak
it).  Both the ASCII variant and the delta-encoded binary variant are
supported, including symbol tables.
"""

from __future__ import annotations

from ..synth.aig import AIG, lit_var


def write_ascii(aig: AIG) -> str:
    """Serialize to the ASCII ``aag`` format."""
    n_ands = aig.num_ands
    max_var = aig.num_pis + n_ands
    lines = [f"aag {max_var} {aig.num_pis} 0 {aig.num_pos} {n_ands}"]
    # AIGER requires inputs to take literals 2, 4, ... — our AIG
    # allocates PIs first, so node ids already match.
    remap = _build_remap(aig)
    for node in aig.pis:
        lines.append(str(remap[node]))
    for po in aig.pos:
        lines.append(str(remap[lit_var(po)] ^ (po & 1)))
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        lhs = remap[node]
        rhs0 = remap[lit_var(f0)] ^ (f0 & 1)
        rhs1 = remap[lit_var(f1)] ^ (f1 & 1)
        if rhs0 < rhs1:
            rhs0, rhs1 = rhs1, rhs0
        lines.append(f"{lhs} {rhs0} {rhs1}")
    for i, name in enumerate(aig.pi_names):
        lines.append(f"i{i} {name}")
    for i, name in enumerate(aig.po_names):
        lines.append(f"o{i} {name}")
    return "\n".join(lines) + "\n"


def _build_remap(aig: AIG) -> dict[int, int]:
    """Old node id -> AIGER literal (positive), PIs first then ANDs."""
    remap = {0: 0}
    next_var = 1
    for node in aig.pis:
        remap[node] = 2 * next_var
        next_var += 1
    for node in aig.and_nodes():
        remap[node] = 2 * next_var
        next_var += 1
    return remap


def parse_ascii(text: str) -> AIG:
    """Parse the ASCII ``aag`` format."""
    lines = [line.strip() for line in text.strip().splitlines()]
    if not lines or not lines[0].startswith("aag "):
        raise ValueError("not an ASCII AIGER file")
    header = lines[0].split()
    max_var, n_in, n_latch, n_out, n_and = (int(x) for x in header[1:6])
    if n_latch:
        raise ValueError("latches are not supported (combinational AIGs only)")
    index = 1
    aig = AIG()
    lit_map: dict[int, int] = {0: 0, 1: 1}
    for _ in range(n_in):
        lit = int(lines[index])
        index += 1
        new_lit = aig.add_pi()
        lit_map[lit] = new_lit
        lit_map[lit ^ 1] = new_lit ^ 1
    out_lits = []
    for _ in range(n_out):
        out_lits.append(int(lines[index]))
        index += 1
    and_rows = []
    for _ in range(n_and):
        lhs, rhs0, rhs1 = (int(x) for x in lines[index].split())
        and_rows.append((lhs, rhs0, rhs1))
        index += 1
    for lhs, rhs0, rhs1 in and_rows:
        a = lit_map[rhs0 & ~1] ^ (rhs0 & 1)
        b = lit_map[rhs1 & ~1] ^ (rhs1 & 1)
        new_lit = aig.add_and(a, b)
        lit_map[lhs] = new_lit
        lit_map[lhs ^ 1] = new_lit ^ 1
    for lit in out_lits:
        aig.add_po(lit_map[lit & ~1] ^ (lit & 1))
    # Symbol table.
    while index < len(lines) and lines[index] and lines[index][0] in "ilo":
        tag = lines[index]
        kind, rest = tag[0], tag[1:]
        pos_str, _, name = rest.partition(" ")
        position = int(pos_str)
        if kind == "i" and position < len(aig.pi_names):
            aig.pi_names[position] = name
        elif kind == "o" and position < len(aig.po_names):
            aig.po_names[position] = name
        index += 1
    return aig


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------
def _encode_delta(value: int) -> bytes:
    """LEB128-style 7-bit group encoding used by binary AIGER."""
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def _decode_delta(data: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def write_binary(aig: AIG) -> bytes:
    """Serialize to the binary ``aig`` format."""
    n_ands = aig.num_ands
    max_var = aig.num_pis + n_ands
    remap = _build_remap(aig)
    out = bytearray()
    out += f"aig {max_var} {aig.num_pis} 0 {aig.num_pos} {n_ands}\n".encode()
    for po in aig.pos:
        out += f"{remap[lit_var(po)] ^ (po & 1)}\n".encode()
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        lhs = remap[node]
        rhs0 = remap[lit_var(f0)] ^ (f0 & 1)
        rhs1 = remap[lit_var(f1)] ^ (f1 & 1)
        if rhs0 < rhs1:
            rhs0, rhs1 = rhs1, rhs0
        if lhs <= rhs0:
            raise ValueError("binary AIGER requires topologically increasing nodes")
        out += _encode_delta(lhs - rhs0)
        out += _encode_delta(rhs0 - rhs1)
    for i, name in enumerate(aig.pi_names):
        out += f"i{i} {name}\n".encode()
    for i, name in enumerate(aig.po_names):
        out += f"o{i} {name}\n".encode()
    return bytes(out)


def parse_binary(data: bytes) -> AIG:
    """Parse the binary ``aig`` format."""
    newline = data.index(b"\n")
    header = data[:newline].decode().split()
    if header[0] != "aig":
        raise ValueError("not a binary AIGER file")
    max_var, n_in, n_latch, n_out, n_and = (int(x) for x in header[1:6])
    if n_latch:
        raise ValueError("latches are not supported (combinational AIGs only)")
    pos = newline + 1
    out_lits = []
    for _ in range(n_out):
        end = data.index(b"\n", pos)
        out_lits.append(int(data[pos:end]))
        pos = end + 1
    aig = AIG()
    lit_map: dict[int, int] = {0: 0, 1: 1}
    for i in range(n_in):
        new_lit = aig.add_pi()
        lit_map[2 * (i + 1)] = new_lit
        lit_map[2 * (i + 1) + 1] = new_lit ^ 1
    for i in range(n_and):
        lhs = 2 * (n_in + i + 1)
        delta0, pos = _decode_delta(data, pos)
        delta1, pos = _decode_delta(data, pos)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        a = lit_map[rhs0 & ~1] ^ (rhs0 & 1)
        b = lit_map[rhs1 & ~1] ^ (rhs1 & 1)
        new_lit = aig.add_and(a, b)
        lit_map[lhs] = new_lit
        lit_map[lhs ^ 1] = new_lit ^ 1
    for lit in out_lits:
        aig.add_po(lit_map[lit & ~1] ^ (lit & 1))
    # Symbol table (text suffix).
    rest = data[pos:].decode(errors="replace")
    for line in rest.splitlines():
        if not line or line[0] not in "ilo":
            continue
        if line.startswith("c"):
            break
        kind, body = line[0], line[1:]
        pos_str, _, name = body.partition(" ")
        try:
            position = int(pos_str)
        except ValueError:
            continue
        if kind == "i" and position < len(aig.pi_names):
            aig.pi_names[position] = name
        elif kind == "o" and position < len(aig.po_names):
            aig.po_names[position] = name
    return aig
