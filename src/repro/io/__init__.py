"""Interchange formats: AIGER (ascii/binary), BLIF, structural Verilog."""

from .aiger import parse_ascii, parse_binary, write_ascii, write_binary
from .blif import parse_blif, write_blif
from .verilog import parse_verilog, write_verilog
from .dot import aig_to_dot, netlist_to_dot

__all__ = [
    "parse_ascii",
    "parse_binary",
    "write_ascii",
    "write_binary",
    "parse_blif",
    "write_blif",
    "aig_to_dot",
    "netlist_to_dot",
    "parse_verilog",
    "write_verilog",
]
