"""Graphviz DOT export for AIGs and mapped netlists.

Debugging and documentation aid: render the networks the synthesis
passes produce.  Inverted edges are drawn dashed (the AIG convention);
mapped netlists label nodes with their cell names.
"""

from __future__ import annotations

from ..mapping.netlist import MappedNetlist
from ..synth.aig import AIG, lit_is_compl, lit_var


def aig_to_dot(aig: AIG, name: str | None = None, max_nodes: int = 2000) -> str:
    """Render an AIG as a DOT digraph.

    Raises ``ValueError`` for networks larger than ``max_nodes`` —
    graph layouts beyond that size are unreadable anyway; filter or
    extract a cone first.
    """
    if aig.num_nodes > max_nodes:
        raise ValueError(
            f"network has {aig.num_nodes} nodes; raise max_nodes to force rendering"
        )
    lines = [f'digraph "{name or aig.name}" {{', "  rankdir=BT;"]
    lines.append('  node [shape=circle, fontsize=10];')
    for i, node in enumerate(aig.pis):
        label = aig.pi_names[i] if i < len(aig.pi_names) else f"pi{i}"
        lines.append(f'  n{node} [shape=box, style=filled, fillcolor="#cfe8ff", '
                     f'label="{label}"];')
    for node in aig.and_nodes():
        lines.append(f'  n{node} [label="∧"];')
        for fanin in aig.fanins(node):
            style = ' [style=dashed, arrowhead="odot"]' if lit_is_compl(fanin) else ""
            lines.append(f"  n{lit_var(fanin)} -> n{node}{style};")
    for i, po in enumerate(aig.pos):
        label = aig.po_names[i] if i < len(aig.po_names) else f"po{i}"
        lines.append(f'  po{i} [shape=box, style=filled, fillcolor="#ffe6cc", '
                     f'label="{label}"];')
        style = ' [style=dashed, arrowhead="odot"]' if lit_is_compl(po) else ""
        lines.append(f"  n{lit_var(po)} -> po{i}{style};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def netlist_to_dot(netlist: MappedNetlist, max_gates: int = 1000) -> str:
    """Render a mapped netlist as a DOT digraph (cells as boxes)."""
    if netlist.num_gates > max_gates:
        raise ValueError(
            f"netlist has {netlist.num_gates} gates; raise max_gates to force rendering"
        )
    lines = [f'digraph "{netlist.name}" {{', "  rankdir=LR;"]
    lines.append("  node [shape=box, fontsize=10];")
    driver_of = {gate.output_net: gate.name for gate in netlist.gates}
    for net in netlist.pi_nets:
        lines.append(f'  "pi_{net}" [style=filled, fillcolor="#cfe8ff", label="{net}"];')
    for gate in netlist.gates:
        lines.append(f'  "{gate.name}" [label="{gate.cell}\\n{gate.name}"];')
        for pin, net in gate.pins.items():
            source = f"pi_{net}" if net in netlist.pi_nets else driver_of.get(net)
            if source is None:
                continue
            lines.append(f'  "{source}" -> "{gate.name}" [label="{pin}", fontsize=8];')
    for i, net in enumerate(netlist.po_nets):
        lines.append(f'  "po_{i}" [style=filled, fillcolor="#ffe6cc", label="{net}"];')
        source = f"pi_{net}" if net in netlist.pi_nets else driver_of.get(net)
        if source is not None:
            lines.append(f'  "{source}" -> "po_{i}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
