"""Small Boolean-expression trees for standard-cell functions.

Cell logic is described with And/Or/Not/Lit trees.  The same tree
drives three consumers:

* truth-table evaluation (library function, Boolean matching),
* transistor network generation (series/parallel pull-down, dual
  pull-up) in :mod:`repro.pdk.netlist_gen`,
* Liberty ``function`` strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


class Expr:
    """Base Boolean expression node."""

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        raise NotImplementedError

    def variables(self) -> list[str]:
        """Variables in first-reference order (deterministic)."""
        seen: dict[str, None] = {}
        self._collect(seen)
        return list(seen)

    def _collect(self, seen: dict[str, None]) -> None:
        raise NotImplementedError

    def to_liberty(self) -> str:
        """Render as a Liberty ``function`` expression string."""
        raise NotImplementedError

    # Operator sugar keeps catalog definitions readable.
    def __and__(self, other: "Expr") -> "Expr":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class Lit(Expr):
    """A positive literal referencing a pin or internal node."""

    name: str

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return bool(assignment[self.name])

    def _collect(self, seen: dict[str, None]) -> None:
        seen.setdefault(self.name)

    def to_liberty(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def _collect(self, seen: dict[str, None]) -> None:
        self.operand._collect(seen)

    def to_liberty(self) -> str:
        return f"(!{self.operand.to_liberty()})"


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) and self.right.evaluate(assignment)

    def _collect(self, seen: dict[str, None]) -> None:
        self.left._collect(seen)
        self.right._collect(seen)

    def to_liberty(self) -> str:
        return f"({self.left.to_liberty()}&{self.right.to_liberty()})"


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) or self.right.evaluate(assignment)

    def _collect(self, seen: dict[str, None]) -> None:
        self.left._collect(seen)
        self.right._collect(seen)

    def to_liberty(self) -> str:
        return f"({self.left.to_liberty()}|{self.right.to_liberty()})"


def and_all(exprs: Iterable[Expr]) -> Expr:
    """Left-associated conjunction of one or more expressions."""
    items = list(exprs)
    if not items:
        raise ValueError("and_all needs at least one expression")
    result = items[0]
    for item in items[1:]:
        result = And(result, item)
    return result


def or_all(exprs: Iterable[Expr]) -> Expr:
    """Left-associated disjunction of one or more expressions."""
    items = list(exprs)
    if not items:
        raise ValueError("or_all needs at least one expression")
    result = items[0]
    for item in items[1:]:
        result = Or(result, item)
    return result


def truth_table(expr: Expr, inputs: list[str]) -> int:
    """Truth table of ``expr`` over ``inputs`` packed into an int.

    Bit ``i`` of the result is the value under the assignment where
    input ``j`` takes bit ``j`` of ``i`` (input 0 is the LSB).  This is
    the packing used throughout :mod:`repro.synth.truth`.
    """
    if len(inputs) > 16:
        raise ValueError("truth tables limited to 16 inputs")
    table = 0
    for i in range(1 << len(inputs)):
        assignment = {name: bool((i >> j) & 1) for j, name in enumerate(inputs)}
        if expr.evaluate(assignment):
            table |= 1 << i
    return table
