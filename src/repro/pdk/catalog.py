"""The ASAP7-class standard-cell catalog (~200 cells).

Programmatically generates the combinational and sequential cell set
the paper characterizes: inverters/buffers, NAND/NOR/AND/OR up to four
inputs, AOI/OAI complex gates, XOR/XNOR, majority, multiplexers,
half/full adders, and D-flip-flop/latch variants — each at several
drive strengths.  Cell naming follows the ASAP7 convention
``<FUNC>x<drive>``.
"""

from __future__ import annotations

from functools import lru_cache

from .boolexpr import And, Expr, Lit, Or, and_all, or_all
from .cells import CellTemplate, Stage

A, B, C, D_PIN, E_PIN = Lit("A"), Lit("B"), Lit("C"), Lit("D"), Lit("E")


def _single_stage(name: str, inputs: tuple[str, ...], pdn: Expr, drive: int, footprint: str) -> CellTemplate:
    return CellTemplate(
        name=name,
        inputs=inputs,
        outputs=("Y",),
        stages=(Stage("Y", pdn, drive_fins=drive),),
        footprint=footprint,
    )


def _inverting_plus_output_inv(
    name: str, inputs: tuple[str, ...], pdn: Expr, drive: int, footprint: str
) -> CellTemplate:
    """Complex inverting stage followed by an output inverter."""
    return CellTemplate(
        name=name,
        inputs=inputs,
        outputs=("Y",),
        stages=(
            Stage("YN", pdn, drive_fins=max(1, drive // 2)),
            Stage("Y", Lit("YN"), drive_fins=drive),
        ),
        footprint=footprint,
    )


def make_inv(drive: int) -> CellTemplate:
    return _single_stage(f"INVx{drive}", ("A",), A, drive, "INV")


def make_buf(drive: int) -> CellTemplate:
    return CellTemplate(
        name=f"BUFx{drive}",
        inputs=("A",),
        outputs=("Y",),
        stages=(
            Stage("AN", A, drive_fins=max(1, drive // 2)),
            Stage("Y", Lit("AN"), drive_fins=drive),
        ),
        footprint="BUF",
    )


def make_nand(n: int, drive: int) -> CellTemplate:
    pins = ("A", "B", "C", "D")[:n]
    return _single_stage(
        f"NAND{n}x{drive}", pins, and_all(Lit(p) for p in pins), drive, f"NAND{n}"
    )


def make_nor(n: int, drive: int) -> CellTemplate:
    pins = ("A", "B", "C", "D")[:n]
    return _single_stage(
        f"NOR{n}x{drive}", pins, or_all(Lit(p) for p in pins), drive, f"NOR{n}"
    )


def make_and(n: int, drive: int) -> CellTemplate:
    pins = ("A", "B", "C", "D")[:n]
    return _inverting_plus_output_inv(
        f"AND{n}x{drive}", pins, and_all(Lit(p) for p in pins), drive, f"AND{n}"
    )


def make_or(n: int, drive: int) -> CellTemplate:
    pins = ("A", "B", "C", "D")[:n]
    return _inverting_plus_output_inv(
        f"OR{n}x{drive}", pins, or_all(Lit(p) for p in pins), drive, f"OR{n}"
    )


#: AOI/OAI shapes: name suffix -> list of group sizes.
#: e.g. "21" means (A1&A2) | B ; "221" means (A1&A2)|(B1&B2)|C.
_AOI_SHAPES = {
    "21": (2, 1),
    "22": (2, 2),
    "31": (3, 1),
    "32": (3, 2),
    "33": (3, 3),
    "211": (2, 1, 1),
    "221": (2, 2, 1),
    "222": (2, 2, 2),
    "311": (3, 1, 1),
    "321": (3, 2, 1),
    "331": (3, 3, 1),
    "322": (3, 2, 2),
    "332": (3, 3, 2),
}


def _group_pins(shape: tuple[int, ...]) -> tuple[tuple[str, ...], list[tuple[str, ...]]]:
    """Pin names for an AOI/OAI shape: groups A*, B*, C*, ..."""
    letters = "ABCDE"
    all_pins: list[str] = []
    groups: list[tuple[str, ...]] = []
    for letter, size in zip(letters, shape):
        if size == 1:
            pins = (letter,)
        else:
            pins = tuple(f"{letter}{i+1}" for i in range(size))
        groups.append(pins)
        all_pins.extend(pins)
    return tuple(all_pins), groups


def make_aoi(suffix: str, drive: int) -> CellTemplate:
    shape = _AOI_SHAPES[suffix]
    pins, groups = _group_pins(shape)
    pdn = or_all(and_all(Lit(p) for p in group) for group in groups)
    return _single_stage(f"AOI{suffix}x{drive}", pins, pdn, drive, f"AOI{suffix}")


def make_oai(suffix: str, drive: int) -> CellTemplate:
    shape = _AOI_SHAPES[suffix]
    pins, groups = _group_pins(shape)
    pdn = and_all(or_all(Lit(p) for p in group) for group in groups)
    return _single_stage(f"OAI{suffix}x{drive}", pins, pdn, drive, f"OAI{suffix}")


def make_ao(suffix: str, drive: int) -> CellTemplate:
    shape = _AOI_SHAPES[suffix]
    pins, groups = _group_pins(shape)
    pdn = or_all(and_all(Lit(p) for p in group) for group in groups)
    return _inverting_plus_output_inv(f"AO{suffix}x{drive}", pins, pdn, drive, f"AO{suffix}")


def make_oa(suffix: str, drive: int) -> CellTemplate:
    shape = _AOI_SHAPES[suffix]
    pins, groups = _group_pins(shape)
    pdn = and_all(or_all(Lit(p) for p in group) for group in groups)
    return _inverting_plus_output_inv(f"OA{suffix}x{drive}", pins, pdn, drive, f"OA{suffix}")


def make_xor2(drive: int) -> CellTemplate:
    an, bn = Lit("AN"), Lit("BN")
    return CellTemplate(
        name=f"XOR2x{drive}",
        inputs=("A", "B"),
        outputs=("Y",),
        stages=(
            Stage("AN", A, drive_fins=1),
            Stage("BN", B, drive_fins=1),
            # Y = A^B = !(A&B | !A&!B)
            Stage("Y", Or(And(A, B), And(an, bn)), drive_fins=drive),
        ),
        footprint="XOR2",
    )


def make_xnor2(drive: int) -> CellTemplate:
    an, bn = Lit("AN"), Lit("BN")
    return CellTemplate(
        name=f"XNOR2x{drive}",
        inputs=("A", "B"),
        outputs=("Y",),
        stages=(
            Stage("AN", A, drive_fins=1),
            Stage("BN", B, drive_fins=1),
            # Y = !(A^B) = !(A&!B | !A&B)
            Stage("Y", Or(And(A, bn), And(an, B)), drive_fins=drive),
        ),
        footprint="XNOR2",
    )


def make_maj(drive: int, inverted: bool) -> CellTemplate:
    """3-input majority (MAJ) or minority (MAJI)."""
    pdn = Or(And(A, B), And(C, Or(A, B)))
    if inverted:
        return _single_stage(f"MAJIx{drive}", ("A", "B", "C"), pdn, drive, "MAJI")
    return _inverting_plus_output_inv(f"MAJx{drive}", ("A", "B", "C"), pdn, drive, "MAJ")


def make_mux2(drive: int) -> CellTemplate:
    """2:1 multiplexer: Y = S ? B : A."""
    s, sn = Lit("S"), Lit("SN")
    return CellTemplate(
        name=f"MUX2x{drive}",
        inputs=("A", "B", "S"),
        outputs=("Y",),
        stages=(
            Stage("SN", s, drive_fins=1),
            Stage("YN", Or(And(A, sn), And(B, s)), drive_fins=max(1, drive // 2)),
            Stage("Y", Lit("YN"), drive_fins=drive),
        ),
        footprint="MUX2",
    )


def make_mux2i(drive: int) -> CellTemplate:
    """Inverting 2:1 multiplexer: Y = !(S ? B : A)."""
    s, sn = Lit("S"), Lit("SN")
    return CellTemplate(
        name=f"MUX2Ix{drive}",
        inputs=("A", "B", "S"),
        outputs=("Y",),
        stages=(
            Stage("SN", s, drive_fins=1),
            Stage("Y", Or(And(A, sn), And(B, s)), drive_fins=drive),
        ),
        footprint="MUX2I",
    )


def make_ha(drive: int) -> CellTemplate:
    """Half adder: S = A^B, CO = A&B."""
    an, bn = Lit("AN"), Lit("BN")
    return CellTemplate(
        name=f"HAx{drive}",
        inputs=("A", "B"),
        outputs=("S", "CO"),
        stages=(
            Stage("AN", A, drive_fins=1),
            Stage("BN", B, drive_fins=1),
            Stage("S", Or(And(A, B), And(an, bn)), drive_fins=drive),
            Stage("CON", And(A, B), drive_fins=max(1, drive // 2)),
            Stage("CO", Lit("CON"), drive_fins=drive),
        ),
        footprint="HA",
    )


def make_fa(drive: int) -> CellTemplate:
    """Mirror-style full adder: S = A^B^CI, CO = MAJ(A, B, CI)."""
    ci = Lit("CI")
    con = Lit("CON")
    return CellTemplate(
        name=f"FAx{drive}",
        inputs=("A", "B", "CI"),
        outputs=("S", "CO"),
        stages=(
            # CON = !MAJ(A,B,CI)
            Stage("CON", Or(And(A, B), And(ci, Or(A, B))), drive_fins=max(1, drive // 2)),
            # SN = !(A^B^CI) via the mirror identity:
            # SN = !(A&B&CI | (A|B|CI) & !MAJ(A,B,CI))
            Stage(
                "SN",
                Or(and_all([A, B, ci]), And(or_all([A, B, ci]), con)),
                drive_fins=max(1, drive // 2),
            ),
            Stage("S", Lit("SN"), drive_fins=drive),
            Stage("CO", con, drive_fins=drive),
        ),
        footprint="FA",
    )


def make_dff(drive: int, reset: bool = False, set_pin: bool = False) -> CellTemplate:
    """Positive-edge D flip-flop (master-slave from gates).

    The gate-level master-slave structure is only used for logic
    evaluation and area/leakage accounting; timing characterization
    treats the flop through its clock-to-q / setup / hold arcs.
    """
    name = "DFF"
    inputs = ["D"]
    if reset:
        name += "R"
        inputs.append("RN")
    if set_pin:
        name += "S"
        inputs.append("SN")
    clk, d = Lit("CLK"), Lit("D")
    clkn, dn = Lit("CLKN"), Lit("DN")
    # Master latch (transparent while CLK low), slave (while CLK high),
    # built from cross-coupled NAND pairs.
    stages = [
        Stage("CLKN", clk, drive_fins=1),
        Stage("DN", d, drive_fins=1),
        # Master: SR-NAND latch gated by CLKN
        Stage("MS", And(d, Lit("CLKN")), drive_fins=1),
        Stage("MR", And(dn, Lit("CLKN")), drive_fins=1),
        Stage("MQ", And(Lit("MS"), Lit("MQN")), drive_fins=1),
        Stage("MQN", And(Lit("MR"), Lit("MQ")), drive_fins=1),
        # Slave: gated by CLK
        Stage("SS", And(Lit("MQ"), clk), drive_fins=1),
        Stage("SR", And(Lit("MQN"), clk), drive_fins=1),
        Stage("QI", And(Lit("SS"), Lit("QN_INT")), drive_fins=max(1, drive // 2)),
        Stage("QN_INT", And(Lit("SR"), Lit("QI")), drive_fins=max(1, drive // 2)),
        Stage("QN_BUF", Lit("QI"), drive_fins=max(1, drive // 2)),
        Stage("Q", Lit("QN_BUF"), drive_fins=drive),
    ]
    if reset:
        # Async reset clamps the slave set path.
        rn = Lit("RN")
        stages[8] = Stage("QI", Or(And(Lit("SS"), Lit("QN_INT")), Lit("RNN")), drive_fins=max(1, drive // 2))
        stages.insert(0, Stage("RNN", rn, drive_fins=1))
    return CellTemplate(
        name=f"{name}x{drive}",
        inputs=tuple(inputs),
        outputs=("Q",),
        stages=tuple(stages),
        is_sequential=True,
        clock_pin="CLK",
        footprint=name,
    )


def make_latch(drive: int) -> CellTemplate:
    """Active-high transparent latch."""
    clk, d = Lit("CLK"), Lit("D")
    return CellTemplate(
        name=f"LATCHx{drive}",
        inputs=("D",),
        outputs=("Q",),
        stages=(
            Stage("DN", d, drive_fins=1),
            Stage("S", And(d, clk), drive_fins=1),
            Stage("R", And(Lit("DN"), clk), drive_fins=1),
            Stage("QI", And(Lit("S"), Lit("QN_INT")), drive_fins=max(1, drive // 2)),
            Stage("QN_INT", And(Lit("R"), Lit("QI")), drive_fins=max(1, drive // 2)),
            Stage("QB", Lit("QI"), drive_fins=max(1, drive // 2)),
            Stage("Q", Lit("QB"), drive_fins=drive),
        ),
        is_sequential=True,
        clock_pin="CLK",
        footprint="LATCH",
    )


def make_xor3(drive: int, invert: bool = False) -> CellTemplate:
    """3-input XOR/XNOR as a cascade of two XOR stages."""
    an, bn, cn = Lit("AN"), Lit("BN"), Lit("CN")
    t, tn = Lit("T"), Lit("TN")
    final = Or(And(t, C), And(tn, cn)) if not invert else Or(And(t, cn), And(tn, C))
    return CellTemplate(
        name=f"{'XNOR3' if invert else 'XOR3'}x{drive}",
        inputs=("A", "B", "C"),
        outputs=("Y",),
        stages=(
            Stage("AN", A, drive_fins=1),
            Stage("BN", B, drive_fins=1),
            Stage("CN", C, drive_fins=1),
            Stage("T", Or(And(A, B), And(an, bn)), drive_fins=1),  # T = A^B
            Stage("TN", t, drive_fins=1),
            Stage("Y", final, drive_fins=drive),
        ),
        footprint="XNOR3" if invert else "XOR3",
    )


def make_mux4(drive: int) -> CellTemplate:
    """4:1 multiplexer with two select pins (S1 S0 pick A..D)."""
    s0, s1 = Lit("S0"), Lit("S1")
    s0n, s1n = Lit("S0N"), Lit("S1N")
    yn = or_all(
        [
            and_all([A, s0n, s1n]),
            and_all([B, s0, s1n]),
            and_all([C, s0n, s1]),
            and_all([D_PIN, s0, s1]),
        ]
    )
    return CellTemplate(
        name=f"MUX4x{drive}",
        inputs=("A", "B", "C", "D", "S0", "S1"),
        outputs=("Y",),
        stages=(
            Stage("S0N", s0, drive_fins=1),
            Stage("S1N", s1, drive_fins=1),
            Stage("YN", yn, drive_fins=max(1, drive // 2)),
            Stage("Y", Lit("YN"), drive_fins=drive),
        ),
        footprint="MUX4",
    )


def make_b_variant(kind: str, drive: int) -> CellTemplate:
    """Two-input gates with an inverted A pin (ASAP7 *B cells)."""
    an = Lit("AN")
    inv_stage = Stage("AN", A, drive_fins=1)
    if kind == "NAND2B":  # Y = !(!A & B)
        return CellTemplate(
            name=f"NAND2Bx{drive}",
            inputs=("A", "B"),
            outputs=("Y",),
            stages=(inv_stage, Stage("Y", And(an, B), drive_fins=drive)),
            footprint="NAND2B",
        )
    if kind == "NOR2B":  # Y = !(!A | B)
        return CellTemplate(
            name=f"NOR2Bx{drive}",
            inputs=("A", "B"),
            outputs=("Y",),
            stages=(inv_stage, Stage("Y", Or(an, B), drive_fins=drive)),
            footprint="NOR2B",
        )
    if kind == "AND2B":  # Y = !A & B
        return CellTemplate(
            name=f"AND2Bx{drive}",
            inputs=("A", "B"),
            outputs=("Y",),
            stages=(
                inv_stage,
                Stage("YN", And(an, B), drive_fins=max(1, drive // 2)),
                Stage("Y", Lit("YN"), drive_fins=drive),
            ),
            footprint="AND2B",
        )
    if kind == "OR2B":  # Y = !A | B
        return CellTemplate(
            name=f"OR2Bx{drive}",
            inputs=("A", "B"),
            outputs=("Y",),
            stages=(
                inv_stage,
                Stage("YN", Or(an, B), drive_fins=max(1, drive // 2)),
                Stage("Y", Lit("YN"), drive_fins=drive),
            ),
            footprint="OR2B",
        )
    raise ValueError(f"unknown B-variant {kind!r}")


def make_clkbuf(drive: int) -> CellTemplate:
    """Clock buffer (balanced two-stage, dedicated footprint)."""
    cell = make_buf(drive)
    return CellTemplate(
        name=f"CLKBUFx{drive}",
        inputs=cell.inputs,
        outputs=cell.outputs,
        stages=cell.stages,
        footprint="CLKBUF",
    )


def make_clkinv(drive: int) -> CellTemplate:
    """Clock inverter."""
    return _single_stage(f"CLKINVx{drive}", ("A",), A, drive, "CLKINV")


def make_dlybuf(drive: int) -> CellTemplate:
    """Delay buffer: four weak inverter stages."""
    return CellTemplate(
        name=f"DLYBUFx{drive}",
        inputs=("A",),
        outputs=("Y",),
        stages=(
            Stage("N1", A, drive_fins=1),
            Stage("N2", Lit("N1"), drive_fins=1),
            Stage("N3", Lit("N2"), drive_fins=1),
            Stage("Y", Lit("N3"), drive_fins=drive),
        ),
        footprint="DLYBUF",
    )


def make_dffs(drive: int) -> CellTemplate:
    """Positive-edge D flip-flop with active-low asynchronous set."""
    base = make_dff(drive)
    stages = list(base.stages)
    for i, stage in enumerate(stages):
        if stage.output == "QI":
            # SN low forces the pull-down off -> QI high -> Q high.
            stages[i] = Stage("QI", And(stage.pull_down, Lit("SN")), stage.drive_fins)
            break
    return CellTemplate(
        name=f"DFFSx{drive}",
        inputs=("D", "SN"),
        outputs=("Q",),
        stages=tuple(stages),
        is_sequential=True,
        clock_pin="CLK",
        footprint="DFFS",
    )


def make_tiehi() -> CellTemplate:
    """Constant-1 tie cell (implemented as grounded-input inverter)."""
    return CellTemplate(
        name="TIEHIx1",
        inputs=("A",),
        outputs=("Y",),
        stages=(Stage("Y", A, drive_fins=1),),
        footprint="TIEHI",
    )


def make_tielo() -> CellTemplate:
    """Constant-0 tie cell (two weak inverters from a high input)."""
    return CellTemplate(
        name="TIELOx1",
        inputs=("A",),
        outputs=("Y",),
        stages=(Stage("AN", A, drive_fins=1), Stage("Y", Lit("AN"), drive_fins=1)),
        footprint="TIELO",
    )


@lru_cache(maxsize=1)
def standard_cell_catalog() -> tuple[CellTemplate, ...]:
    """The full ~200-cell catalog the library characterizes."""
    cells: list[CellTemplate] = []
    for drive in (1, 2, 3, 4, 6, 8, 12, 16):
        cells.append(make_inv(drive))
        cells.append(make_buf(drive))
    for n in (2, 3, 4):
        for drive in (1, 2, 3, 4):
            cells.append(make_nand(n, drive))
            cells.append(make_nor(n, drive))
        for drive in (1, 2, 4):
            cells.append(make_and(n, drive))
            cells.append(make_or(n, drive))
    for drive in (6, 8):
        cells.append(make_nand(2, drive))
        cells.append(make_nor(2, drive))
    for suffix in _AOI_SHAPES:
        for drive in (1, 2):
            cells.append(make_aoi(suffix, drive))
            cells.append(make_oai(suffix, drive))
    for suffix in ("21", "22", "211", "221", "222"):
        cells.append(make_aoi(suffix, 4))
        cells.append(make_oai(suffix, 4))
        for drive in (1, 2):
            cells.append(make_ao(suffix, drive))
            cells.append(make_oa(suffix, drive))
    for kind in ("NAND2B", "NOR2B", "AND2B", "OR2B"):
        for drive in (1, 2):
            cells.append(make_b_variant(kind, drive))
    for drive in (1, 2, 4):
        cells.append(make_xor2(drive))
        cells.append(make_xnor2(drive))
        cells.append(make_mux2(drive))
    for drive in (1, 2):
        cells.append(make_xor3(drive))
        cells.append(make_xor3(drive, invert=True))
        cells.append(make_mux4(drive))
        cells.append(make_mux2i(drive))
        cells.append(make_maj(drive, inverted=False))
        cells.append(make_maj(drive, inverted=True))
        cells.append(make_ha(drive))
        cells.append(make_fa(drive))
        cells.append(make_dlybuf(drive))
        cells.append(make_dff(drive))
        cells.append(make_dff(drive, reset=True))
        cells.append(make_dffs(drive))
        cells.append(make_latch(drive))
    for drive in (2, 4, 8, 12):
        cells.append(make_clkbuf(drive))
        cells.append(make_clkinv(drive))
    cells.append(make_dff(4))
    cells.append(make_ha(4))
    cells.append(make_fa(4))
    cells.append(make_tiehi())
    cells.append(make_tielo())
    names = [c.name for c in cells]
    if len(set(names)) != len(names):
        raise AssertionError("catalog produced duplicate cell names")
    return tuple(cells)


def catalog_by_name() -> dict[str, CellTemplate]:
    """Name -> template view of the catalog."""
    return {cell.name: cell for cell in standard_cell_catalog()}
