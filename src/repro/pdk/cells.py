"""Standard-cell templates: staged CMOS topologies with sizing.

A cell is a sequence of *stages*.  Each stage is one static CMOS
complex gate: a pull-down network described by a Boolean expression
(AND = series, OR = parallel) whose output is the complement of that
expression, plus the dual pull-up network.  Multi-stage cells (buffers,
AND/OR, XOR with input inverters, multi-output adders) chain stages
through internal nodes.

The template knows how to:

* evaluate its logic (per-output truth tables),
* emit a transistor-level :class:`repro.spice.Circuit` for
  characterization,
* report sizing-derived quantities (area, fins per pin).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..spice.netlist import Circuit
from ..spice.waveforms import DC
from .boolexpr import Expr, Lit, Not
from .technology import Technology

VDD_NODE = "vdd"
GND_NODE = "0"


@dataclass(frozen=True)
class Stage:
    """One static CMOS complex gate inside a cell.

    ``pull_down`` is the PDN expression over *node names* (cell inputs
    or outputs of earlier stages); the stage computes its complement.
    ``drive_fins`` is the fin count of a single (non-stacked) n-device;
    series stacks are automatically upsized by their depth, and
    p-devices by the technology beta ratio.
    """

    output: str
    pull_down: Expr
    drive_fins: int = 1

    def logic(self, assignment: dict[str, bool]) -> bool:
        """Stage output value under the given node assignment."""
        return not self.pull_down.evaluate(assignment)


@dataclass(frozen=True)
class CellTemplate:
    """A complete standard cell."""

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    stages: tuple[Stage, ...]
    #: Sequential cells carry a clock pin and a next-state function
    #: instead of pure combinational outputs.
    is_sequential: bool = False
    clock_pin: str | None = None
    #: Human-readable footprint group, e.g. "NAND2".
    footprint: str = ""

    def __post_init__(self) -> None:
        stage_outputs = [s.output for s in self.stages]
        if len(set(stage_outputs)) != len(stage_outputs):
            raise ValueError(f"cell {self.name}: duplicate stage outputs")
        known = set(self.inputs) | {self.clock_pin} if self.clock_pin else set(self.inputs)
        for stage in self.stages:
            for var in stage.pull_down.variables():
                if var not in known and var not in stage_outputs:
                    raise ValueError(
                        f"cell {self.name}: stage {stage.output} references "
                        f"unknown node {var!r}"
                    )
        for out in self.outputs:
            if out not in stage_outputs:
                raise ValueError(f"cell {self.name}: output {out} has no driving stage")

    # ------------------------------------------------------------------
    # Logic
    # ------------------------------------------------------------------
    def evaluate(self, input_values: dict[str, bool]) -> dict[str, bool]:
        """Evaluate all stage outputs for one input assignment.

        Combinational cells resolve in one topological pass.  Cells
        with feedback (latch/flop cores) are iterated to a fixed point
        from an all-low initial state, which yields a deterministic
        resting state for leakage characterization.
        """
        assignment = dict(input_values)
        for stage in self.stages:
            assignment.setdefault(stage.output, False)
        for _ in range(4 + len(self.stages)):
            changed = False
            for stage in self.stages:
                value = stage.logic(assignment)
                if assignment[stage.output] != value:
                    assignment[stage.output] = value
                    changed = True
            if not changed:
                break
        return {out: assignment[out] for out in self.outputs}

    def node_states(self, input_values: dict[str, bool]) -> dict[str, bool]:
        """All node values (inputs + stage outputs) at the fixed point."""
        assignment = dict(input_values)
        for stage in self.stages:
            assignment.setdefault(stage.output, False)
        for _ in range(4 + len(self.stages)):
            changed = False
            for stage in self.stages:
                value = stage.logic(assignment)
                if assignment[stage.output] != value:
                    assignment[stage.output] = value
                    changed = True
            if not changed:
                break
        return assignment

    def output_truth_table(self, output: str) -> int:
        """Packed truth table of ``output`` over ``self.inputs``."""
        if output not in self.outputs:
            raise KeyError(f"cell {self.name} has no output {output!r}")
        n = len(self.inputs)
        if n > 16:
            raise ValueError("truth tables limited to 16 inputs")
        table = 0
        for i in range(1 << n):
            values = {name: bool((i >> j) & 1) for j, name in enumerate(self.inputs)}
            if self.evaluate(values)[output]:
                table |= 1 << i
        return table

    def output_function(self, output: str) -> Expr:
        """Expression for ``output`` with internal nodes substituted."""
        cache: dict[str, Expr] = {name: Lit(name) for name in self.inputs}
        if self.clock_pin:
            cache[self.clock_pin] = Lit(self.clock_pin)

        def substitute(expr: Expr) -> Expr:
            from .boolexpr import And, Or

            if isinstance(expr, Lit):
                return cache[expr.name]
            if isinstance(expr, Not):
                return Not(substitute(expr.operand))
            if isinstance(expr, And):
                return And(substitute(expr.left), substitute(expr.right))
            if isinstance(expr, Or):
                return Or(substitute(expr.left), substitute(expr.right))
            raise TypeError(f"unknown expression node {expr!r}")

        for stage in self.stages:
            cache[stage.output] = Not(substitute(stage.pull_down))
        return cache[output]

    # ------------------------------------------------------------------
    # Sizing-derived quantities
    # ------------------------------------------------------------------
    def _stage_devices(self, stage: Stage, tech: Technology):
        """Yield (kind, gate_node, nfin) for every transistor in a stage.

        ``kind`` is "n" or "p".  Series devices are upsized by stack
        depth so stage drive stays comparable across topologies.
        """
        devices: list[tuple[str, str, int]] = []

        def series_depth_n(expr: Expr) -> int:
            from .boolexpr import And, Or

            if isinstance(expr, Lit):
                return 1
            if isinstance(expr, And):
                return series_depth_n(expr.left) + series_depth_n(expr.right)
            if isinstance(expr, Or):
                return max(series_depth_n(expr.left), series_depth_n(expr.right))
            raise TypeError(f"unexpected node {expr!r}")

        def series_depth_p(expr: Expr) -> int:
            # The dual network swaps series and parallel.
            from .boolexpr import And, Or

            if isinstance(expr, Lit):
                return 1
            if isinstance(expr, And):
                return max(series_depth_p(expr.left), series_depth_p(expr.right))
            if isinstance(expr, Or):
                return series_depth_p(expr.left) + series_depth_p(expr.right)
            raise TypeError(f"unexpected node {expr!r}")

        n_depth = series_depth_n(stage.pull_down)
        p_depth = series_depth_p(stage.pull_down)
        nfin_n = stage.drive_fins * n_depth
        nfin_p = tech.pfin_for(stage.drive_fins) * p_depth

        def collect(expr: Expr) -> None:
            from .boolexpr import And, Or

            if isinstance(expr, Lit):
                devices.append(("n", expr.name, nfin_n))
                devices.append(("p", expr.name, nfin_p))
                return
            if isinstance(expr, (And, Or)):
                collect(expr.left)
                collect(expr.right)
                return
            raise TypeError(f"unexpected node {expr!r}")

        collect(stage.pull_down)
        return devices

    def transistor_count(self, tech: Technology) -> int:
        """Total transistor count of the cell."""
        return sum(len(self._stage_devices(s, tech)) for s in self.stages)

    def total_fins(self, tech: Technology) -> int:
        """Total fin count (the area/leakage proxy)."""
        return sum(
            nfin for stage in self.stages for _, _, nfin in self._stage_devices(stage, tech)
        )

    def area_um2(self, tech: Technology) -> float:
        """Layout area estimate [um^2]."""
        return self.total_fins(tech) * tech.area_per_fin_um2

    def input_fins(self, pin: str, tech: Technology) -> tuple[int, int]:
        """(n_fins, p_fins) of the devices driven by an input pin."""
        n_total = p_total = 0
        for stage in self.stages:
            for kind, gate, nfin in self._stage_devices(stage, tech):
                if gate != pin:
                    continue
                if kind == "n":
                    n_total += nfin
                else:
                    p_total += nfin
        return n_total, p_total

    # ------------------------------------------------------------------
    # SPICE netlist
    # ------------------------------------------------------------------
    def to_circuit(self, tech: Technology, load_caps: dict[str, float] | None = None) -> Circuit:
        """Emit a transistor-level circuit (supply included, no inputs).

        Input stimuli are added by the characterization deck; this
        method contributes the supply, all stages' transistor networks,
        and optional explicit load capacitors on outputs.
        """
        circuit = Circuit(self.name)
        circuit.add_vsource("vdd_supply", VDD_NODE, GND_NODE, DC(tech.vdd))
        counter = [0]

        def fresh_node(prefix: str) -> str:
            counter[0] += 1
            return f"{prefix}_int{counter[0]}"

        for stage in self.stages:
            devices = self._stage_devices(stage, tech)
            nfin_n = max(nfin for kind, _, nfin in devices if kind == "n")
            nfin_p = max(nfin for kind, _, nfin in devices if kind == "p")
            self._emit_network(
                circuit,
                stage.pull_down,
                top=stage.output,
                bottom=GND_NODE,
                is_pdn=True,
                nfin=nfin_n,
                tech=tech,
                fresh=fresh_node,
                stage_name=stage.output,
            )
            self._emit_network(
                circuit,
                stage.pull_down,
                top=VDD_NODE,
                bottom=stage.output,
                is_pdn=False,
                nfin=nfin_p,
                tech=tech,
                fresh=fresh_node,
                stage_name=stage.output,
            )
            # Local interconnect parasitic on the stage output.
            circuit.add_capacitor(
                f"cw_{stage.output}",
                stage.output,
                GND_NODE,
                tech.output_wire_cap_per_fin * stage.drive_fins * 4.0,
            )
        for out, cap in (load_caps or {}).items():
            circuit.add_capacitor(f"cl_{out}", out, GND_NODE, cap)
        return circuit

    def _emit_network(
        self,
        circuit: Circuit,
        expr: Expr,
        top: str,
        bottom: str,
        is_pdn: bool,
        nfin: int,
        tech: Technology,
        fresh,
        stage_name: str,
    ) -> None:
        """Recursively emit the series/parallel transistor network.

        For the PDN, And = series and Or = parallel; the PUN is the
        dual.  ``top``/``bottom`` are the two terminals of the current
        sub-network (drain side first).
        """
        from .boolexpr import And, Or

        series_type = And if is_pdn else Or
        parallel_type = Or if is_pdn else And

        if isinstance(expr, Lit):
            device = tech.nfet_device(nfin) if is_pdn else tech.pfet_device(nfin)
            name = f"m{'n' if is_pdn else 'p'}_{stage_name}_{len(circuit.finfets)}"
            if is_pdn:
                circuit.add_finfet(name, top, expr.name, bottom, device)
            else:
                # PMOS: source at the supply side (top), drain below.
                circuit.add_finfet(name, bottom, expr.name, top, device)
            return
        if isinstance(expr, series_type):
            mid = fresh(stage_name)
            self._emit_network(
                circuit, expr.left, top, mid, is_pdn, nfin, tech, fresh, stage_name
            )
            self._emit_network(
                circuit, expr.right, mid, bottom, is_pdn, nfin, tech, fresh, stage_name
            )
            return
        if isinstance(expr, parallel_type):
            self._emit_network(
                circuit, expr.left, top, bottom, is_pdn, nfin, tech, fresh, stage_name
            )
            self._emit_network(
                circuit, expr.right, top, bottom, is_pdn, nfin, tech, fresh, stage_name
            )
            return
        raise TypeError(f"pull networks must be And/Or/Lit trees, got {expr!r}")
