"""ASAP7-class PDK surrogate for the cryogenic 5 nm FinFET technology.

Provides the technology description (devices + cell-architecture
constants), Boolean-expression cell functions, staged CMOS cell
templates with transistor netlist generation, and the ~200-cell
standard-cell catalog the paper characterizes.
"""

from .boolexpr import And, Expr, Lit, Not, Or, and_all, or_all, truth_table
from .technology import Technology, cryo5_technology
from .cells import CellTemplate, Stage
from .catalog import catalog_by_name, standard_cell_catalog

__all__ = [
    "And",
    "Expr",
    "Lit",
    "Not",
    "Or",
    "and_all",
    "or_all",
    "truth_table",
    "Technology",
    "cryo5_technology",
    "CellTemplate",
    "Stage",
    "catalog_by_name",
    "standard_cell_catalog",
]
