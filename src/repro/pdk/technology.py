"""Technology description of the cryogenic 5 nm FinFET process surrogate.

Bundles the calibrated n-/p-device compact models with the layout-level
constants a standard-cell library needs (supply, track geometry, wire
parasitics per pin).  The geometry numbers are ASAP7-like, scaled to
the 5 nm-class device the paper measures — the ASAP7 layouts the paper
reuses are "geometrically very close" to its 5 nm target, and so are
these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..device.bsimcmg import (
    CryoFinFET,
    FinFETParams,
    default_nfet_5nm,
    default_pfet_5nm,
)


@dataclass(frozen=True)
class Technology:
    """Process + cell-architecture constants."""

    name: str = "cryo5"
    #: Nominal supply [V].
    vdd: float = 0.7
    #: n-FinFET model parameters (single fin; sizing scales fin count).
    nfet: FinFETParams = field(default_factory=lambda: default_nfet_5nm(nfin=1))
    #: p-FinFET model parameters.
    pfet: FinFETParams = field(default_factory=lambda: default_pfet_5nm(nfin=1))
    #: P/N drive-balance fin ratio (holes are slower).
    beta_ratio: float = 1.5
    #: Layout area per fin [um^2] (contacted-poly-pitch x fin-pitch).
    area_per_fin_um2: float = 0.0147
    #: Local-interconnect parasitic at a cell output, per fin of drive [F].
    output_wire_cap_per_fin: float = 4.0e-17
    #: Default input slew grid [s] for characterization (7 points).
    slew_grid: tuple[float, ...] = (2e-12, 4e-12, 8e-12, 16e-12, 32e-12, 64e-12, 128e-12)
    #: Default output load grid [F] for characterization (7 points).
    load_grid: tuple[float, ...] = (4e-16, 8e-16, 1.6e-15, 3.2e-15, 6.4e-15, 1.28e-14, 2.56e-14)

    def nfet_device(self, nfin: int) -> CryoFinFET:
        """n-device with the given fin count."""
        return CryoFinFET(self.nfet.with_fins(nfin))

    def pfet_device(self, nfin: int) -> CryoFinFET:
        """p-device with the given fin count."""
        return CryoFinFET(self.pfet.with_fins(nfin))

    def pfin_for(self, nfin: int) -> int:
        """Fin count of a p-device drive-matched to ``nfin`` n-fins."""
        return max(1, round(self.beta_ratio * nfin))


def cryo5_technology(
    nfet: FinFETParams | None = None, pfet: FinFETParams | None = None
) -> Technology:
    """The default 5 nm-class cryogenic technology.

    Pass calibrated parameter sets (from
    :func:`repro.device.calibration.calibrate`) to build the
    measurement-backed variant the paper's flow uses.
    """
    kwargs = {}
    if nfet is not None:
        kwargs["nfet"] = nfet.with_fins(1)
    if pfet is not None:
        kwargs["pfet"] = pfet.with_fins(1)
    return Technology(**kwargs)
