"""Array-based levelized timing graph with incremental retiming.

The legacy engine in :mod:`repro.sta.timing` walks python dicts gate by
gate and re-runs a *full* netlist propagation for every query — the
stated blocker for EPFL-scale mapping sweeps, where sizing and cost
evaluation issue thousands of timing queries against nearly identical
netlists.  :class:`TimingGraph` compiles a
:class:`~repro.mapping.netlist.MappedNetlist` + characterized
:class:`~repro.charlib.nldm.Library` **once** into flat NumPy state:

* CSR-style fanin/fanout index arrays (net ids, per-gate arc slices,
  per-net sink slices, driver map);
* per-level gate batches (every gate at topological level *L* is timed
  in one vectorized step once level *L−1* settled);
* packed NLDM tables (:class:`~repro.sta.interp.PackedTables`) for the
  whole library, looked up through the batched bilinear kernel.

On top of the compiled graph, :meth:`retime` provides **incremental
STA**: :meth:`set_cell` records a drive-strength swap, and the next
retime re-propagates only the downstream cone of the changed gates plus
the upstream load-change ripple (a resized gate changes the pin
capacitance its fanin drivers see).  Propagation stops as soon as a
recomputed gate reproduces its previous arrival *and* slew exactly, so
a ``retime`` is bit-identical to an analysis from scratch — the
invariant ``tests/test_sta_graph.py`` checks over randomized edit
sequences.

Every elementwise operation replays the legacy engine's arithmetic in
the same order, so graph and legacy reports agree bit-for-bit; the
engine is selected per analyzer via :envvar:`REPRO_STA`
(``graph`` by default, ``legacy`` kept as the differential reference,
mirroring ``REPRO_KERNEL`` in :mod:`repro.spice.kernels`).
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..charlib.nldm import Library
from ..mapping.netlist import MappedNetlist
from .interp import PackedTables

__all__ = ["TimingGraph"]

#: At or below this many arcs per batch, scalar per-arc evaluation
#: beats the vectorized kernel's fixed NumPy call overhead (both are
#: bit-identical, so the crossover is purely a speed knob; measured
#: optimum on the benchgen suite).
_SCALAR_CUTOFF = 4


class TimingGraph:
    """Levelized vectorized STA engine over a mapped netlist.

    The graph snapshots the netlist *structure* (gates, pins, nets) at
    construction; only cell assignments may change afterwards, through
    :meth:`set_cell` (or :meth:`sync` against a structurally identical
    netlist).  Arrival/slew/load state lives in flat float64 arrays
    indexed by interned net id.
    """

    def __init__(self, netlist: MappedNetlist, library: Library, config=None):
        from .timing import SignoffConfig

        self.netlist = netlist
        self.library = library
        self.config = config or SignoffConfig()
        with obs.span("sta.graph_build", design=netlist.name,
                      gates=netlist.num_gates):
            self._compile()
        obs.count("sta.graph_builds")

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self) -> None:
        netlist = self.netlist
        library = self.library

        # --- net interning ------------------------------------------------
        net_id: dict[str, int] = {}
        names: list[str] = []

        def intern(net: str) -> int:
            nid = net_id.get(net)
            if nid is None:
                nid = len(names)
                net_id[net] = nid
                names.append(net)
            return nid

        for net in netlist.pi_nets:
            intern(net)

        gates = netlist.gates
        G = len(gates)
        self._gate_names = [g.name for g in gates]
        self._gate_output_pin = [g.output_pin for g in gates]
        self._gate_pins: list[tuple[tuple[str, int], ...]] = []
        self._cells = [library[g.cell] for g in gates]
        gate_out = np.empty(G, dtype=np.intp)
        for gi, gate in enumerate(gates):
            self._gate_pins.append(
                tuple((pin, intern(net)) for pin, net in gate.pins.items())
            )
            gate_out[gi] = intern(gate.output_net)
        self._gate_out = gate_out
        self._net_names = names
        self._net_id = net_id
        N = len(names)
        self._num_nets = N
        self._sorted_net_ids = sorted(range(N), key=names.__getitem__)
        self._num_pis = len(netlist.pi_nets)

        # --- primary outputs ---------------------------------------------
        self._po_ids = [net_id[n] for n in netlist.po_nets if n in net_id]
        self._po_set = set(self._po_ids)
        self._po_unique = np.array(sorted(self._po_set), dtype=np.intp)

        # --- drivers and levels ------------------------------------------
        driver_of = np.full(N, -1, dtype=np.intp)
        net_level = np.zeros(N, dtype=np.intp)
        gate_level = np.zeros(G, dtype=np.intp)
        for gi in range(G):
            lvl = 0
            for _, nid in self._gate_pins[gi]:
                if net_level[nid] > lvl:
                    lvl = net_level[nid]
            lvl += 1
            gate_level[gi] = lvl
            net_level[gate_out[gi]] = lvl
            driver_of[gate_out[gi]] = gi
        self._driver_of = driver_of
        self._gate_level = gate_level
        max_level = int(gate_level.max()) if G else 0
        self._levels: list[np.ndarray] = [
            np.array([], dtype=np.intp) for _ in range(max_level + 1)
        ]
        by_level: dict[int, list[int]] = {}
        for gi in range(G):
            by_level.setdefault(int(gate_level[gi]), []).append(gi)
        for lvl, members in by_level.items():
            self._levels[lvl] = np.array(members, dtype=np.intp)

        # --- sink structure (load computation) ---------------------------
        # Gate-major sink order replays the legacy ``netlist.loads()``
        # iteration, so per-net capacitance accumulation happens in the
        # exact same float-addition sequence as the reference engine.
        sink_net: list[int] = []
        sink_pin: list[str] = []
        sink_gate: list[int] = []
        gate_sink_start = np.empty(G + 1, dtype=np.intp)
        for gi in range(G):
            gate_sink_start[gi] = len(sink_net)
            for pin, nid in self._gate_pins[gi]:
                sink_net.append(nid)
                sink_pin.append(pin)
                sink_gate.append(gi)
        gate_sink_start[G] = len(sink_net)
        self._sink_net = np.array(sink_net, dtype=np.intp)
        self._sink_pin = sink_pin
        self._gate_sink_start = gate_sink_start
        self._sink_cap = np.empty(len(sink_net), dtype=float)
        for gi in range(G):
            caps = self._cells[gi].input_caps
            for pos in range(gate_sink_start[gi], gate_sink_start[gi + 1]):
                self._sink_cap[pos] = caps.get(sink_pin[pos], 0.0)

        net_sinks: list[list[int]] = [[] for _ in range(N)]
        for pos, nid in enumerate(sink_net):
            net_sinks[nid].append(pos)
        self._net_sinks = [np.array(p, dtype=np.intp) for p in net_sinks]
        self._net_fanout = np.array([len(p) for p in net_sinks], dtype=float)
        sink_gates: list[list[int]] = [[] for _ in range(N)]
        for pos, nid in enumerate(sink_net):
            gi = sink_gate[pos]
            if not sink_gates[nid] or sink_gates[nid][-1] != gi:
                sink_gates[nid].append(gi)
        self._net_sink_gates = sink_gates

        # --- packed NLDM tables for the whole library --------------------
        # Packing every cell (not just the mapped ones) makes any
        # within-family drive-strength swap a pure index update.
        self._tables = PackedTables()
        self._arc_tids: dict[tuple[str, str, str], tuple[int, int, int, int]] = {}
        for cell in library.cells.values():
            for arc in cell.arcs:
                self._arc_tids[(cell.name, arc.related_pin, arc.output_pin)] = (
                    self._tables.add(arc.cell_rise),
                    self._tables.add(arc.cell_fall),
                    self._tables.add(arc.rise_transition),
                    self._tables.add(arc.fall_transition),
                )
        self._tables.finalize()

        self._build_arcs()

        # --- mutable analysis state --------------------------------------
        self._load: np.ndarray | None = None
        self._arr: np.ndarray | None = None
        self._slew: np.ndarray | None = None
        self._from_arc: np.ndarray | None = None
        self._report = None
        self._pending: set[int] = set()
        self._dirty_load_nets: set[int] = set()
        self._needs_rebuild = False

    def _build_arcs(self) -> None:
        """(Re)build the level-ordered arc arrays from current cells."""
        G = len(self._cells)
        arc_src: list[int] = []
        arc_gate: list[int] = []
        arc_pin: list[str] = []
        arc_tid: list[tuple[int, int, int, int]] = []
        gate_arc_start = np.zeros(G + 1, dtype=np.intp)
        order = [gi for level in self._levels for gi in level]
        start_of = np.zeros(G, dtype=np.intp)
        end_of = np.zeros(G, dtype=np.intp)
        for gi in order:
            cell = self._cells[gi]
            out_pin = self._gate_output_pin[gi]
            start_of[gi] = len(arc_src)
            for pin, nid in self._gate_pins[gi]:
                tids = self._arc_tids.get((cell.name, pin, out_pin))
                if tids is None:
                    continue  # non-controlling pin (no arc)
                arc_src.append(nid)
                arc_gate.append(gi)
                arc_pin.append(pin)
                arc_tid.append(tids)
            end_of[gi] = len(arc_src)
        gate_arc_start[:G] = start_of
        self._arc_src = np.array(arc_src, dtype=np.intp)
        self._arc_gate = np.array(arc_gate, dtype=np.intp)
        self._arc_out_net = (
            self._gate_out[self._arc_gate]
            if arc_gate
            else np.empty(0, dtype=np.intp)
        )
        self._arc_pin = arc_pin
        self._arc_tid = (
            np.array(arc_tid, dtype=np.intp)
            if arc_tid
            else np.empty((0, 4), dtype=np.intp)
        )
        self._gate_arc_start = start_of
        self._gate_arc_end = end_of
        self.num_arcs = len(arc_src)

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    def _compute_all_loads(self) -> np.ndarray:
        cfg = self.config
        load = np.full(
            self._num_nets, cfg.wire_cap_base, dtype=float
        ) + cfg.wire_cap_per_fanout * self._net_fanout
        # ``np.add.at`` accumulates sequentially in index order, i.e.
        # per net in gate-major order — the legacy summation sequence.
        np.add.at(load, self._sink_net, self._sink_cap)
        load[self._po_unique] += cfg.output_load
        return load

    def _compute_one_load(self, nid: int) -> float:
        cfg = self.config
        positions = self._net_sinks[nid]
        total = np.float64(
            cfg.wire_cap_base + cfg.wire_cap_per_fanout * len(positions)
        )
        for pos in positions:
            total = total + self._sink_cap[pos]
        if nid in self._po_set:
            total = total + cfg.output_load
        return float(total)

    # ------------------------------------------------------------------
    # Vectorized gate evaluation
    # ------------------------------------------------------------------
    def _eval_gates(
        self, gates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Re-time ``gates`` against current arrival/slew/load state.

        Returns ``(arrival, slew, from_arc)`` aligned with ``gates``;
        ``from_arc`` is a global arc index or ``-1``.
        """
        cfg = self.config
        n = len(gates)
        arr_out = np.zeros(n, dtype=float)
        slew_out = np.full(n, cfg.input_slew, dtype=float)
        from_out = np.full(n, -1, dtype=np.intp)

        starts = self._gate_arc_start[gates]
        ends = self._gate_arc_end[gates]
        counts = ends - starts
        has = counts > 0
        if not has.any():
            return arr_out, slew_out, from_out
        starts_h = starts[has]
        counts_h = counts[has]
        total = int(counts_h.sum())
        if total <= _SCALAR_CUTOFF:
            # Tiny batch (a narrow retime cone level): per-call NumPy
            # overhead dwarfs the work, so evaluate arc-by-arc — the
            # scalar lookup is bit-identical to the batched kernel.
            self._eval_gates_scalar(gates, starts, ends, arr_out, slew_out, from_out)
            return arr_out, slew_out, from_out
        offsets = np.concatenate(([0], np.cumsum(counts_h)[:-1]))
        idx = np.arange(total) + np.repeat(starts_h - offsets, counts_h)

        src = self._arc_src[idx]
        in_arr = self._arr[src]
        in_slew = self._slew[src]
        load = self._load[self._arc_out_net[idx]]
        tid = self._arc_tid[idx]
        # One batched lookup covering all four table kinds of every arc
        # (rise/fall delay, rise/fall transition).
        quad = self._tables.lookup(
            tid.T.reshape(-1), np.tile(in_slew, 4), np.tile(load, 4)
        ).reshape(4, total)
        delay = np.maximum(quad[0], quad[1])
        o_slew = np.maximum(quad[2], quad[3])
        cand = in_arr + delay

        best = np.maximum.reduceat(cand, offsets)
        seg = np.repeat(np.arange(len(starts_h)), counts_h)
        # First arc attaining the per-gate max — the legacy engine's
        # strict ``candidate > best`` update rule.
        pos = np.where(cand == best[seg], np.arange(total), total)
        first = np.minimum.reduceat(pos, offsets)
        win = best > 0.0
        arr_out[has] = np.where(win, best, 0.0)
        slew_out[has] = np.where(win, o_slew[first], cfg.input_slew)
        from_out[has] = np.where(win, idx[first], -1)
        return arr_out, slew_out, from_out

    def _eval_gates_scalar(
        self, gates, starts, ends, arr_out, slew_out, from_out
    ) -> None:
        """Arc-by-arc evaluation into the preallocated output arrays.

        Replays the legacy per-gate loop (strict ``candidate > best``
        from a 0.0 floor) with scalar NLDM lookups — bit-identical to
        the batched path, minus its fixed overhead.
        """
        cfg = self.config
        arr = self._arr
        slw = self._slew
        loads = self._load
        table = self._tables.table
        arc_src = self._arc_src
        arc_out = self._arc_out_net
        arc_tid = self._arc_tid
        for k in range(len(gates)):
            best = 0.0
            best_slew = cfg.input_slew
            best_arc = -1
            for a in range(starts[k], ends[k]):
                src = arc_src[a]
                in_slew = float(slw[src])
                load = float(loads[arc_out[a]])
                t0, t1, t2, t3 = arc_tid[a]
                delay = max(
                    table(t0).lookup(in_slew, load),
                    table(t1).lookup(in_slew, load),
                )
                candidate = float(arr[src]) + delay
                if candidate > best:
                    best = candidate
                    best_slew = max(
                        table(t2).lookup(in_slew, load),
                        table(t3).lookup(in_slew, load),
                    )
                    best_arc = a
            arr_out[k] = best
            slew_out[k] = best_slew
            from_out[k] = best_arc

    def _apply(self, gates: np.ndarray) -> np.ndarray:
        """Evaluate ``gates``, commit results, return changed mask."""
        arr, slw, frm = self._eval_gates(gates)
        out_nets = self._gate_out[gates]
        changed = (arr != self._arr[out_nets]) | (slw != self._slew[out_nets])
        self._arr[out_nets] = arr
        self._slew[out_nets] = slw
        self._from_arc[gates] = frm
        return changed

    # ------------------------------------------------------------------
    # Full analysis
    # ------------------------------------------------------------------
    def analyze(self):
        """Full propagation from scratch; returns a TimingReport."""
        self._full_update()
        return self.report()

    def _full_update(self) -> None:
        """Full propagation from scratch (state only, no report)."""
        cfg = self.config
        if self._needs_rebuild:
            self._build_arcs()
            self._needs_rebuild = False
        self._load = self._compute_all_loads()
        self._arr = np.zeros(self._num_nets, dtype=float)
        self._slew = np.full(self._num_nets, cfg.input_slew, dtype=float)
        self._from_arc = np.full(len(self._cells), -1, dtype=np.intp)
        for gates in self._levels[1:]:
            if len(gates):
                self._apply(gates)
        self._pending.clear()
        self._dirty_load_nets.clear()
        self._report = None
        if obs.current_tracer() is not None:
            obs.count("sta.timing_queries")
            obs.count("sta.full_retimes")
            obs.count("sta.arc_lookups", self.num_arcs)
            obs.count("sta.gates_analyzed", len(self._cells))

    # ------------------------------------------------------------------
    # Incremental editing
    # ------------------------------------------------------------------
    def set_cell(self, gate_index: int, cell_name: str) -> None:
        """Swap one gate's cell (same pin structure) for the next retime.

        A swap whose timing-arc pin sequence differs from the old
        cell's forces a full arc rebuild on the next (re)analysis; the
        common within-family case is a pure table-index update.
        """
        new = self.library[cell_name]
        old = self._cells[gate_index]
        if new is old:
            return
        out_pin = self._gate_output_pin[gate_index]
        new_arcs = [
            (pin, self._arc_tids[(new.name, pin, out_pin)])
            for pin, _ in self._gate_pins[gate_index]
            if (new.name, pin, out_pin) in self._arc_tids
        ]
        start = self._gate_arc_start[gate_index]
        end = self._gate_arc_end[gate_index]
        if [pin for pin, _ in new_arcs] != self._arc_pin[start:end]:
            self._needs_rebuild = True
        else:
            for k, (_, tids) in enumerate(new_arcs):
                self._arc_tid[start + k] = tids
        # Pin-capacitance ripple: the loads of this gate's input nets
        # change, which re-times their *drivers*.
        new_caps = new.input_caps
        sink_start = self._gate_sink_start[gate_index]
        for offset, (pin, nid) in enumerate(self._gate_pins[gate_index]):
            cap = new_caps.get(pin, 0.0)
            pos = sink_start + offset
            if self._sink_cap[pos] != cap:
                self._sink_cap[pos] = cap
                self._dirty_load_nets.add(int(nid))
        self._cells[gate_index] = new
        self._pending.add(int(gate_index))
        self._report = None

    def sync(self, netlist: MappedNetlist) -> bool:
        """Absorb external cell edits from a structurally identical
        netlist (same gates/pins/nets); returns False — triggering a
        full recompile — when the structure no longer matches."""
        gates = netlist.gates
        if len(gates) != len(self._cells):
            return False
        for gi, gate in enumerate(gates):
            if gate.name != self._gate_names[gi]:
                return False
            if gate.cell != self._cells[gi].name:
                if len(gate.pins) != len(self._gate_pins[gi]):
                    return False
                self.set_cell(gi, gate.cell)
        return True

    def retime(self, changed_gates=None):
        """Incrementally re-time pending edits; returns a TimingReport.

        Falls back to a full analysis on the first call (or after a
        structural change).  Exact by construction: propagation only
        stops at gates whose recomputed arrival *and* slew match their
        previous values bit-for-bit.
        """
        self.update(changed_gates)
        return self.report()

    def update(self, changed_gates=None) -> None:
        """Incrementally propagate pending edits (state only).

        Cheap-query form of :meth:`retime` for cost loops that only
        need :meth:`max_delay`/:meth:`net_arrival` afterwards — no
        per-net report dicts are materialized.
        """
        if changed_gates is not None:
            for gi in changed_gates:
                self._pending.add(int(gi))
        if self._arr is None or self._needs_rebuild:
            self._full_update()
            return
        if obs.current_tracer() is not None:
            obs.count("sta.timing_queries")
        if not self._pending and not self._dirty_load_nets:
            return

        dirty: set[int] = set(self._pending)
        for nid in sorted(self._dirty_load_nets):
            new_load = self._compute_one_load(nid)
            if new_load != self._load[nid]:
                self._load[nid] = new_load
                driver = int(self._driver_of[nid])
                if driver >= 0:
                    dirty.add(driver)

        buckets: dict[int, set[int]] = {}
        for gi in dirty:
            buckets.setdefault(int(self._gate_level[gi]), set()).add(gi)
        cone = 0
        while buckets:
            lvl = min(buckets)
            gates = np.array(sorted(buckets.pop(lvl)), dtype=np.intp)
            cone += len(gates)
            changed = self._apply(gates)
            for gi in gates[changed]:
                out_net = int(self._gate_out[gi])
                for sink in self._net_sink_gates[out_net]:
                    buckets.setdefault(int(self._gate_level[sink]), set()).add(sink)
        self._pending.clear()
        self._dirty_load_nets.clear()
        self._report = None
        if obs.current_tracer() is not None:
            obs.count("sta.incremental_hits")
            obs.observe("sta.retime_cone_size", cone)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _require_state(self) -> None:
        if self._arr is None:
            raise RuntimeError("run analyze() or retime() first")

    def net_arrival(self, net: str, default: float = 0.0) -> float:
        self._require_state()
        nid = self._net_id.get(net)
        return float(self._arr[nid]) if nid is not None else default

    def net_slew(self, net: str, default: float | None = None) -> float:
        self._require_state()
        nid = self._net_id.get(net)
        if nid is None:
            return self.config.input_slew if default is None else default
        return float(self._slew[nid])

    def net_load(self, net: str, default: float = 0.0) -> float:
        self._require_state()
        nid = self._net_id.get(net)
        return float(self._load[nid]) if nid is not None else default

    def max_delay(self) -> float:
        self._require_state()
        if not self._po_ids:
            return 0.0
        return float(self._arr[self._worst_po()])

    def _worst_po(self) -> int:
        worst = self._po_ids[0]
        for nid in self._po_ids[1:]:
            if self._arr[nid] > self._arr[worst]:
                worst = nid
        return worst

    def _trace_path(self, nid: int) -> list[str]:
        path: list[str] = []
        guard = 0
        current = nid
        while True:
            guard += 1
            if guard > len(self._cells) + 1:
                break  # defensive: malformed netlist
            driver = int(self._driver_of[current])
            if driver < 0:
                break
            arc = int(self._from_arc[driver])
            if arc < 0:
                break
            path.append(self._gate_names[driver])
            current = int(self._arc_src[arc])
        path.reverse()
        return path

    def net_loads_dict(self) -> dict[str, float]:
        """``net -> load [F]`` in sorted-net order (legacy-compatible)."""
        if self._load is None:
            self._load = self._compute_all_loads()
        load = self._load
        names = self._net_names
        return {names[i]: float(load[i]) for i in self._sorted_net_ids}

    def report(self):
        """Materialize the current state as a TimingReport."""
        from .timing import TimingReport

        if self._report is not None:
            return self._report
        self._require_state()
        names = self._net_names
        arr = self._arr
        slw = self._slew
        arrival = {names[i]: float(arr[i]) for i in range(self._num_nets)}
        slew = {names[i]: float(slw[i]) for i in range(self._num_nets)}
        report = TimingReport(
            arrival=arrival,
            slew=slew,
            net_load=self.net_loads_dict(),
        )
        if self._po_ids:
            worst = self._worst_po()
            report.max_delay = float(arr[worst])
            report.critical_path = self._trace_path(worst)
        report.po_arrival = {
            net: (float(arr[self._net_id[net]]) if net in self._net_id else 0.0)
            for net in self.netlist.po_nets
        }
        self._report = report
        return report
