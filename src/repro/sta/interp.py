"""Vectorized NLDM bilinear-interpolation kernels.

The scalar reference path (:meth:`repro.charlib.nldm.NLDMTable.lookup`)
interpolates one ``(slew, load)`` point per call with ``bisect`` and
python floats.  Signoff over a levelized timing graph instead needs
*thousands* of lookups per propagation step — one per timing arc per
table kind — so this module provides the batched alternative, in the
same spirit as :mod:`repro.spice.kernels`:

* :class:`PackedTables` interns every distinct :class:`NLDMTable` once
  and packs the axes/values of same-shaped tables into dense tensors
  (``(tables, S)`` slew axes, ``(tables, L)`` load axes,
  ``(tables, S, L)`` values);
* :func:`bilinear_many` evaluates a whole batch of
  ``(table, slew, load)`` queries in a handful of NumPy calls.

The vectorized kernel replays the scalar ``lookup`` arithmetic
operation-for-operation (same clamping, same ``bisect_right`` index
rule, same corner-blend expression), so batched and scalar results are
bit-identical — which is what lets the graph STA engine be checked
differentially against the legacy per-gate engine at zero tolerance in
``tests/test_sta_graph.py``.
"""

from __future__ import annotations

import numpy as np

from ..charlib.nldm import NLDMTable

__all__ = ["PackedTables", "bilinear_many"]


def bilinear_many(
    slew_axes: np.ndarray,
    load_axes: np.ndarray,
    values: np.ndarray,
    rows: np.ndarray,
    slews: np.ndarray,
    loads: np.ndarray,
) -> np.ndarray:
    """Batched bilinear interpolation with clamped extrapolation.

    ``slew_axes``/``load_axes``/``values`` are the packed table tensors
    of one shape group (``(T, S)``, ``(T, L)``, ``(T, S, L)``);
    ``rows[i]`` selects the table row for query ``i`` at
    ``(slews[i], loads[i])``.  Mirrors
    :meth:`repro.charlib.nldm.NLDMTable.lookup` bit-for-bit.
    """
    sa = slew_axes[rows]  # (n, S)
    la = load_axes[rows]  # (n, L)
    # min(max(...)) is np.clip's definition, minus its wrapper overhead
    # (this runs on every timing arc of every retime batch).
    s = np.minimum(np.maximum(slews, sa[:, 0]), sa[:, -1])
    l = np.minimum(np.maximum(loads, la[:, 0]), la[:, -1])
    # ``bisect_right(axis, x) - 1`` == number of grid points <= x,
    # minus one; capped at the last interpolable cell.  The lower clip
    # is free: ``s >= sa[:, 0]`` after clamping, so the count is >= 1.
    i = np.minimum((s[:, None] >= sa).sum(axis=1) - 1, sa.shape[1] - 2)
    j = np.minimum((l[:, None] >= la).sum(axis=1) - 1, la.shape[1] - 2)
    r = np.arange(len(rows))
    s0 = sa[r, i]
    l0 = la[r, j]
    fs = (s - s0) / (sa[r, i + 1] - s0)
    fl = (l - l0) / (la[r, j + 1] - l0)
    v = values[rows]  # (n, S, L)
    return (
        v[r, i, j] * (1 - fs) * (1 - fl)
        + v[r, i + 1, j] * fs * (1 - fl)
        + v[r, i, j + 1] * (1 - fs) * fl
        + v[r, i + 1, j + 1] * fs * fl
    )


class PackedTables:
    """Registry packing NLDM tables into dense tensors for batch lookup.

    Tables are interned by object identity (cells share one frozen
    :class:`NLDMTable` instance per arc/kind, so identity dedup is the
    cheap and correct choice).  :meth:`finalize` groups tables by axis
    shape — a library may legitimately mix grid sizes — and builds one
    packed tensor set per group; :meth:`lookup` then dispatches a mixed
    batch of table ids to the right group kernels.
    """

    def __init__(self) -> None:
        self._by_identity: dict[int, int] = {}
        self._tables: list[NLDMTable] = []
        self._groups: list[tuple[np.ndarray, np.ndarray, np.ndarray]] | None = None
        self._group_of: np.ndarray | None = None
        self._row_of: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._tables)

    def table(self, tid: int) -> NLDMTable:
        """The interned table behind ``tid`` (for scalar fallbacks)."""
        return self._tables[tid]

    @property
    def num_groups(self) -> int:
        if self._groups is None:
            raise RuntimeError("PackedTables not finalized")
        return len(self._groups)

    def add(self, table: NLDMTable) -> int:
        """Intern ``table`` and return its stable id."""
        tid = self._by_identity.get(id(table))
        if tid is None:
            if self._groups is not None:
                raise RuntimeError("cannot add tables after finalize()")
            tid = len(self._tables)
            self._by_identity[id(table)] = tid
            self._tables.append(table)
        return tid

    def finalize(self) -> None:
        """Pack interned tables into per-shape tensors (idempotent)."""
        if self._groups is not None:
            return
        by_shape: dict[tuple[int, int], list[int]] = {}
        for tid, table in enumerate(self._tables):
            by_shape.setdefault((len(table.slews), len(table.loads)), []).append(tid)
        self._group_of = np.empty(len(self._tables), dtype=np.intp)
        self._row_of = np.empty(len(self._tables), dtype=np.intp)
        groups = []
        for gi, (_, tids) in enumerate(sorted(by_shape.items())):
            slew_axes = np.array([self._tables[t].slews for t in tids], dtype=float)
            load_axes = np.array([self._tables[t].loads for t in tids], dtype=float)
            values = np.array([self._tables[t].values for t in tids], dtype=float)
            for row, tid in enumerate(tids):
                self._group_of[tid] = gi
                self._row_of[tid] = row
            groups.append((slew_axes, load_axes, values))
        self._groups = groups

    def lookup(
        self, tids: np.ndarray, slews: np.ndarray, loads: np.ndarray
    ) -> np.ndarray:
        """Evaluate ``table[tids[i]].lookup(slews[i], loads[i])`` batched."""
        if self._groups is None:
            raise RuntimeError("PackedTables not finalized")
        tids = np.asarray(tids, dtype=np.intp)
        if len(self._groups) == 1:
            slew_axes, load_axes, values = self._groups[0]
            return bilinear_many(
                slew_axes, load_axes, values, self._row_of[tids], slews, loads
            )
        out = np.empty(tids.shape, dtype=float)
        gids = self._group_of[tids]
        for gi, (slew_axes, load_axes, values) in enumerate(self._groups):
            mask = gids == gi
            if not mask.any():
                continue
            out[mask] = bilinear_many(
                slew_axes,
                load_axes,
                values,
                self._row_of[tids[mask]],
                slews[mask],
                loads[mask],
            )
        return out
