"""Static timing analysis over mapped netlists.

The signoff-grade delay engine (the PrimeTime substrate): NLDM table
lookups with slew propagation over the gate-level netlist in
topological order, worst-arrival maximization, and critical-path
extraction.  All values SI (seconds, farads).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..charlib.nldm import Library
from ..mapping.netlist import MappedNetlist


@dataclass(frozen=True)
class SignoffConfig:
    """Parasitic and boundary conditions for signoff analysis."""

    #: Slew assumed at primary inputs [s].
    input_slew: float = 1.0e-11
    #: Load assumed at primary outputs [F].
    output_load: float = 1.0e-15
    #: Fixed wire capacitance per net [F].
    wire_cap_base: float = 1.0e-16
    #: Additional wire capacitance per fanout [F].
    wire_cap_per_fanout: float = 2.0e-17


@dataclass
class TimingReport:
    """Result of one STA run."""

    arrival: dict[str, float]
    slew: dict[str, float]
    net_load: dict[str, float]
    critical_path: list[str] = field(default_factory=list)

    @property
    def max_delay(self) -> float:
        """Critical (worst PO arrival) delay [s]."""
        return self._max_delay

    _max_delay: float = 0.0


class StaticTimingAnalyzer:
    """NLDM-based STA for combinational mapped netlists."""

    def __init__(
        self,
        netlist: MappedNetlist,
        library: Library,
        config: SignoffConfig | None = None,
    ):
        self.netlist = netlist
        self.library = library
        self.config = config or SignoffConfig()

    @classmethod
    def from_context(cls, context, netlist: MappedNetlist) -> "StaticTimingAnalyzer":
        """Build an analyzer from a :class:`repro.core.context.DesignContext`
        (library + signoff boundary conditions come from the context)."""
        return cls(netlist, context.library, context.signoff)

    # ------------------------------------------------------------------
    def net_loads(self) -> dict[str, float]:
        """Capacitive load per net [F]: sink pins + wire + PO loads."""
        config = self.config
        loads: dict[str, float] = {}
        sink_map = self.netlist.loads()
        all_nets = set(self.netlist.pi_nets)
        for gate in self.netlist.gates:
            all_nets.add(gate.output_net)
            all_nets.update(gate.pins.values())
        po_nets = set(self.netlist.po_nets)
        # Sorted iteration keeps downstream float summations (e.g. the
        # switching-power accumulation over .items()) byte-identical
        # across processes; set order varies with string hashing.
        for net in sorted(all_nets):
            sinks = sink_map.get(net, [])
            total = config.wire_cap_base + config.wire_cap_per_fanout * len(sinks)
            for gate, pin in sinks:
                total += self.library[gate.cell].input_caps.get(pin, 0.0)
            if net in po_nets:
                total += config.output_load
            loads[net] = total
        return loads

    # ------------------------------------------------------------------
    def analyze(self) -> TimingReport:
        """Propagate arrivals/slews; returns the timing report."""
        config = self.config
        loads = self.net_loads()
        arrival: dict[str, float] = {}
        slew: dict[str, float] = {}
        from_pin: dict[str, tuple[str, str] | None] = {}
        arc_lookups = 0

        for net in self.netlist.pi_nets:
            arrival[net] = 0.0
            slew[net] = config.input_slew
            from_pin[net] = None

        for gate in self.netlist.gates:
            cell = self.library[gate.cell]
            load = loads[gate.output_net]
            best_arrival = 0.0
            best_slew = config.input_slew
            best_source: tuple[str, str] | None = None
            for pin, net in gate.pins.items():
                in_arrival = arrival[net]
                in_slew = slew[net]
                try:
                    arc = cell.arc(pin, gate.output_pin)
                except KeyError:
                    continue  # non-controlling pin (no arc)
                arc_lookups += 1
                delay = max(
                    arc.cell_rise.lookup(in_slew, load),
                    arc.cell_fall.lookup(in_slew, load),
                )
                out_slew = max(
                    arc.rise_transition.lookup(in_slew, load),
                    arc.fall_transition.lookup(in_slew, load),
                )
                candidate = in_arrival + delay
                if candidate > best_arrival:
                    best_arrival = candidate
                    best_slew = out_slew
                    best_source = (gate.name, pin)
            arrival[gate.output_net] = best_arrival
            slew[gate.output_net] = best_slew
            from_pin[gate.output_net] = best_source

        if obs.current_tracer() is not None:
            obs.count("sta.timing_queries")
            obs.count("sta.arc_lookups", arc_lookups)
            obs.count("sta.gates_analyzed", len(self.netlist.gates))
        report = TimingReport(arrival=arrival, slew=slew, net_load=loads)
        if self.netlist.po_nets:
            worst_net = max(self.netlist.po_nets, key=lambda n: arrival.get(n, 0.0))
            report._max_delay = arrival.get(worst_net, 0.0)
            report.critical_path = self._trace_path(worst_net, from_pin)
        return report

    def _trace_path(
        self, net: str, from_pin: dict[str, tuple[str, str] | None]
    ) -> list[str]:
        """Walk the worst-arrival chain back to a PI."""
        gate_by_name = {gate.name: gate for gate in self.netlist.gates}
        path: list[str] = []
        current = net
        guard = 0
        while current in from_pin and from_pin[current] is not None:
            guard += 1
            if guard > len(self.netlist.gates) + 1:
                break  # defensive: malformed netlist
            gate_name, pin = from_pin[current]
            path.append(gate_name)
            current = gate_by_name[gate_name].pins[pin]
        path.reverse()
        return path


def critical_delay(
    netlist: MappedNetlist, library: Library, config: SignoffConfig | None = None
) -> float:
    """Convenience: worst PO arrival [s]."""
    return StaticTimingAnalyzer(netlist, library, config).analyze().max_delay
