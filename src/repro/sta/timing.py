"""Static timing analysis over mapped netlists.

The signoff-grade delay engine (the PrimeTime substrate): NLDM table
lookups with slew propagation over the gate-level netlist in
topological order, worst-arrival maximization, and critical-path
extraction.  All values SI (seconds, farads).

Two engines implement the same contract:

* ``graph`` (default) — the array-based levelized
  :class:`~repro.sta.graph.TimingGraph`, vectorized over whole levels
  of timing arcs and capable of incremental retiming;
* ``legacy`` — the original per-gate dict propagation below, kept as
  the differential reference (``tests/test_sta_graph.py`` pins
  graph ≡ legacy bit-for-bit).

Selection mirrors ``REPRO_KERNEL`` in :mod:`repro.spice.kernels`: the
:envvar:`REPRO_STA` environment variable or the ``engine=`` argument
of :class:`StaticTimingAnalyzer`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .. import obs
from ..charlib.nldm import Library
from ..mapping.netlist import MappedNetlist

#: STA engines selectable through ``REPRO_STA``.
VALID_ENGINES: tuple[str, ...] = ("graph", "legacy")


def default_engine() -> str:
    """The STA engine the environment asks for (``graph`` by default)."""
    engine = os.environ.get("REPRO_STA", "graph").strip().lower()
    if engine not in VALID_ENGINES:
        raise ValueError(
            f"REPRO_STA must be one of {VALID_ENGINES}, got {engine!r}"
        )
    return engine


@dataclass(frozen=True)
class SignoffConfig:
    """Parasitic and boundary conditions for signoff analysis."""

    #: Slew assumed at primary inputs [s].
    input_slew: float = 1.0e-11
    #: Load assumed at primary outputs [F].
    output_load: float = 1.0e-15
    #: Fixed wire capacitance per net [F].
    wire_cap_base: float = 1.0e-16
    #: Additional wire capacitance per fanout [F].
    wire_cap_per_fanout: float = 2.0e-17


@dataclass
class TimingReport:
    """Result of one STA run."""

    arrival: dict[str, float]
    slew: dict[str, float]
    net_load: dict[str, float]
    critical_path: list[str] = field(default_factory=list)
    #: Critical (worst PO arrival) delay [s].
    max_delay: float = 0.0
    #: Arrival time per primary-output net [s].
    po_arrival: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready summary (the signoff surface, not per-net state)."""
        return {
            "max_delay_s": self.max_delay,
            "critical_path": list(self.critical_path),
            "po_arrival_s": dict(self.po_arrival),
        }


class StaticTimingAnalyzer:
    """NLDM-based STA for combinational mapped netlists.

    ``engine`` picks the implementation: ``"graph"`` (levelized array
    engine with incremental retiming across repeated ``analyze()``
    calls) or ``"legacy"`` (per-gate dict reference).  Defaults to
    :envvar:`REPRO_STA` (``graph`` unless overridden).
    """

    def __init__(
        self,
        netlist: MappedNetlist,
        library: Library,
        config: SignoffConfig | None = None,
        engine: str | None = None,
    ):
        self.netlist = netlist
        self.library = library
        self.config = config or SignoffConfig()
        self.engine = engine or default_engine()
        if self.engine not in VALID_ENGINES:
            raise ValueError(
                f"engine must be one of {VALID_ENGINES}, got {self.engine!r}"
            )
        self._graph = None
        # Legacy-path caches (built once per analyzer, not per call).
        # Both store gate *indices*, not gate objects: sizing swaps
        # cells by replacing entries of ``netlist.gates`` in place, and
        # an index stays valid where a cached instance would go stale.
        self._sink_map: dict[str, list[tuple[int, str]]] | None = None
        self._gate_index: dict[str, int] | None = None

    @classmethod
    def from_context(cls, context, netlist: MappedNetlist) -> "StaticTimingAnalyzer":
        """Build an analyzer from a :class:`repro.core.context.DesignContext`
        (library + signoff boundary conditions come from the context)."""
        return cls(netlist, context.library, context.signoff)

    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The compiled :class:`~repro.sta.graph.TimingGraph` (graph
        engine only; compiled lazily on first use)."""
        if self.engine != "graph":
            raise RuntimeError("graph engine not selected")
        if self._graph is None:
            from .graph import TimingGraph

            self._graph = TimingGraph(self.netlist, self.library, self.config)
        return self._graph

    def _sinks(self) -> dict[str, list[tuple[int, str]]]:
        """``net -> [(gate index, pin)]`` in ``netlist.loads()`` order."""
        if self._sink_map is None:
            sink_map: dict[str, list[tuple[int, str]]] = {}
            for index, gate in enumerate(self.netlist.gates):
                for pin, net in gate.pins.items():
                    sink_map.setdefault(net, []).append((index, pin))
            self._sink_map = sink_map
        return self._sink_map

    # ------------------------------------------------------------------
    def net_loads(self) -> dict[str, float]:
        """Capacitive load per net [F]: sink pins + wire + PO loads."""
        if self.engine == "graph":
            graph = self.graph
            if not graph.sync(self.netlist):
                self._graph = None
                graph = self.graph
            return graph.net_loads_dict()
        config = self.config
        loads: dict[str, float] = {}
        sink_map = self._sinks()
        all_nets = set(self.netlist.pi_nets)
        for gate in self.netlist.gates:
            all_nets.add(gate.output_net)
            all_nets.update(gate.pins.values())
        po_nets = set(self.netlist.po_nets)
        # Sorted iteration keeps downstream float summations (e.g. the
        # switching-power accumulation over .items()) byte-identical
        # across processes; set order varies with string hashing.
        gates = self.netlist.gates
        for net in sorted(all_nets):
            sinks = sink_map.get(net, [])
            total = config.wire_cap_base + config.wire_cap_per_fanout * len(sinks)
            for index, pin in sinks:
                total += self.library[gates[index].cell].input_caps.get(pin, 0.0)
            if net in po_nets:
                total += config.output_load
            loads[net] = total
        return loads

    # ------------------------------------------------------------------
    def analyze(self) -> TimingReport:
        """Propagate arrivals/slews; returns the timing report.

        With the graph engine, repeated calls against an (externally
        cell-edited) netlist retime incrementally instead of paying a
        full propagation; the result is identical either way.
        """
        if self.engine == "graph":
            return self._analyze_graph()
        return self._analyze_legacy()

    def _analyze_graph(self) -> TimingReport:
        graph = self.graph
        if not graph.sync(self.netlist):
            # Structural change: recompile from scratch.
            self._graph = None
            graph = self.graph
        return graph.retime()

    def _analyze_legacy(self) -> TimingReport:
        config = self.config
        loads = self.net_loads()
        arrival: dict[str, float] = {}
        slew: dict[str, float] = {}
        from_pin: dict[str, tuple[str, str] | None] = {}
        arc_lookups = 0

        for net in self.netlist.pi_nets:
            arrival[net] = 0.0
            slew[net] = config.input_slew
            from_pin[net] = None

        for gate in self.netlist.gates:
            cell = self.library[gate.cell]
            load = loads[gate.output_net]
            best_arrival = 0.0
            best_slew = config.input_slew
            best_source: tuple[str, str] | None = None
            for pin, net in gate.pins.items():
                in_arrival = arrival[net]
                in_slew = slew[net]
                try:
                    arc = cell.arc(pin, gate.output_pin)
                except KeyError:
                    continue  # non-controlling pin (no arc)
                arc_lookups += 1
                delay = max(
                    arc.cell_rise.lookup(in_slew, load),
                    arc.cell_fall.lookup(in_slew, load),
                )
                out_slew = max(
                    arc.rise_transition.lookup(in_slew, load),
                    arc.fall_transition.lookup(in_slew, load),
                )
                candidate = in_arrival + delay
                if candidate > best_arrival:
                    best_arrival = candidate
                    best_slew = out_slew
                    best_source = (gate.name, pin)
            arrival[gate.output_net] = best_arrival
            slew[gate.output_net] = best_slew
            from_pin[gate.output_net] = best_source

        if obs.current_tracer() is not None:
            obs.count("sta.timing_queries")
            obs.count("sta.full_retimes")
            obs.count("sta.arc_lookups", arc_lookups)
            obs.count("sta.gates_analyzed", len(self.netlist.gates))
        report = TimingReport(arrival=arrival, slew=slew, net_load=loads)
        if self.netlist.po_nets:
            worst_net = max(self.netlist.po_nets, key=lambda n: arrival.get(n, 0.0))
            report.max_delay = arrival.get(worst_net, 0.0)
            report.critical_path = self._trace_path(worst_net, from_pin)
        report.po_arrival = {
            net: arrival.get(net, 0.0) for net in self.netlist.po_nets
        }
        return report

    def _trace_path(
        self, net: str, from_pin: dict[str, tuple[str, str] | None]
    ) -> list[str]:
        """Walk the worst-arrival chain back to a PI."""
        gates = self.netlist.gates
        if self._gate_index is None:
            self._gate_index = {gate.name: i for i, gate in enumerate(gates)}
        gate_index = self._gate_index
        path: list[str] = []
        current = net
        guard = 0
        while current in from_pin and from_pin[current] is not None:
            guard += 1
            if guard > len(gates) + 1:
                break  # defensive: malformed netlist
            gate_name, pin = from_pin[current]
            path.append(gate_name)
            current = gates[gate_index[gate_name]].pins[pin]
        path.reverse()
        return path


def critical_delay(
    netlist: MappedNetlist, library: Library, config: SignoffConfig | None = None
) -> float:
    """Convenience: worst PO arrival [s]."""
    return StaticTimingAnalyzer(netlist, library, config).analyze().max_delay
