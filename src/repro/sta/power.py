"""Signoff power analysis: leakage / internal / switching decomposition.

Reproduces the PrimeTime methodology behind Fig. 2(c) and Fig. 3(a):

* **switching power** — ``0.5 * alpha * C_net * V_dd^2 * f`` per net,
  with toggle rates measured by bit-parallel random-vector simulation
  of the mapped netlist;
* **internal power** — per-event internal energy from the liberty
  tables (at the net's analyzed slew and load) times the output toggle
  rate and clock frequency;
* **leakage power** — state-probability-weighted per-state leakage
  from the liberty ``leakage_power`` groups.

The temperature dependence enters exclusively through the library —
running the same netlist against the 300 K and 10 K libraries yields
the paper's leakage-share collapse.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .. import obs
from ..charlib.nldm import Library
from ..mapping.netlist import MappedNetlist
from .timing import SignoffConfig, StaticTimingAnalyzer, TimingReport


@dataclass(frozen=True)
class PowerReport:
    """Power decomposition [W] at one operating point."""

    leakage: float
    internal: float
    switching: float
    clock_period: float
    temperature: float

    @property
    def total(self) -> float:
        return self.leakage + self.internal + self.switching

    @property
    def leakage_share(self) -> float:
        """Fraction of total power that is leakage (Fig. 2c metric)."""
        total = self.total
        return self.leakage / total if total > 0.0 else 0.0

    @property
    def internal_share(self) -> float:
        total = self.total
        return self.internal / total if total > 0.0 else 0.0

    @property
    def switching_share(self) -> float:
        total = self.total
        return self.switching / total if total > 0.0 else 0.0


class PowerAnalyzer:
    """Vector-driven power analysis of a mapped netlist."""

    def __init__(
        self,
        netlist: MappedNetlist,
        library: Library,
        config: SignoffConfig | None = None,
        vectors: int = 512,
        seed: int = 0,
        pi_probability: float = 0.5,
    ):
        if vectors < 2:
            raise ValueError("need at least two vectors for toggle counting")
        self.netlist = netlist
        self.library = library
        self.config = config or SignoffConfig()
        self.vectors = vectors
        self.seed = seed
        self.pi_probability = pi_probability

    @classmethod
    def from_context(
        cls,
        context,
        netlist: MappedNetlist,
        vectors: int = 512,
        seed: int | None = None,
        pi_probability: float = 0.5,
    ) -> "PowerAnalyzer":
        """Build an analyzer from a :class:`repro.core.context.DesignContext`;
        ``seed=None`` falls back to the context's vector seed."""
        return cls(
            netlist,
            context.library,
            context.signoff,
            vectors=vectors,
            seed=context.seed if seed is None else seed,
            pi_probability=pi_probability,
        )

    # ------------------------------------------------------------------
    def _simulate(self) -> dict[str, int]:
        rng = random.Random(self.seed)
        words = []
        threshold = self.pi_probability
        for _ in self.netlist.pi_nets:
            if threshold == 0.5:
                words.append(rng.getrandbits(self.vectors))
            else:
                word = 0
                for bit in range(self.vectors):
                    if rng.random() < threshold:
                        word |= 1 << bit
                words.append(word)
        return self.netlist.simulate_nets(self.library, words, self.vectors)

    def _toggle_rates(self, values: dict[str, int]) -> dict[str, float]:
        pair_mask = (1 << (self.vectors - 1)) - 1
        rates = {}
        for net, word in values.items():
            toggles = bin((word ^ (word >> 1)) & pair_mask).count("1")
            rates[net] = toggles / (self.vectors - 1)
        return rates

    # ------------------------------------------------------------------
    def analyze(
        self, clock_period: float, timing: TimingReport | None = None
    ) -> PowerReport:
        """Power at the given clock period [s].

        ``timing`` reuses an existing STA report's loads/slews (they
        are a pure function of netlist + library + signoff config, so
        a caller that already ran timing shouldn't pay for it twice).
        """
        if clock_period <= 0.0:
            raise ValueError("clock period must be positive")
        vdd = self.library.vdd
        frequency = 1.0 / clock_period

        obs.count("sta.power_queries")
        obs.count("sta.power_vectors", self.vectors)
        values = self._simulate()
        toggles = self._toggle_rates(values)
        if timing is None:
            sta = StaticTimingAnalyzer(self.netlist, self.library, self.config)
            timing = sta.analyze()
        loads = timing.net_load
        slews = timing.slew

        # Switching: net charging power.
        switching = 0.0
        for net, load in loads.items():
            alpha = toggles.get(net, 0.0)
            switching += 0.5 * alpha * load * vdd * vdd * frequency

        # Internal + leakage per gate.
        internal = 0.0
        leakage = 0.0
        full_mask = (1 << self.vectors) - 1
        for gate in self.netlist.gates:
            cell = self.library[gate.cell]
            out_net = gate.output_net
            alpha_out = toggles.get(out_net, 0.0)
            load = loads.get(out_net, 0.0)
            if cell.arcs:
                # Energy per event: mean over arcs at analyzed conditions.
                energies = []
                for arc in cell.arcs:
                    in_slew = slews.get(gate.pins.get(arc.related_pin, ""), 1e-11)
                    energies.append(arc.average_energy(in_slew, load))
                internal += alpha_out * (sum(energies) / len(energies)) * frequency

            if cell.leakage_by_state:
                # State probabilities from the simulated pin words.
                weighted = 0.0
                total_weight = 0.0
                for state, power in cell.leakage_by_state.items():
                    word = full_mask
                    for assignment in state.split():
                        pin, value = assignment.split("=")
                        net = gate.pins.get(pin)
                        if net is None:
                            continue
                        pin_word = values.get(net, 0)
                        word &= pin_word if value == "1" else ~pin_word & full_mask
                    probability = bin(word).count("1") / self.vectors
                    weighted += probability * power
                    total_weight += probability
                leakage += weighted if total_weight > 0 else cell.leakage_average
            else:
                leakage += cell.leakage_average

        return PowerReport(
            leakage=leakage,
            internal=internal,
            switching=switching,
            clock_period=clock_period,
            temperature=self.library.temperature,
        )


def analyze_power(
    netlist: MappedNetlist,
    library: Library,
    clock_period: float,
    config: SignoffConfig | None = None,
    vectors: int = 512,
    seed: int = 0,
) -> PowerReport:
    """Convenience one-shot power analysis."""
    return PowerAnalyzer(netlist, library, config, vectors, seed).analyze(clock_period)
