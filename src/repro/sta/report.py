"""Signoff report rendering (PrimeTime-style text reports).

Produces the human-readable timing and power reports a signoff flow
archives next to the netlist: critical-path breakdown, per-cell-class
power contributions, and the leakage/internal/switching decomposition.
"""

from __future__ import annotations

from ..charlib.nldm import Library
from ..mapping.netlist import MappedNetlist
from .power import PowerAnalyzer, PowerReport
from .timing import SignoffConfig, StaticTimingAnalyzer, TimingReport


def render_timing_report(
    netlist: MappedNetlist,
    library: Library,
    timing: TimingReport,
) -> str:
    """Critical-path report: one line per gate on the worst path."""
    gate_by_name = {gate.name: gate for gate in netlist.gates}
    lines = [
        f"Timing report -- design {netlist.name}",
        f"library {library.name} (T = {library.temperature:g} K, "
        f"Vdd = {library.vdd:g} V)",
        f"critical delay: {timing.max_delay * 1e12:.2f} ps",
        "",
        f"{'#':>3} {'instance':<12} {'cell':<12} {'arrival [ps]':>13}"
        f" {'slew [ps]':>10} {'load [fF]':>10}",
    ]
    for i, name in enumerate(timing.critical_path):
        gate = gate_by_name[name]
        net = gate.output_net
        lines.append(
            f"{i:>3} {name:<12} {gate.cell:<12}"
            f" {timing.arrival.get(net, 0.0) * 1e12:13.2f}"
            f" {timing.slew.get(net, 0.0) * 1e12:10.2f}"
            f" {timing.net_load.get(net, 0.0) * 1e15:10.3f}"
        )
    if not timing.critical_path:
        lines.append("  (combinational feed-through; no gates on path)")
    return "\n".join(lines) + "\n"


def render_power_report(
    netlist: MappedNetlist,
    library: Library,
    power: PowerReport,
) -> str:
    """Power report with the Fig. 2(c)-style decomposition and the
    per-cell-class area/count table."""
    lines = [
        f"Power report -- design {netlist.name}",
        f"library {library.name} (T = {library.temperature:g} K)",
        f"clock period: {power.clock_period * 1e12:.2f} ps"
        f" ({1e-9 / power.clock_period:.3f} GHz)",
        "",
        f"  leakage   : {power.leakage * 1e6:12.4f} uW ({power.leakage_share:8.4%})",
        f"  internal  : {power.internal * 1e6:12.4f} uW ({power.internal_share:8.4%})",
        f"  switching : {power.switching * 1e6:12.4f} uW ({power.switching_share:8.4%})",
        f"  total     : {power.total * 1e6:12.4f} uW",
        "",
        f"{'cell':<12} {'count':>6} {'area [um2]':>11}",
    ]
    counts = netlist.cell_counts()
    for cell_name in sorted(counts, key=lambda c: -counts[c] * library[c].area):
        count = counts[cell_name]
        lines.append(
            f"{cell_name:<12} {count:>6} {count * library[cell_name].area:11.4f}"
        )
    lines.append(f"{'TOTAL':<12} {netlist.num_gates:>6} "
                 f"{netlist.total_area(library):11.4f}")
    return "\n".join(lines) + "\n"


def full_signoff(
    netlist: MappedNetlist,
    library: Library,
    clock_period: float | None = None,
    config: SignoffConfig | None = None,
    vectors: int = 256,
) -> str:
    """One-call signoff: STA + power + rendered reports.

    With ``clock_period=None`` the clock is set 10 % beyond the
    critical delay.
    """
    config = config or SignoffConfig()
    timing = StaticTimingAnalyzer(netlist, library, config).analyze()
    if clock_period is None:
        clock_period = max(timing.max_delay * 1.1, 1e-12)
    power = PowerAnalyzer(netlist, library, config, vectors=vectors).analyze(
        clock_period, timing=timing
    )
    return (
        render_timing_report(netlist, library, timing)
        + "\n"
        + render_power_report(netlist, library, power)
    )
