"""Signoff timing and power analysis (the PrimeTime substrate)."""

from .timing import SignoffConfig, StaticTimingAnalyzer, TimingReport, critical_delay
from .power import PowerAnalyzer, PowerReport, analyze_power
from .report import full_signoff, render_power_report, render_timing_report

__all__ = [
    "SignoffConfig",
    "StaticTimingAnalyzer",
    "TimingReport",
    "critical_delay",
    "PowerAnalyzer",
    "PowerReport",
    "analyze_power",
    "full_signoff",
    "render_power_report",
    "render_timing_report",
]
