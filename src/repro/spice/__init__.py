"""SPICE-class circuit simulator (DC + transient nodal analysis).

Stands in for the commercial SPICE the paper uses for standard-cell
characterization: modified nodal analysis, Newton-Raphson with the
cryogenic FinFET compact model, trapezoidal transient integration, and
the SiliconSmart-style waveform measurements.
"""

from .netlist import Circuit, GROUND
from .engine import ConvergenceError, OperatingPoint, Simulator, TransientResult
from .kernels import BatchStamper, SimulatorSettings, VALID_KERNELS, default_kernel
from .batch import BatchedSimulator, TrajectorySpec
from .waveforms import DC, PWL, Waveform, pulse, ramp
from .analysis import (
    crossing_time,
    propagation_delay,
    supply_energy,
    transition_time,
    waveform_digest,
)

__all__ = [
    "BatchStamper",
    "BatchedSimulator",
    "Circuit",
    "GROUND",
    "TrajectorySpec",
    "ConvergenceError",
    "OperatingPoint",
    "Simulator",
    "SimulatorSettings",
    "TransientResult",
    "VALID_KERNELS",
    "default_kernel",
    "DC",
    "PWL",
    "Waveform",
    "pulse",
    "ramp",
    "crossing_time",
    "propagation_delay",
    "supply_energy",
    "transition_time",
    "waveform_digest",
]
