"""Vectorized MNA stamping kernels for the SPICE engine.

The scalar reference path in :mod:`repro.spice.engine` stamps the
Jacobian and residual one element at a time and calls the compact
model five times per FinFET per Newton iteration (``ids`` plus the
central-difference stencils of ``gm``/``gds``).  That python-loop +
0-d-numpy pattern dominates every characterization sweep, so this
module provides the batched alternative:

* all linear stamps (resistors, ideal-source rows, the capacitor
  companion pattern) are assembled **once** per simulator into
  constant coefficient matrices — per iteration they contribute a
  matrix copy and one mat-vec;
* FinFET terminal voltages are gathered with precomputed index arrays,
  evaluated through :meth:`CryoFinFET.ids_gm_gds` in one batched model
  call per distinct parameter set, and scattered back into the
  Jacobian with ``np.add.at`` on precomputed flat indices.

On top of the per-instance vector kernel, :class:`BatchStamper` stacks
N topology-identical instances (the 7x7 NLDM grid of an arc) into one
``(N, size, size)`` assembly so a whole characterization table costs
one ``ids_core`` call per Newton iteration — see ``spice/batch.py``
for the masked lockstep solver built on it.  Every batched operation
is chosen for *bitwise* agreement with the per-instance vector path
(stacked ``np.linalg.solve`` / ``np.matmul`` and row-major
``np.add.at`` are element-for-element the same computations), which is
what lets the batch kernel be the default without perturbing golden
files.

Kernel selection is carried by :class:`SimulatorSettings` (default
from :envvar:`REPRO_KERNEL`, ``batch`` unless overridden) so every
result stays differentially checkable against the scalar reference —
see ``tests/test_spice_kernels.py``, ``tests/test_spice_batch.py`` and
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..device.bsimcmg import ids_core
from .netlist import Circuit

#: Kernel implementations selectable through ``REPRO_KERNEL``.
VALID_KERNELS: tuple[str, ...] = ("scalar", "vector", "batch")

#: Central-difference stencil step [V] — must match the default ``dv``
#: of :meth:`CryoFinFET.gm`/:meth:`gds` so the vector path computes the
#: same derivatives as the scalar reference.
STENCIL_DV: float = 1e-4


def default_kernel() -> str:
    """The kernel the environment asks for (``batch`` by default)."""
    kernel = os.environ.get("REPRO_KERNEL", "batch").strip().lower()
    if kernel not in VALID_KERNELS:
        raise ValueError(
            f"REPRO_KERNEL must be one of {VALID_KERNELS}, got {kernel!r}"
        )
    return kernel


@dataclass(frozen=True)
class SimulatorSettings:
    """Engine configuration independent of the circuit.

    ``kernel`` selects the stamping implementation: ``"batch"``
    (trajectory batching across whole NLDM grids, falling back to
    vector stamping for lone simulators), ``"vector"`` (the
    per-instance batched kernels in this module) or ``"scalar"`` (the
    per-element reference path).  The default is read from
    :envvar:`REPRO_KERNEL` at construction time so a CLI flag or test
    can flip the whole process without threading an argument through
    every layer.
    """

    kernel: str = field(default_factory=default_kernel)

    def __post_init__(self) -> None:
        if self.kernel not in VALID_KERNELS:
            raise ValueError(
                f"kernel must be one of {VALID_KERNELS}, got {self.kernel!r}"
            )


class VectorStamper:
    """Precomputed batched assembly of the MNA Jacobian and residual.

    Built once per :class:`~repro.spice.engine.Simulator` (topology and
    temperature are fixed per instance); :meth:`stamp` then produces
    the same ``(jac, res)`` pair as the scalar reference loops, up to
    floating-point summation order.
    """

    def __init__(
        self,
        circuit: Circuit,
        system,
        temperature_k: float,
        caps: list[tuple[int, int, float]],
    ):
        self.circuit = circuit
        self.temperature_k = temperature_k
        nn = system.n_nodes
        size = system.size
        self.n_nodes = nn
        self.size = size

        # --- constant linear part: resistors + ideal-source rows -----
        jac_lin = np.zeros((size, size))
        for r in circuit.resistors:
            a, b = system.idx(r.node_a), system.idx(r.node_b)
            g = 1.0 / r.resistance
            if a >= 0:
                jac_lin[a, a] += g
                if b >= 0:
                    jac_lin[a, b] -= g
            if b >= 0:
                jac_lin[b, b] += g
                if a >= 0:
                    jac_lin[b, a] -= g
        for k, src in enumerate(circuit.vsources):
            p, m = system.idx(src.node_plus), system.idx(src.node_minus)
            row = nn + k
            if p >= 0:
                jac_lin[p, row] += 1.0
                jac_lin[row, p] += 1.0
            if m >= 0:
                jac_lin[m, row] -= 1.0
                jac_lin[row, m] -= 1.0
        self._jac_lin = jac_lin
        self._diag = np.arange(nn)

        # --- capacitor companion pattern (scaled by geq per step) ----
        # ``caps`` is the simulator's resolved (node_a, node_b, C) list
        # (explicit capacitors plus lumped device capacitances).
        pat = np.zeros((size, size))
        incidence = np.zeros((size, len(caps)))
        for j, (a, b, c) in enumerate(caps):
            if a >= 0:
                pat[a, a] += c
                incidence[a, j] += 1.0
                if b >= 0:
                    pat[a, b] -= c
            if b >= 0:
                pat[b, b] += c
                incidence[b, j] -= 1.0
                if a >= 0:
                    pat[b, a] -= c
        self._cap_pat = pat
        self._cap_incidence = incidence

        self._build_fet_index(system)

    # ------------------------------------------------------------------
    def _build_fet_index(self, system) -> None:
        """Index arrays and parameter groups for the FinFET batch."""
        size = self.size
        ground = size
        fets = self.circuit.finfets
        n = len(fets)
        d_idx = np.empty(n, dtype=np.intp)
        g_idx = np.empty(n, dtype=np.intp)
        s_idx = np.empty(n, dtype=np.intp)
        for i, m in enumerate(fets):
            for arr, node in ((d_idx, m.drain), (g_idx, m.gate), (s_idx, m.source)):
                j = system.idx(node)
                arr[i] = ground if j < 0 else j
        self._d_idx, self._g_idx, self._s_idx = d_idx, g_idx, s_idx

        # Temperature-resolved model parameters, stacked per device and
        # tiled over the 5-point derivative stencil.  Computed once: the
        # Newton hot path never touches the thermal model again.
        if n:
            per_device = [m.device.kernel_params(self.temperature_k) for m in fets]
            self._kernel_params_5 = {
                key: np.tile(np.array([kp[key] for kp in per_device]), 5)
                for key in per_device[0]
            }
        else:
            self._kernel_params_5 = {}

        # Scatter plan.  Residual rows (node equations only):
        d_node = d_idx < self.n_nodes
        s_node = s_idx < self.n_nodes
        self._res_d = d_idx[d_node]
        self._res_d_sel = np.nonzero(d_node)[0]
        self._res_s = s_idx[s_node]
        self._res_s_sel = np.nonzero(s_node)[0]

        # Jacobian entries, in the scalar loop's (row, col) kinds:
        #   (d,g)+gm  (d,d)+gds  (d,s)-(gm+gds)
        #   (s,g)-gm  (s,d)-gds  (s,s)+(gm+gds)
        flat_parts: list[np.ndarray] = []
        self._jac_kinds: list[tuple[int, np.ndarray]] = []
        kinds = (
            (d_idx, g_idx), (d_idx, d_idx), (d_idx, s_idx),
            (s_idx, g_idx), (s_idx, d_idx), (s_idx, s_idx),
        )
        for kind, (rows, cols) in enumerate(kinds):
            valid = (rows != ground) & (cols != ground)
            sel = np.nonzero(valid)[0]
            flat_parts.append(rows[sel] * size + cols[sel])
            self._jac_kinds.append((kind, sel))
        self._fet_flat = np.concatenate(flat_parts)

    # ------------------------------------------------------------------
    def stamp(
        self,
        x: np.ndarray,
        t: float,
        gmin: float,
        geq: float = 0.0,
        cap_history: np.ndarray | None = None,
        src_values: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble ``(jac, res)`` at state ``x`` and time ``t``.

        ``src_values`` optionally provides pre-sampled source voltages
        for this time point (the transient loop batches the waveform
        sampling over the whole time axis up front); when absent the
        waveforms are evaluated at ``t``.
        """
        nn = self.n_nodes
        size = self.size

        jac = self._jac_lin.copy()
        jac[self._diag, self._diag] += gmin
        if geq > 0.0:
            jac += geq * self._cap_pat

        # Linear residual: jac @ x minus the source excitation.
        res = jac @ x
        if src_values is None:
            for k, src in enumerate(self.circuit.vsources):
                res[nn + k] -= src.waveform(t)
        else:
            res[nn:] -= src_values
        if geq > 0.0 and cap_history is not None and len(cap_history):
            res += self._cap_incidence @ cap_history

        # FinFET batch: gather terminal voltages, evaluate the whole
        # circuit's 5-point stencil in ONE model call, scatter back.
        if self.circuit.finfets:
            x_aug = np.append(x, 0.0)
            vgs = x_aug[self._g_idx] - x_aug[self._s_idx]
            vds = x_aug[self._d_idx] - x_aug[self._s_idx]
            n = len(self.circuit.finfets)
            dv = STENCIL_DV
            vg_st = np.concatenate([vgs, vgs + dv, vgs - dv, vgs, vgs])
            vd_st = np.concatenate([vds, vds, vds, vds + dv, vds - dv])
            i = ids_core(vg_st, vd_st, **self._kernel_params_5)
            ids = i[:n]
            gm = (i[n : 2 * n] - i[2 * n : 3 * n]) / (2.0 * dv)
            gds = (i[3 * n : 4 * n] - i[4 * n : 5 * n]) / (2.0 * dv)
            np.add.at(res, self._res_d, ids[self._res_d_sel])
            np.subtract.at(res, self._res_s, ids[self._res_s_sel])
            gsum = gm + gds
            values_by_kind = (gm, gds, -gsum, -gm, -gds, gsum)
            vals = np.concatenate(
                [values_by_kind[kind][sel] for kind, sel in self._jac_kinds]
            )
            np.add.at(jac.reshape(-1), self._fet_flat, vals)
        return jac, res


class BatchStamper:
    """Stacked assembly for N topology-identical simulator instances.

    Wraps the per-instance :class:`VectorStamper` objects of a
    trajectory batch (one per NLDM grid point) into ``(N, size, size)``
    constant arrays so a masked Newton iteration can assemble every
    active instance's ``(jac, res)`` with a handful of numpy calls and
    exactly **one** ``ids_core`` evaluation.

    Bitwise contract: for each instance row, every operation here is
    element-for-element the same float64 computation the instance's
    own ``VectorStamper.stamp`` would perform (stacked copies, scalar
    broadcasts, ``np.matmul`` over the last two axes, and row-major
    ``np.add.at`` scatters), so batched assembly is bit-identical to
    the serial vector path — the property the differential suite in
    ``tests/test_spice_batch.py`` pins down.

    All instances must share the MNA topology (same node ordering,
    sources, FinFET index arrays and capacitor list length); only the
    *values* (capacitances, stimulus, model parameters) may differ per
    instance.
    """

    def __init__(self, stampers: list[VectorStamper]):
        if not stampers:
            raise ValueError("BatchStamper needs at least one instance")
        first = stampers[0]
        for s in stampers[1:]:
            if (
                s.size != first.size
                or s.n_nodes != first.n_nodes
                or s._cap_incidence.shape != first._cap_incidence.shape
                or not np.array_equal(s._d_idx, first._d_idx)
                or not np.array_equal(s._g_idx, first._g_idx)
                or not np.array_equal(s._s_idx, first._s_idx)
                or not np.array_equal(s._fet_flat, first._fet_flat)
            ):
                raise ValueError(
                    "trajectory batch requires identical circuit topology "
                    "across all instances (node ordering, sources, FinFETs "
                    "and capacitor count must match)"
                )
        self.n_instances = len(stampers)
        self.n_nodes = first.n_nodes
        self.size = first.size
        self.n_fets = len(first.circuit.finfets)
        self._diag = first._diag
        self._jac_lin = np.stack([s._jac_lin for s in stampers])
        self._cap_pat = np.stack([s._cap_pat for s in stampers])
        self._cap_incidence = np.stack([s._cap_incidence for s in stampers])
        self._d_idx, self._g_idx, self._s_idx = first._d_idx, first._g_idx, first._s_idx
        self._res_d, self._res_d_sel = first._res_d, first._res_d_sel
        self._res_s, self._res_s_sel = first._res_s, first._res_s_sel
        self._jac_kinds = first._jac_kinds
        self._fet_flat = first._fet_flat
        if self.n_fets:
            keys = first._kernel_params_5
            self._kernel_params_5 = {
                key: np.stack([s._kernel_params_5[key] for s in stampers])
                for key in keys
            }
        else:
            self._kernel_params_5 = {}

    # ------------------------------------------------------------------
    def stamp(
        self,
        sel: np.ndarray,
        x: np.ndarray,
        gmin: np.ndarray,
        geq: np.ndarray | None,
        cap_history: np.ndarray | None,
        src_values: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble ``(jac, res)`` for the active instance rows.

        ``sel`` indexes the active instances into the stacked constant
        arrays; ``x`` is their ``(B, size)`` state, ``gmin`` their
        per-instance conductance floors (retry rungs differ per
        instance), ``geq``/``cap_history`` the companion-model terms
        (``None`` for the DC solve, matching the serial path's skipped
        stamps), and ``src_values`` the ``(B, n_sources)`` pre-sampled
        stimulus.
        """
        nn = self.n_nodes
        b = len(sel)

        jac = self._jac_lin[sel].copy()
        jac[:, self._diag, self._diag] += gmin[:, None]
        if geq is not None:
            jac += geq[:, None, None] * self._cap_pat[sel]

        res = np.matmul(jac, x[:, :, None])[:, :, 0]
        res[:, nn:] -= src_values
        if geq is not None and cap_history is not None and cap_history.shape[1]:
            res += np.matmul(self._cap_incidence[sel], cap_history[:, :, None])[:, :, 0]

        if self.n_fets:
            x_aug = np.concatenate([x, np.zeros((b, 1))], axis=1)
            vgs = x_aug[:, self._g_idx] - x_aug[:, self._s_idx]
            vds = x_aug[:, self._d_idx] - x_aug[:, self._s_idx]
            n = self.n_fets
            dv = STENCIL_DV
            vg_st = np.concatenate([vgs, vgs + dv, vgs - dv, vgs, vgs], axis=1)
            vd_st = np.concatenate([vds, vds, vds, vds + dv, vds - dv], axis=1)
            params = {k: v[sel] for k, v in self._kernel_params_5.items()}
            i = ids_core(vg_st, vd_st, **params)
            ids = i[:, :n]
            gm = (i[:, n : 2 * n] - i[:, 2 * n : 3 * n]) / (2.0 * dv)
            gds = (i[:, 3 * n : 4 * n] - i[:, 4 * n : 5 * n]) / (2.0 * dv)
            rows = np.arange(b)[:, None]
            if len(self._res_d):
                np.add.at(res, (rows, self._res_d[None, :]), ids[:, self._res_d_sel])
            if len(self._res_s):
                np.subtract.at(res, (rows, self._res_s[None, :]), ids[:, self._res_s_sel])
            gsum = gm + gds
            values_by_kind = (gm, gds, -gsum, -gm, -gds, gsum)
            vals = np.concatenate(
                [values_by_kind[kind][:, s] for kind, s in self._jac_kinds], axis=1
            )
            np.add.at(
                jac.reshape(b, -1), (rows, self._fet_flat[None, :]), vals
            )
        return jac, res
