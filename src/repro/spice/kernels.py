"""Vectorized MNA stamping kernels for the SPICE engine.

The scalar reference path in :mod:`repro.spice.engine` stamps the
Jacobian and residual one element at a time and calls the compact
model five times per FinFET per Newton iteration (``ids`` plus the
central-difference stencils of ``gm``/``gds``).  That python-loop +
0-d-numpy pattern dominates every characterization sweep, so this
module provides the batched alternative:

* all linear stamps (resistors, ideal-source rows, the capacitor
  companion pattern) are assembled **once** per simulator into
  constant coefficient matrices — per iteration they contribute a
  matrix copy and one mat-vec;
* FinFET terminal voltages are gathered with precomputed index arrays,
  evaluated through :meth:`CryoFinFET.ids_gm_gds` in one batched model
  call per distinct parameter set, and scattered back into the
  Jacobian with ``np.add.at`` on precomputed flat indices.

Kernel selection is carried by :class:`SimulatorSettings` (default
from :envvar:`REPRO_KERNEL`, ``vector`` unless overridden) so every
result stays differentially checkable against the scalar reference —
see ``tests/test_spice_kernels.py`` and ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..device.bsimcmg import ids_core
from .netlist import Circuit

#: Kernel implementations selectable through ``REPRO_KERNEL``.
VALID_KERNELS: tuple[str, ...] = ("scalar", "vector")

#: Central-difference stencil step [V] — must match the default ``dv``
#: of :meth:`CryoFinFET.gm`/:meth:`gds` so the vector path computes the
#: same derivatives as the scalar reference.
STENCIL_DV: float = 1e-4


def default_kernel() -> str:
    """The kernel the environment asks for (``vector`` by default)."""
    kernel = os.environ.get("REPRO_KERNEL", "vector").strip().lower()
    if kernel not in VALID_KERNELS:
        raise ValueError(
            f"REPRO_KERNEL must be one of {VALID_KERNELS}, got {kernel!r}"
        )
    return kernel


@dataclass(frozen=True)
class SimulatorSettings:
    """Engine configuration independent of the circuit.

    ``kernel`` selects the stamping implementation: ``"vector"`` (the
    batched kernels in this module) or ``"scalar"`` (the per-element
    reference path).  The default is read from :envvar:`REPRO_KERNEL`
    at construction time so a CLI flag or test can flip the whole
    process without threading an argument through every layer.
    """

    kernel: str = field(default_factory=default_kernel)

    def __post_init__(self) -> None:
        if self.kernel not in VALID_KERNELS:
            raise ValueError(
                f"kernel must be one of {VALID_KERNELS}, got {self.kernel!r}"
            )


class VectorStamper:
    """Precomputed batched assembly of the MNA Jacobian and residual.

    Built once per :class:`~repro.spice.engine.Simulator` (topology and
    temperature are fixed per instance); :meth:`stamp` then produces
    the same ``(jac, res)`` pair as the scalar reference loops, up to
    floating-point summation order.
    """

    def __init__(
        self,
        circuit: Circuit,
        system,
        temperature_k: float,
        caps: list[tuple[int, int, float]],
    ):
        self.circuit = circuit
        self.temperature_k = temperature_k
        nn = system.n_nodes
        size = system.size
        self.n_nodes = nn
        self.size = size

        # --- constant linear part: resistors + ideal-source rows -----
        jac_lin = np.zeros((size, size))
        for r in circuit.resistors:
            a, b = system.idx(r.node_a), system.idx(r.node_b)
            g = 1.0 / r.resistance
            if a >= 0:
                jac_lin[a, a] += g
                if b >= 0:
                    jac_lin[a, b] -= g
            if b >= 0:
                jac_lin[b, b] += g
                if a >= 0:
                    jac_lin[b, a] -= g
        for k, src in enumerate(circuit.vsources):
            p, m = system.idx(src.node_plus), system.idx(src.node_minus)
            row = nn + k
            if p >= 0:
                jac_lin[p, row] += 1.0
                jac_lin[row, p] += 1.0
            if m >= 0:
                jac_lin[m, row] -= 1.0
                jac_lin[row, m] -= 1.0
        self._jac_lin = jac_lin
        self._diag = np.arange(nn)

        # --- capacitor companion pattern (scaled by geq per step) ----
        # ``caps`` is the simulator's resolved (node_a, node_b, C) list
        # (explicit capacitors plus lumped device capacitances).
        pat = np.zeros((size, size))
        incidence = np.zeros((size, len(caps)))
        for j, (a, b, c) in enumerate(caps):
            if a >= 0:
                pat[a, a] += c
                incidence[a, j] += 1.0
                if b >= 0:
                    pat[a, b] -= c
            if b >= 0:
                pat[b, b] += c
                incidence[b, j] -= 1.0
                if a >= 0:
                    pat[b, a] -= c
        self._cap_pat = pat
        self._cap_incidence = incidence

        self._build_fet_index(system)

    # ------------------------------------------------------------------
    def _build_fet_index(self, system) -> None:
        """Index arrays and parameter groups for the FinFET batch."""
        size = self.size
        ground = size
        fets = self.circuit.finfets
        n = len(fets)
        d_idx = np.empty(n, dtype=np.intp)
        g_idx = np.empty(n, dtype=np.intp)
        s_idx = np.empty(n, dtype=np.intp)
        for i, m in enumerate(fets):
            for arr, node in ((d_idx, m.drain), (g_idx, m.gate), (s_idx, m.source)):
                j = system.idx(node)
                arr[i] = ground if j < 0 else j
        self._d_idx, self._g_idx, self._s_idx = d_idx, g_idx, s_idx

        # Temperature-resolved model parameters, stacked per device and
        # tiled over the 5-point derivative stencil.  Computed once: the
        # Newton hot path never touches the thermal model again.
        if n:
            per_device = [m.device.kernel_params(self.temperature_k) for m in fets]
            self._kernel_params_5 = {
                key: np.tile(np.array([kp[key] for kp in per_device]), 5)
                for key in per_device[0]
            }
        else:
            self._kernel_params_5 = {}

        # Scatter plan.  Residual rows (node equations only):
        d_node = d_idx < self.n_nodes
        s_node = s_idx < self.n_nodes
        self._res_d = d_idx[d_node]
        self._res_d_sel = np.nonzero(d_node)[0]
        self._res_s = s_idx[s_node]
        self._res_s_sel = np.nonzero(s_node)[0]

        # Jacobian entries, in the scalar loop's (row, col) kinds:
        #   (d,g)+gm  (d,d)+gds  (d,s)-(gm+gds)
        #   (s,g)-gm  (s,d)-gds  (s,s)+(gm+gds)
        flat_parts: list[np.ndarray] = []
        self._jac_kinds: list[tuple[int, np.ndarray]] = []
        kinds = (
            (d_idx, g_idx), (d_idx, d_idx), (d_idx, s_idx),
            (s_idx, g_idx), (s_idx, d_idx), (s_idx, s_idx),
        )
        for kind, (rows, cols) in enumerate(kinds):
            valid = (rows != ground) & (cols != ground)
            sel = np.nonzero(valid)[0]
            flat_parts.append(rows[sel] * size + cols[sel])
            self._jac_kinds.append((kind, sel))
        self._fet_flat = np.concatenate(flat_parts)

    # ------------------------------------------------------------------
    def stamp(
        self,
        x: np.ndarray,
        t: float,
        gmin: float,
        geq: float = 0.0,
        cap_history: np.ndarray | None = None,
        src_values: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble ``(jac, res)`` at state ``x`` and time ``t``.

        ``src_values`` optionally provides pre-sampled source voltages
        for this time point (the transient loop batches the waveform
        sampling over the whole time axis up front); when absent the
        waveforms are evaluated at ``t``.
        """
        nn = self.n_nodes
        size = self.size

        jac = self._jac_lin.copy()
        jac[self._diag, self._diag] += gmin
        if geq > 0.0:
            jac += geq * self._cap_pat

        # Linear residual: jac @ x minus the source excitation.
        res = jac @ x
        if src_values is None:
            for k, src in enumerate(self.circuit.vsources):
                res[nn + k] -= src.waveform(t)
        else:
            res[nn:] -= src_values
        if geq > 0.0 and cap_history is not None and len(cap_history):
            res += self._cap_incidence @ cap_history

        # FinFET batch: gather terminal voltages, evaluate the whole
        # circuit's 5-point stencil in ONE model call, scatter back.
        if self.circuit.finfets:
            x_aug = np.append(x, 0.0)
            vgs = x_aug[self._g_idx] - x_aug[self._s_idx]
            vds = x_aug[self._d_idx] - x_aug[self._s_idx]
            n = len(self.circuit.finfets)
            dv = STENCIL_DV
            vg_st = np.concatenate([vgs, vgs + dv, vgs - dv, vgs, vgs])
            vd_st = np.concatenate([vds, vds, vds, vds + dv, vds - dv])
            i = ids_core(vg_st, vd_st, **self._kernel_params_5)
            ids = i[:n]
            gm = (i[n : 2 * n] - i[2 * n : 3 * n]) / (2.0 * dv)
            gds = (i[3 * n : 4 * n] - i[4 * n : 5 * n]) / (2.0 * dv)
            np.add.at(res, self._res_d, ids[self._res_d_sel])
            np.subtract.at(res, self._res_s, ids[self._res_s_sel])
            gsum = gm + gds
            values_by_kind = (gm, gds, -gsum, -gm, -gds, gsum)
            vals = np.concatenate(
                [values_by_kind[kind][sel] for kind, sel in self._jac_kinds]
            )
            np.add.at(jac.reshape(-1), self._fet_flat, vals)
        return jac, res
