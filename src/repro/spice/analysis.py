"""Waveform measurements on transient results.

Implements the measurements SiliconSmart extracts during cell
characterization: propagation delay (50 %-to-50 %), transition time
(slew between the Liberty thresholds), and switching energy from the
supply-current integral.  Also provides :func:`waveform_digest`, the
canonical rounded-waveform hash the kernel differential suite and the
golden-file regressions compare.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .engine import TransientResult

#: Liberty-style slew measurement thresholds (fraction of swing).
SLEW_LOW: float = 0.2
SLEW_HIGH: float = 0.8

#: Delay measurement threshold (fraction of swing).
DELAY_THRESHOLD: float = 0.5


def waveform_digest(result: TransientResult, decimals: int = 9) -> str:
    """Stable hash of a transient solution, rounded to ``decimals``.

    Node waveforms and source currents are rounded (absolute decimals
    — at the default 9 this is ~1 nV / 1 nA, three decades above the
    scalar-vs-vector kernel disagreement) and hashed in deterministic
    node order, so two runs agree iff every waveform agrees to the
    rounding.  Used by ``tests/test_spice_kernels.py`` to pin the
    vectorized kernel to the scalar reference.
    """
    def quantized(arr: np.ndarray, d: int) -> bytes:
        # ``+ 0.0`` collapses IEEE negative zero: a value straddling
        # zero's rounding cell must hash identically either side.
        return (np.round(arr, d) + 0.0).tobytes()

    h = hashlib.sha256()
    h.update(quantized(result.time, decimals + 3))
    for name in sorted(result.voltages):
        h.update(name.encode())
        h.update(quantized(result.voltages[name], decimals))
    for name in sorted(result.source_currents):
        h.update(name.encode())
        h.update(quantized(result.source_currents[name], decimals))
    return h.hexdigest()


def crossing_time(
    time: np.ndarray,
    wave: np.ndarray,
    level: float,
    rising: bool,
    after: float = 0.0,
) -> float:
    """First time ``wave`` crosses ``level`` in the given direction.

    Linear interpolation between samples; raises ``ValueError`` when no
    crossing exists (the cell did not switch).
    """
    w = np.asarray(wave, dtype=float)
    t = np.asarray(time, dtype=float)
    if rising:
        mask = (w[:-1] < level) & (w[1:] >= level)
    else:
        mask = (w[:-1] > level) & (w[1:] <= level)
    mask &= t[1:] > after
    indices = np.nonzero(mask)[0]
    if len(indices) == 0:
        direction = "rising" if rising else "falling"
        raise ValueError(f"no {direction} crossing of {level} V after t={after}")
    i = int(indices[0])
    frac = (level - w[i]) / (w[i + 1] - w[i])
    return float(t[i] + frac * (t[i + 1] - t[i]))


def propagation_delay(
    result: TransientResult,
    input_node: str,
    output_node: str,
    vdd: float,
    input_rising: bool,
    after: float = 0.0,
) -> float:
    """50 %-input to 50 %-output propagation delay [s]."""
    level = DELAY_THRESHOLD * vdd
    t_in = crossing_time(result.time, result.voltage(input_node), level, input_rising, after)
    out = result.voltage(output_node)
    # Find the first output crossing (either direction) after the input
    # event: the output direction depends on the cell's unateness.
    candidates = []
    for rising in (True, False):
        try:
            candidates.append(
                crossing_time(result.time, out, level, rising, after=t_in)
            )
        except ValueError:
            pass
    if not candidates:
        raise ValueError(f"output {output_node!r} never crossed 50% after the input event")
    return min(candidates) - t_in


def transition_time(
    result: TransientResult,
    node: str,
    vdd: float,
    rising: bool,
    after: float = 0.0,
) -> float:
    """Output transition time [s] between the 20 %/80 % thresholds.

    Reported Liberty-style: the raw threshold-to-threshold time scaled
    to the full swing (divided by ``SLEW_HIGH - SLEW_LOW``), which is
    the convention ASAP7 uses (``slew_derate`` of 1 on scaled swing).
    """
    lo, hi = SLEW_LOW * vdd, SLEW_HIGH * vdd
    wave = result.voltage(node)
    if rising:
        t_lo = crossing_time(result.time, wave, lo, True, after)
        t_hi = crossing_time(result.time, wave, hi, True, after=t_lo)
        raw = t_hi - t_lo
    else:
        t_hi = crossing_time(result.time, wave, hi, False, after)
        t_lo = crossing_time(result.time, wave, lo, False, after=t_hi)
        raw = t_lo - t_hi
    return raw / (SLEW_HIGH - SLEW_LOW)


def supply_energy(
    result: TransientResult,
    supply_source: str,
    vdd: float,
    t_start: float = 0.0,
    t_stop: float | None = None,
) -> float:
    """Energy delivered by the supply over a window [J].

    ``E = -V_dd * integral(i_source dt)`` — the source current follows
    the into-positive-terminal convention, so current *delivered* to
    the circuit is its negative.
    """
    t = result.time
    i = result.source_currents[supply_source]
    if t_stop is None:
        t_stop = float(t[-1])
    mask = (t >= t_start) & (t <= t_stop)
    if np.count_nonzero(mask) < 2:
        raise ValueError("energy window contains fewer than two samples")
    return float(-vdd * np.trapezoid(i[mask], t[mask]))
