"""Stimulus waveforms for the circuit simulator.

Mirrors the waveform primitives a characterization deck uses: DC
levels, piecewise-linear sources (the B1500A/SiliconSmart staple), and
convenience ramps/pulses built on top of PWL.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np


class Waveform:
    """Base class: a scalar voltage as a function of time."""

    def __call__(self, t: float) -> float:
        raise NotImplementedError

    def breakpoints(self) -> tuple[float, ...]:
        """Times where the derivative changes (time-stepper hints)."""
        return ()

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over a time axis.

        The transient engine batches all stimulus sampling through this
        method once per run; subclasses override with a closed-form
        array evaluation where one exists.
        """
        return np.array([self(float(t)) for t in np.asarray(times, dtype=float)])


@dataclass(frozen=True)
class DC(Waveform):
    """Constant voltage."""

    value: float

    def __call__(self, t: float) -> float:
        return self.value

    def sample(self, times: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(times).shape, self.value, dtype=float)


class PWL(Waveform):
    """Piecewise-linear waveform defined by (time, value) points.

    Holds the first value before the first point and the last value
    after the last point, exactly like the SPICE ``PWL`` source.
    """

    def __init__(self, points: Sequence[tuple[float, float]]):
        if len(points) < 1:
            raise ValueError("PWL needs at least one point")
        times = [p[0] for p in points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("PWL times must be strictly increasing")
        self._times = tuple(times)
        self._values = tuple(float(p[1]) for p in points)

    def __call__(self, t: float) -> float:
        times, values = self._times, self._values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        i = bisect_right(times, t)
        t0, t1 = times[i - 1], times[i]
        v0, v1 = values[i - 1], values[i]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def breakpoints(self) -> tuple[float, ...]:
        return self._times

    def sample(self, times: np.ndarray) -> np.ndarray:
        # np.interp holds the end values outside the defined range,
        # matching the scalar SPICE ``PWL`` semantics of __call__.
        return np.interp(np.asarray(times, dtype=float), self._times, self._values)


def ramp(t_start: float, duration: float, v_from: float, v_to: float) -> PWL:
    """A single linear transition from ``v_from`` to ``v_to``.

    ``duration`` is the full 0-100 % transition time.  Characterization
    converts a Liberty slew (measured between the slew thresholds) into
    this full transition time before building the stimulus.
    """
    if duration <= 0.0:
        raise ValueError("ramp duration must be positive")
    return PWL([(t_start, v_from), (t_start + duration, v_to)])


def pulse(
    v_low: float,
    v_high: float,
    t_delay: float,
    t_rise: float,
    t_width: float,
    t_fall: float,
) -> PWL:
    """A single low-high-low pulse (SPICE ``PULSE``-like, one period)."""
    if min(t_rise, t_width, t_fall) <= 0.0:
        raise ValueError("pulse edge/width times must be positive")
    t0 = t_delay
    return PWL(
        [
            (t0, v_low),
            (t0 + t_rise, v_high),
            (t0 + t_rise + t_width, v_high),
            (t0 + t_rise + t_width + t_fall, v_low),
        ]
    )
