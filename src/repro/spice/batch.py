"""Trajectory-batched transient simulation (the ``batch`` kernel).

An NLDM characterization arc is embarrassingly parallel in an awkward
shape: dozens of *independent* transients (one per slew x load grid
point and edge direction) over the *same* circuit topology, each a
long sequence of small dense Newton solves.  Running them serially
leaves the compact model evaluating a handful of devices at a time;
this module stacks the whole grid into one ``(N, size)`` state array
and advances every trajectory in lockstep:

* one :class:`~repro.spice.kernels.BatchStamper` assembly and one
  ``ids_core`` evaluation per Newton iteration covers all still-active
  instances;
* one stacked ``np.linalg.solve`` factorizes every active Jacobian;
* per-instance convergence masks freeze finished rows bit-exactly
  (a converged trajectory's state is never touched again) while
  stragglers keep iterating.

Resilience semantics match the serial engine *per instance*: each
trajectory owns its position on the Newton retry ladder
(:data:`~repro.spice.engine.NEWTON_LADDER`), escalates independently
on non-convergence or a singular matrix, and falls back to recursive
time-step halving (as a batch of one) when the ladder is exhausted —
emitting the same ``spice.*`` and ``resilience.*`` counters the serial
path would.  Fault injection is routed through
:func:`repro.resilience.faults.instance_scope` so each trajectory
consumes the same deterministic per-instance fault stream it would in
a serial loop, regardless of batch composition.

Bitwise contract: with the stacked solve/matmul identities pinned by
``tests/test_spice_batch.py``, every waveform produced here is
bit-identical to running the same circuit through
``Simulator.transient`` under the vector kernel.  That is what allows
``REPRO_KERNEL=batch`` to be the default without perturbing golden
files or cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..resilience import faults
from ..resilience.isolation import task_heartbeat
from .engine import (
    MAX_STEP_REFINEMENTS,
    NEWTON_LADDER,
    ConvergenceError,
    NewtonSettings,
    Simulator,
    TransientResult,
    build_time_grid,
)
from .kernels import BatchStamper, SimulatorSettings
from .netlist import GROUND, Circuit

#: Per-instance solver states in the masked Newton state machine.
_NEW, _RUN, _DONE, _FAIL = range(4)


@dataclass(frozen=True)
class TrajectorySpec:
    """One independent transient of a trajectory batch.

    ``label`` names the instance for fault-injection scoping (see
    :func:`repro.resilience.faults.instance_scope`) — two runs that use
    the same labels see identical per-instance fault decisions however
    the instances are batched or ordered.
    """

    circuit: Circuit
    t_stop: float
    dt: float
    label: str = ""
    initial: dict[str, float] | None = field(default=None, hash=False)


class BatchedSimulator:
    """Lockstep transient simulation of N topology-identical circuits.

    Construction builds one :class:`~repro.spice.engine.Simulator` per
    spec (reusing its system/capacitor resolution and vector stamper)
    and stacks the stampers into a :class:`BatchStamper`; all specs
    must share the MNA topology — same cell netlist, same sources —
    though component *values* (load capacitance, stimulus) may differ.

    ``record_masks`` keeps a per-iteration trace of the solver state
    machine (used by the convergence-mask invariant tests); leave it
    off in production, the trace is O(iterations x batch x size).
    """

    def __init__(
        self,
        specs: list[TrajectorySpec],
        temperature_k: float = 300.0,
        ladder: tuple[NewtonSettings, ...] | None = None,
        settings: SimulatorSettings | None = None,
        record_masks: bool = False,
    ):
        if not specs:
            raise ValueError("BatchedSimulator needs at least one trajectory")
        self.specs = list(specs)
        self.temperature_k = temperature_k
        self.ladder = ladder if ladder is not None else NEWTON_LADDER
        self.settings = (
            settings if settings is not None else SimulatorSettings(kernel="batch")
        )
        self.sims = [
            Simulator(
                spec.circuit,
                temperature_k,
                ladder=self.ladder,
                settings=SimulatorSettings(kernel="batch"),
            )
            for spec in self.specs
        ]
        first = self.sims[0]
        self.system = first.system
        for sim in self.sims[1:]:
            if (
                sim.system.node_index != first.system.node_index
                or [s.name for s in sim.circuit.vsources]
                != [s.name for s in first.circuit.vsources]
                or len(sim._caps) != len(first._caps)
            ):
                raise ValueError(
                    "trajectory batch requires identical circuit topology "
                    "across all instances"
                )
        self.stamper = BatchStamper([sim._stamper for sim in self.sims])
        self._labels = [
            spec.label or f"traj{i}" for i, spec in enumerate(self.specs)
        ]
        # Capacitor companion gather/scatter plan: shared (a, b) index
        # arrays (ground mapped to the augmented zero column) and the
        # per-instance capacitance values.
        size = self.system.size
        caps = first._caps
        self._cap_a = np.array(
            [size if a < 0 else a for (a, _, _) in caps], dtype=np.intp
        )
        self._cap_b = np.array(
            [size if b < 0 else b for (_, b, _) in caps], dtype=np.intp
        )
        self._cap_c = np.array([[c for (_, _, c) in sim._caps] for sim in self.sims])
        # Ladder rung parameters as arrays indexed by per-instance rung.
        self._gmin_by_rung = np.array([r.gmin for r in self.ladder])
        self._max_step_by_rung = np.array([r.max_step for r in self.ladder])
        self._vtol_by_rung = np.array([r.vtol for r in self.ladder])
        self._max_iter_by_rung = np.array(
            [r.max_iter for r in self.ladder], dtype=np.intp
        )
        self.record_masks = record_masks
        #: With ``record_masks``: one entry per Newton iteration of each
        #: batched solve — dicts of the solve sequence number, the
        #: global instance indices, their machine states and a snapshot
        #: of the state matrix.
        self.mask_trace: list[dict] = []
        self._solve_seq = 0

    # ------------------------------------------------------------------
    def _cap_dv(self, x: np.ndarray) -> np.ndarray:
        """Per-instance capacitor terminal voltage differences."""
        x_aug = np.concatenate([x, np.zeros((len(x), 1))], axis=1)
        return x_aug[:, self._cap_a] - x_aug[:, self._cap_b]

    # ------------------------------------------------------------------
    @obs.traced("spice.batch.transient")
    def transient_all(self) -> list[TransientResult]:
        """Run every trajectory to completion; one result per spec.

        Raises :class:`ConvergenceError` if any instance fails its DC
        solve or exhausts ladder + time-step refinement mid-transient —
        the same abort the serial loop would produce for that instance
        (the caller's degraded-arc handling treats both identically).
        """
        n = len(self.specs)
        sys = self.system
        nn, ns = sys.n_nodes, sys.n_sources
        obs.count("spice.batch.runs")
        obs.count("spice.batch.instances", n)
        obs.observe("spice.batch.width", n)

        times_list: list[np.ndarray] = []
        stim_list: list[np.ndarray] = []
        for spec in self.specs:
            if spec.t_stop <= 0.0 or spec.dt <= 0.0:
                raise ValueError("t_stop and dt must be positive")
            times, uniform_steps = build_time_grid(spec.circuit, spec.t_stop, spec.dt)
            obs.count("spice.transient.runs")
            obs.count("spice.transient.steps", len(times) - 1)
            obs.count(
                "spice.transient.breakpoint_refinements",
                max(len(times) - uniform_steps, 0),
            )
            times_list.append(times)
            stim_list.append(
                np.array([src.waveform.sample(times) for src in spec.circuit.vsources])
                if ns
                else np.zeros((0, len(times)))
            )

        # Batched DC operating point at t = 0 (capacitors open).
        x = np.zeros((n, sys.size))
        for i, spec in enumerate(self.specs):
            if spec.initial:
                for node, value in spec.initial.items():
                    if node != GROUND and node in sys.node_index:
                        x[i, sys.node_index[node]] = value
        src0 = (
            np.array(
                [
                    [src.waveform(0.0) for src in spec.circuit.vsources]
                    for spec in self.specs
                ]
            )
            if ns
            else np.zeros((n, 0))
        )
        all_rows = np.arange(n, dtype=np.intp)
        x, failed = self._solve_batch(
            all_rows, x, np.zeros(n), geq=None, cap_history=None, src_values=src0
        )
        if failed.any():
            bad = [self._labels[int(i)] for i in np.nonzero(failed)[0]]
            raise ConvergenceError(
                f"batched DC solve failed for instance(s) {bad[:3]}",
                site="spice.newton",
            )

        n_steps = np.array([len(t) for t in times_list], dtype=np.intp)
        volts = [np.zeros((nn, int(k))) for k in n_steps]
        src_currents = [np.zeros((ns, int(k))) for k in n_steps]
        for i in range(n):
            volts[i][:, 0] = x[i, :nn]
            src_currents[i][:, 0] = x[i, nn:]

        i_cap = np.zeros((n, len(self._cap_c[0]) if n else 0))
        lockstep_rounds = 0
        instance_steps = 0
        for k in range(1, int(n_steps.max())):
            active = np.nonzero(k < n_steps)[0].astype(np.intp)
            task_heartbeat()
            lockstep_rounds += 1
            instance_steps += int(active.size)
            t0s = np.array([times_list[int(i)][k - 1] for i in active])
            t1s = np.array([times_list[int(i)][k] for i in active])
            src_vals = (
                np.array([stim_list[int(i)][:, k] for i in active])
                if ns
                else np.zeros((active.size, 0))
            )
            x_act, icap_act = self._advance_batch(
                active, x[active], i_cap[active], t0s, t1s,
                use_trap=k > 1, depth=0, src_values=src_vals,
            )
            x[active] = x_act
            i_cap[active] = icap_act
            for row, i in enumerate(active):
                volts[int(i)][:, k] = x[int(i), :nn]
                src_currents[int(i)][:, k] = x[int(i), nn:]
        obs.count("spice.batch.lockstep_steps", lockstep_rounds)
        obs.count("spice.batch.instance_steps", instance_steps)

        return [
            TransientResult(
                time=times_list[i],
                voltages={name: volts[i][j] for name, j in sys.node_index.items()},
                source_currents={
                    src.name: src_currents[i][k]
                    for k, src in enumerate(self.specs[i].circuit.vsources)
                },
            )
            for i in range(n)
        ]

    # ------------------------------------------------------------------
    def _advance_batch(
        self,
        idxs: np.ndarray,
        x: np.ndarray,
        i_cap_prev: np.ndarray,
        t0s: np.ndarray,
        t1s: np.ndarray,
        use_trap: bool,
        depth: int,
        src_values: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance the active instance rows from ``t0s`` to ``t1s``.

        The batched counterpart of ``Simulator._advance_step``: on
        ladder exhaustion the failing instances (and only those) are
        re-integrated over two half steps as batches of one, up to
        :data:`MAX_STEP_REFINEMENTS` deep.
        """
        h = t1s - t0s
        cvals = self._cap_c[idxs]
        dv = self._cap_dv(x)
        if use_trap:
            geq = 2.0 / h
            history = (-geq)[:, None] * cvals * dv - i_cap_prev
        else:
            geq = 1.0 / h
            history = (-geq)[:, None] * cvals * dv
        x_new, failed = self._solve_batch(
            idxs, x, t1s, geq=geq, cap_history=history, src_values=src_values
        )
        refined_icap: dict[int, np.ndarray] = {}
        if failed.any():
            first_bad = int(np.nonzero(failed)[0][0])
            if depth >= MAX_STEP_REFINEMENTS:
                raise ConvergenceError(
                    f"Newton failed to converge at t={float(t1s[first_bad])} "
                    f"for instance {self._labels[int(idxs[first_bad])]!r}",
                    site="spice.newton",
                )
            for r in np.nonzero(failed)[0]:
                r = int(r)
                obs.count("resilience.retry.spice.timestep")
                t_mid = 0.5 * (float(t0s[r]) + float(t1s[r]))
                # Refinement midpoints are off the sampled grid, so the
                # halves fall back to per-call waveform evaluation —
                # exactly as the serial refinement path does.
                x_half, icap_half = self._advance_batch(
                    idxs[r : r + 1], x[r : r + 1], i_cap_prev[r : r + 1],
                    t0s[r : r + 1], np.array([t_mid]),
                    use_trap, depth + 1, None,
                )
                x_half, icap_half = self._advance_batch(
                    idxs[r : r + 1], x_half, icap_half,
                    np.array([t_mid]), t1s[r : r + 1],
                    True, depth + 1, None,
                )
                x_new[r] = x_half[0]
                refined_icap[r] = icap_half[0]
        g = geq[:, None] * cvals
        i_cap_new = g * self._cap_dv(x_new) + history
        for r, icap in refined_icap.items():
            # Refined rows carry the capacitor currents of their last
            # accepted half step, not the failed full-step companion.
            i_cap_new[r] = icap
        return x_new, i_cap_new

    # ------------------------------------------------------------------
    def _solve_batch(
        self,
        idxs: np.ndarray,
        x0: np.ndarray,
        ts: np.ndarray,
        geq: np.ndarray | None,
        cap_history: np.ndarray | None,
        src_values: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Masked Newton + per-instance retry ladder over ``idxs``.

        Returns ``(x, failed)``: the per-row solutions (rows of failed
        instances are meaningless) and a boolean mask of instances that
        exhausted every ladder rung.  Converged rows are frozen the
        iteration they converge — their state is never written again.
        """
        b = len(idxs)
        nn = self.system.n_nodes
        n_rungs = len(self.ladder)
        plan = faults.active_plan()
        self._solve_seq += 1
        solve_seq = self._solve_seq
        x = x0.copy()
        rung = np.zeros(b, dtype=np.intp)
        iters = np.zeros(b, dtype=np.intp)
        state = np.full(b, _NEW, dtype=np.intp)

        def escalate(r: int) -> None:
            """Advance instance row ``r`` to its next ladder rung."""
            rung[r] += 1
            if rung[r] >= n_rungs:
                obs.count("resilience.exhausted.spice.newton")
                state[r] = _FAIL
            else:
                obs.count("resilience.retry")
                obs.count("resilience.retry.spice.newton")
                obs.count(f"resilience.retry.spice.newton.rung{int(rung[r])}")
                x[r] = x0[r]
                iters[r] = 0
                state[r] = _NEW

        while True:
            # Admit new attempts: per-instance fault gate, then the
            # per-attempt kernel counter (the serial path counts one
            # ``spice.kernel.*`` per Newton call that passes the gate).
            while True:
                new_rows = np.nonzero(state == _NEW)[0]
                if not new_rows.size:
                    break
                admitted = 0
                for r in new_rows:
                    r = int(r)
                    if plan is not None and plan.should_fire(
                        "spice.newton",
                        attempt=int(rung[r]),
                        instance=self._labels[int(idxs[r])],
                    ):
                        obs.count("spice.newton.nonconverged")
                        escalate(r)
                    else:
                        state[r] = _RUN
                        admitted += 1
                if admitted:
                    obs.count("spice.kernel.batch", admitted)
            run_rows = np.nonzero(state == _RUN)[0]
            if not run_rows.size:
                break

            sel = idxs[run_rows]
            if src_values is None:
                sv = (
                    np.array(
                        [
                            [
                                src.waveform(float(ts[int(r)]))
                                for src in self.specs[int(idxs[int(r)])].circuit.vsources
                            ]
                            for r in run_rows
                        ]
                    )
                    if self.system.n_sources
                    else np.zeros((run_rows.size, 0))
                )
            else:
                sv = src_values[run_rows]
            jac, res = self.stamper.stamp(
                sel,
                x[run_rows],
                self._gmin_by_rung[rung[run_rows]],
                geq[run_rows] if geq is not None else None,
                cap_history[run_rows] if cap_history is not None else None,
                sv,
            )
            try:
                delta = np.linalg.solve(jac, -res[:, :, None])[:, :, 0]
            except np.linalg.LinAlgError:
                # One or more active Jacobians is singular; fall back to
                # per-instance solves (bit-identical to the stacked
                # solve) to find and escalate the culprits only.
                delta = np.empty_like(res)
                ok = np.ones(run_rows.size, dtype=bool)
                for j in range(run_rows.size):
                    try:
                        delta[j] = np.linalg.solve(jac[j], -res[j])
                    except np.linalg.LinAlgError:
                        ok[j] = False
                for j in np.nonzero(~ok)[0]:
                    obs.count("spice.newton.singular")
                    escalate(int(run_rows[j]))
                run_rows = run_rows[ok]
                if not run_rows.size:
                    continue
                delta = delta[ok]

            # Damp node-voltage updates only (per-instance scale).
            v_part = delta[:, :nn]
            max_dv = (
                np.max(np.abs(v_part), axis=1)
                if nn
                else np.zeros(run_rows.size)
            )
            max_step = self._max_step_by_rung[rung[run_rows]]
            over = max_dv > max_step
            if over.any():
                delta[over] *= (max_step[over] / max_dv[over])[:, None]
            x[run_rows] += delta
            iters[run_rows] += 1

            conv = max_dv < self._vtol_by_rung[rung[run_rows]]
            exceeded = ~conv & (
                iters[run_rows] >= self._max_iter_by_rung[rung[run_rows]]
            )
            conv_rows = run_rows[conv]
            if conv_rows.size:
                state[conv_rows] = _DONE
                obs.count("spice.newton.solves", int(conv_rows.size))
                obs.count("spice.newton.iterations", int(iters[conv_rows].sum()))
                for _ in range(int((rung[conv_rows] > 0).sum())):
                    obs.count("resilience.recovered.spice.newton")
            for r in run_rows[exceeded]:
                obs.count("spice.newton.nonconverged")
                escalate(int(r))
            if self.record_masks:
                self.mask_trace.append(
                    {
                        "solve": solve_seq,
                        "idxs": idxs.copy(),
                        "state": state.copy(),
                        "x": x.copy(),
                    }
                )
        return x, state == _FAIL
