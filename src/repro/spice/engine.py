"""Nodal-analysis simulation engine (DC + transient).

A compact re-implementation of the SPICE algorithms the paper's
characterization flow relies on:

* **Modified nodal analysis** — node voltages plus one branch-current
  unknown per ideal voltage source.
* **Newton-Raphson** — the FinFET compact model is linearized each
  iteration through its (numerically exact) ``g_m``/``g_ds``; a
  per-iteration voltage-step damper keeps the iteration inside the
  model's well-behaved region.
* **Transient integration** — trapezoidal companion models for
  capacitors (backward Euler on the first step), fixed step size with
  automatic refinement near stimulus breakpoints.

Device gate capacitance is inserted automatically as lumped C_gs/C_gd
halves plus a drain-body parasitic, so transistor-level cell
simulations see realistic loading and Miller coupling without a full
charge model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..resilience import faults
from ..resilience.errors import TransientError
from ..resilience.isolation import task_heartbeat
from ..resilience.retry import run_ladder
from .kernels import SimulatorSettings, VectorStamper
from .netlist import GROUND, Circuit

#: Conductance from every node to ground, for matrix conditioning.
GMIN: float = 1e-12

#: Newton convergence tolerance on node voltages [V].
VTOL: float = 1e-6

#: Maximum Newton iterations per solve.
MAX_NEWTON: int = 200

#: Maximum Newton voltage update per iteration [V] (damping).
MAX_STEP: float = 0.2


class ConvergenceError(TransientError, RuntimeError):
    """Raised when Newton iteration fails to converge.

    A :class:`repro.resilience.errors.TransientError`: the retry
    ladder (:data:`NEWTON_LADDER`) re-solves with relaxed parameters
    before the error is allowed to escape.  Still a ``RuntimeError``
    for pre-taxonomy callers.
    """


@dataclass(frozen=True)
class NewtonSettings:
    """One rung of the Newton retry ladder.

    The defaults are the nominal solver constants, so rung 0 of
    :data:`NEWTON_LADDER` reproduces the unladdered solver exactly —
    a run that never fails is bit-identical to one without the ladder.
    """

    max_step: float = MAX_STEP
    gmin: float = GMIN
    vtol: float = VTOL
    max_iter: int = MAX_NEWTON


#: Default retry ladder for a non-converging Newton solve: nominal
#: first, then progressively heavier damping, a raised gmin-style
#: conductance floor, and a last-resort rung combining both with a
#: doubled iteration budget (the relaxations production SPICE engines
#: apply on ``.option gmin``/source stepping failures).
NEWTON_LADDER: tuple[NewtonSettings, ...] = (
    NewtonSettings(),
    NewtonSettings(max_step=MAX_STEP / 4.0),
    NewtonSettings(max_step=MAX_STEP / 4.0, gmin=1e-9),
    NewtonSettings(max_step=MAX_STEP / 10.0, gmin=1e-6, max_iter=2 * MAX_NEWTON),
)

#: Maximum recursive time-step halvings when a transient step fails
#: on every ladder rung (the "finer time step" recovery).
MAX_STEP_REFINEMENTS: int = 3


@dataclass
class _System:
    """Index maps for the MNA unknown vector."""

    node_index: dict[str, int]
    n_nodes: int
    n_sources: int

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_sources

    def idx(self, node: str) -> int:
        """Unknown index of a node, or -1 for ground."""
        if node == GROUND:
            return -1
        return self.node_index[node]


def _build_system(circuit: Circuit) -> _System:
    nodes = circuit.nodes()
    return _System(
        node_index={name: i for i, name in enumerate(nodes)},
        n_nodes=len(nodes),
        n_sources=len(circuit.vsources),
    )


def _v_of(state: np.ndarray, i: int) -> float:
    """Voltage of unknown ``i`` in ``state`` (ground for ``i < 0``).

    Hoisted to module level: the transient inner loop previously
    re-bound an equivalent closure on every ``_advance_step`` call,
    which showed up in profiles.
    """
    return 0.0 if i < 0 else float(state[i])


def build_time_grid(circuit: Circuit, t_stop: float, dt: float) -> tuple[np.ndarray, int]:
    """Transient time grid: uniform samples plus stimulus breakpoints.

    Returns ``(times, uniform_steps)`` where ``uniform_steps`` is the
    number of points the uniform grid alone would have contributed
    (used for the breakpoint-refinement counter).  Near-coincident
    points are merged: a stimulus breakpoint landing on (but not
    exactly equal to) an arange sample would otherwise produce a
    femto-scale step whose companion conductance ``2/h`` destroys the
    Jacobian's conditioning.  Shared by the serial transient loop and
    the trajectory-batched simulator so both integrate the exact same
    grid.
    """
    grid = set(np.arange(0.0, t_stop + dt * 0.5, dt).tolist())
    uniform_steps = len(grid)
    for src in circuit.vsources:
        for bp in src.waveform.breakpoints():
            if 0.0 < bp < t_stop:
                grid.add(float(bp))
    times = np.array(sorted(grid))
    keep = np.ones(len(times), dtype=bool)
    keep[1:] = np.diff(times) > dt * 1e-9
    return times[keep], uniform_steps


@dataclass
class OperatingPoint:
    """DC solution: node voltages [V] and source branch currents [A]."""

    voltages: dict[str, float]
    source_currents: dict[str, float]

    def __getitem__(self, node: str) -> float:
        if node == GROUND:
            return 0.0
        return self.voltages[node]


@dataclass
class TransientResult:
    """Transient solution waveforms.

    ``voltages[node]`` and ``source_currents[name]`` are arrays aligned
    with ``time``.  Source current follows the SPICE convention:
    current flowing *into* the positive terminal of the source.
    """

    time: np.ndarray
    voltages: dict[str, np.ndarray]
    source_currents: dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        if node == GROUND:
            return np.zeros_like(self.time)
        return self.voltages[node]


def _device_caps(circuit: Circuit, temperature_k: float) -> list[tuple[int, int, float]]:
    """Lumped device capacitances as (node_a, node_b, C) index triples."""
    return []  # placeholder, replaced below after system construction


class Simulator:
    """DC and transient simulation of one :class:`Circuit`.

    The simulator is constructed per circuit and temperature, matching
    how a characterization run invokes SPICE once per corner.
    """

    def __init__(
        self,
        circuit: Circuit,
        temperature_k: float = 300.0,
        ladder: tuple[NewtonSettings, ...] | None = None,
        settings: SimulatorSettings | None = None,
    ):
        self.circuit = circuit
        self.temperature_k = temperature_k
        self.system = _build_system(circuit)
        self._caps = self._collect_capacitors()
        #: Retry ladder applied to every Newton solve; rung 0 must be
        #: the nominal settings.  Override for tests or stiff circuits.
        self.ladder = ladder if ladder is not None else NEWTON_LADDER
        #: Engine configuration; the ``kernel`` field selects between
        #: the trajectory-batched path (default; falls back to vector
        #: stamping for a single simulator), the vector stamping path
        #: (``REPRO_KERNEL=vector``) and the scalar per-element
        #: reference path (``REPRO_KERNEL=scalar``).
        self.settings = settings if settings is not None else SimulatorSettings()
        # The "batch" kernel batches *across* simulators (see
        # spice/batch.py); a lone Simulator under it uses the same
        # vector stamper, so serial and batched runs share assembly.
        self._stamper = (
            VectorStamper(circuit, self.system, temperature_k, self._caps)
            if self.settings.kernel in ("vector", "batch")
            else None
        )

    # ------------------------------------------------------------------
    def _collect_capacitors(self) -> list[tuple[int, int, float]]:
        """Explicit capacitors plus lumped FinFET gate/drain caps."""
        sys = self.system
        caps: list[tuple[int, int, float]] = []
        for c in self.circuit.capacitors:
            caps.append((sys.idx(c.node_a), sys.idx(c.node_b), c.capacitance))
        for m in self.circuit.finfets:
            cgg = float(m.device.gate_capacitance(temperature_k=self.temperature_k))
            half = cgg / 2.0
            cdb = 0.3 * cgg
            caps.append((sys.idx(m.gate), sys.idx(m.source), half))
            caps.append((sys.idx(m.gate), sys.idx(m.drain), half))
            caps.append((sys.idx(m.drain), -1, cdb))
        return caps

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _stamp_static(
        self,
        x: np.ndarray,
        t: float,
        jac: np.ndarray,
        res: np.ndarray,
        gmin: float = GMIN,
        src_values: np.ndarray | None = None,
    ) -> None:
        """Stamp resistors, sources, FinFETs and gmin at state ``x``.

        ``src_values`` carries pre-sampled source voltages for this time
        point (the transient loop batches stimulus sampling); when absent
        the waveforms are evaluated at ``t``.  Both kernel paths consume
        the same pre-sampled values so they see bit-identical stimuli.
        """
        sys = self.system
        nn = sys.n_nodes

        def v_of(i: int) -> float:
            return 0.0 if i < 0 else float(x[i])

        # gmin to ground (raised by retry-ladder rungs for conditioning).
        for i in range(nn):
            jac[i, i] += gmin
            res[i] += gmin * x[i]

        for r in self.circuit.resistors:
            a, b = sys.idx(r.node_a), sys.idx(r.node_b)
            g = 1.0 / r.resistance
            current = g * (v_of(a) - v_of(b))
            if a >= 0:
                jac[a, a] += g
                res[a] += current
                if b >= 0:
                    jac[a, b] -= g
            if b >= 0:
                jac[b, b] += g
                res[b] -= current
                if a >= 0:
                    jac[b, a] -= g

        for k, src in enumerate(self.circuit.vsources):
            p, m = sys.idx(src.node_plus), sys.idx(src.node_minus)
            row = nn + k
            i_src = float(x[row])
            # KCL: branch current leaves + terminal.
            if p >= 0:
                jac[p, row] += 1.0
                res[p] += i_src
            if m >= 0:
                jac[m, row] -= 1.0
                res[m] -= i_src
            # Branch equation: v(p) - v(m) = V(t).
            if p >= 0:
                jac[row, p] += 1.0
            if m >= 0:
                jac[row, m] -= 1.0
            v_t = float(src_values[k]) if src_values is not None else src.waveform(t)
            res[row] += v_of(p) - v_of(m) - v_t

        for m_dev in self.circuit.finfets:
            d = sys.idx(m_dev.drain)
            g = sys.idx(m_dev.gate)
            s = sys.idx(m_dev.source)
            vgs = v_of(g) - v_of(s)
            vds = v_of(d) - v_of(s)
            dev = m_dev.device
            ids = float(dev.ids(vgs, vds, self.temperature_k))
            gm = dev.gm(vgs, vds, self.temperature_k)
            gds = dev.gds(vgs, vds, self.temperature_k)
            # Current flows d -> s.
            if d >= 0:
                res[d] += ids
                if g >= 0:
                    jac[d, g] += gm
                if d >= 0:
                    jac[d, d] += gds
                if s >= 0:
                    jac[d, s] -= gm + gds
            if s >= 0:
                res[s] -= ids
                if g >= 0:
                    jac[s, g] -= gm
                if d >= 0:
                    jac[s, d] -= gds
                jac[s, s] += gm + gds

    def _stamp_caps_companion(
        self,
        x: np.ndarray,
        jac: np.ndarray,
        res: np.ndarray,
        geq: float,
        history: np.ndarray,
    ) -> None:
        """Stamp capacitor companion models.

        ``history[j]`` is the companion current source of capacitor j
        for this step; the capacitor current is
        ``i = geq * (v_a - v_b) + history[j]``.
        """

        def v_of(i: int) -> float:
            return 0.0 if i < 0 else float(x[i])

        for j, (a, b, c) in enumerate(self._caps):
            g = geq * c
            current = g * (v_of(a) - v_of(b)) + history[j]
            if a >= 0:
                jac[a, a] += g
                res[a] += current
                if b >= 0:
                    jac[a, b] -= g
            if b >= 0:
                jac[b, b] += g
                res[b] -= current
                if a >= 0:
                    jac[b, a] -= g

    # ------------------------------------------------------------------
    def _newton(
        self,
        x0: np.ndarray,
        t: float,
        geq: float = 0.0,
        cap_history: np.ndarray | None = None,
        settings: NewtonSettings = NewtonSettings(),
        attempt: int = 0,
        src_values: np.ndarray | None = None,
    ) -> np.ndarray:
        if faults.should_fire("spice.newton", attempt=attempt):
            obs.count("spice.newton.nonconverged")
            raise ConvergenceError(
                f"injected Newton non-convergence at t={t}", site="spice.newton"
            )
        sys = self.system
        x = x0.copy()
        if cap_history is None:
            cap_history = np.zeros(len(self._caps))
        obs.count(f"spice.kernel.{self.settings.kernel}")
        for iteration in range(settings.max_iter):
            if self._stamper is not None:
                jac, res = self._stamper.stamp(
                    x, t, settings.gmin, geq, cap_history, src_values
                )
            else:
                jac = np.zeros((sys.size, sys.size))
                res = np.zeros(sys.size)
                self._stamp_static(
                    x, t, jac, res, gmin=settings.gmin, src_values=src_values
                )
                if geq > 0.0:
                    self._stamp_caps_companion(x, jac, res, geq, cap_history)
                # DC: capacitors are open circuits; nothing to stamp.
            try:
                delta = np.linalg.solve(jac, -res)
            except np.linalg.LinAlgError as exc:
                obs.count("spice.newton.singular")
                raise ConvergenceError(
                    f"singular MNA matrix at t={t}: {exc}", site="spice.newton"
                ) from exc
            # Damp node-voltage updates only.
            v_part = delta[: sys.n_nodes]
            max_dv = float(np.max(np.abs(v_part))) if sys.n_nodes else 0.0
            if max_dv > settings.max_step:
                delta = delta * (settings.max_step / max_dv)
            x = x + delta
            if max_dv < settings.vtol:
                obs.count("spice.newton.solves")
                obs.count("spice.newton.iterations", iteration + 1)
                return x
        obs.count("spice.newton.nonconverged")
        raise ConvergenceError(
            f"Newton failed to converge at t={t}", site="spice.newton"
        )

    def _solve(
        self,
        x0: np.ndarray,
        t: float,
        geq: float = 0.0,
        cap_history: np.ndarray | None = None,
        src_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """One Newton solve behind the retry ladder.

        Rung 0 is the nominal solver; on :class:`ConvergenceError` the
        remaining rungs of :attr:`ladder` re-solve with progressively
        relaxed damping / gmin / iteration budget, emitting
        ``resilience.retry.spice.newton`` counters per rung.
        """
        return run_ladder(
            "spice.newton",
            self.ladder,
            lambda rung, settings: self._newton(
                x0, t, geq, cap_history, settings, attempt=rung,
                src_values=src_values,
            ),
            retry_on=ConvergenceError,
        )

    # ------------------------------------------------------------------
    # Public analyses
    # ------------------------------------------------------------------
    def dc_operating_point(self, initial: dict[str, float] | None = None) -> OperatingPoint:
        """Solve the DC operating point (capacitors open)."""
        sys = self.system
        x0 = np.zeros(sys.size)
        if initial:
            for node, value in initial.items():
                if node != GROUND and node in sys.node_index:
                    x0[sys.node_index[node]] = value
        x = self._solve(x0, t=0.0)
        voltages = {name: float(x[i]) for name, i in sys.node_index.items()}
        currents = {
            src.name: float(x[sys.n_nodes + k]) for k, src in enumerate(self.circuit.vsources)
        }
        return OperatingPoint(voltages, currents)

    @obs.traced("spice.dc_sweep")
    def dc_sweep(
        self, source_name: str, values: np.ndarray, initial: dict[str, float] | None = None
    ) -> list[OperatingPoint]:
        """Sweep one DC source through ``values`` with solution reuse.

        The sweep axis is batched: solutions accumulate into one
        ``(size, n_points)`` state matrix (see :meth:`dc_sweep_arrays`
        for the raw batch view) and each point warm-starts Newton from
        its predecessor.  The per-point solves share the simulator's
        precomputed stamping kernel, so under the vector kernel a sweep
        costs one kernel build total, not one per point.
        """
        sys = self.system
        states = self.dc_sweep_arrays(source_name, values, initial)
        return [
            OperatingPoint(
                voltages={name: float(states[i, p]) for name, i in sys.node_index.items()},
                source_currents={
                    src.name: float(states[sys.n_nodes + k, p])
                    for k, src in enumerate(self.circuit.vsources)
                },
            )
            for p in range(states.shape[1])
        ]

    def dc_sweep_arrays(
        self, source_name: str, values: np.ndarray, initial: dict[str, float] | None = None
    ) -> np.ndarray:
        """Batched DC sweep: the full ``(size, n_points)`` state matrix.

        Row ``i < n_nodes`` is node ``i``'s voltage across the sweep;
        the remaining rows are source branch currents.  This is the
        array the waveform-digest differential tests hash.
        """
        from .waveforms import DC as DCWave

        target = None
        for k, src in enumerate(self.circuit.vsources):
            if src.name == source_name:
                target = k
                break
        if target is None:
            raise KeyError(f"no voltage source named {source_name!r}")

        sweep = np.asarray(values, dtype=float)
        states = np.empty((self.system.size, len(sweep)))
        guess = initial
        original = self.circuit.vsources[target]
        try:
            for p, value in enumerate(sweep):
                self.circuit.vsources[target] = type(original)(
                    original.name, original.node_plus, original.node_minus, DCWave(float(value))
                )
                op = self.dc_operating_point(guess)
                for name, i in self.system.node_index.items():
                    states[i, p] = op.voltages[name]
                for k, src in enumerate(self.circuit.vsources):
                    states[self.system.n_nodes + k, p] = op.source_currents[src.name]
                guess = op.voltages
        finally:
            self.circuit.vsources[target] = original
        return states

    @obs.traced("spice.transient")
    def transient(
        self,
        t_stop: float,
        dt: float,
        initial: dict[str, float] | None = None,
    ) -> TransientResult:
        """Fixed-step trapezoidal transient from a DC initial solution.

        ``initial`` seeds the DC operating-point solve at t = 0 (useful
        to pre-bias bistable circuits); the transient itself always
        starts from a consistent operating point.
        """
        if t_stop <= 0.0 or dt <= 0.0:
            raise ValueError("t_stop and dt must be positive")
        sys = self.system

        # Time grid: uniform plus stimulus breakpoints.
        times, uniform_steps = build_time_grid(self.circuit, t_stop, dt)
        obs.count("spice.transient.runs")
        obs.count("spice.transient.steps", len(times) - 1)
        obs.count(
            "spice.transient.breakpoint_refinements",
            max(len(times) - uniform_steps, 0),
        )

        op = self.dc_operating_point(initial)
        x = np.zeros(sys.size)
        for name, i in sys.node_index.items():
            x[i] = op.voltages[name]
        for k, src in enumerate(self.circuit.vsources):
            x[sys.n_nodes + k] = op.source_currents[src.name]

        n_steps = len(times)
        volts = np.zeros((sys.n_nodes, n_steps))
        src_currents = np.zeros((sys.n_sources, n_steps))
        volts[:, 0] = x[: sys.n_nodes]
        src_currents[:, 0] = x[sys.n_nodes :]

        # Capacitor currents at the previous accepted point (0 at DC).
        i_cap_prev = np.zeros(len(self._caps))

        # Batch the stimulus sampling over the whole time axis: one
        # vectorized ``Waveform.sample`` per source instead of a scalar
        # waveform call inside every Newton iteration.
        stimulus = (
            np.array([src.waveform.sample(times) for src in self.circuit.vsources])
            if sys.n_sources
            else np.zeros((0, n_steps))
        )

        for step in range(1, n_steps):
            # Liveness mark for the isolation watchdog: each accepted
            # time step is progress (no-op outside isolated workers).
            task_heartbeat()
            use_trap = step > 1
            x, i_cap_prev = self._advance_step(
                x, i_cap_prev, float(times[step - 1]), float(times[step]), use_trap,
                src_values=stimulus[:, step],
            )
            volts[:, step] = x[: sys.n_nodes]
            src_currents[:, step] = x[sys.n_nodes :]

        return TransientResult(
            time=times,
            voltages={name: volts[i] for name, i in sys.node_index.items()},
            source_currents={
                src.name: src_currents[k] for k, src in enumerate(self.circuit.vsources)
            },
        )

    def _advance_step(
        self,
        x: np.ndarray,
        i_cap_prev: np.ndarray,
        t0: float,
        t1: float,
        use_trap: bool,
        depth: int = 0,
        src_values: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance the transient state from ``t0`` to ``t1``.

        Returns the accepted state and the capacitor currents at the
        new point.  If the Newton ladder fails on the full step, the
        interval is halved (up to :data:`MAX_STEP_REFINEMENTS` deep)
        and re-integrated — the "finer time step" rung of the
        transient recovery ladder.
        """
        h = t1 - t0
        if use_trap:
            geq = 2.0 / h
            history = np.array(
                [
                    -geq * c * (_v_of(x, a) - _v_of(x, b)) - i_cap_prev[j]
                    for j, (a, b, c) in enumerate(self._caps)
                ]
            )
        else:
            geq = 1.0 / h
            history = np.array(
                [
                    -geq * c * (_v_of(x, a) - _v_of(x, b))
                    for j, (a, b, c) in enumerate(self._caps)
                ]
            )
        try:
            x_new = self._solve(x, t=t1, geq=geq, cap_history=history,
                                src_values=src_values)
        except ConvergenceError:
            if depth >= MAX_STEP_REFINEMENTS:
                raise
            obs.count("resilience.retry.spice.timestep")
            t_mid = 0.5 * (t0 + t1)
            # Refinement midpoints are off the sampled time grid, so
            # the halves fall back to per-call waveform evaluation.
            x_mid, i_cap_mid = self._advance_step(
                x, i_cap_prev, t0, t_mid, use_trap, depth + 1
            )
            # The midpoint is an accepted solution, so the second half
            # always has trapezoidal history available.
            return self._advance_step(x_mid, i_cap_mid, t_mid, t1, True, depth + 1)
        i_cap_new = i_cap_prev.copy()
        for j, (a, b, c) in enumerate(self._caps):
            g = geq * c
            i_cap_new[j] = g * (_v_of(x_new, a) - _v_of(x_new, b)) + history[j]
        return x_new, i_cap_new
