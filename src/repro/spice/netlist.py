"""Circuit netlist representation for the nodal-analysis simulator.

A :class:`Circuit` is the in-memory equivalent of a SPICE deck: named
nodes (with ``"0"`` as ground), two-terminal linear elements, ideal
voltage sources, and four-terminal FinFET devices evaluated through the
cryogenic compact model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..device.bsimcmg import CryoFinFET
from .waveforms import DC, Waveform

GROUND = "0"


@dataclass(frozen=True)
class Resistor:
    name: str
    node_a: str
    node_b: str
    resistance: float


@dataclass(frozen=True)
class Capacitor:
    name: str
    node_a: str
    node_b: str
    capacitance: float


@dataclass(frozen=True)
class VoltageSource:
    name: str
    node_plus: str
    node_minus: str
    waveform: Waveform


@dataclass(frozen=True)
class FinFET:
    """Four-terminal FinFET instance (bulk is tied to source).

    The device's intrinsic gate capacitance is included automatically
    by the simulator as lumped gate-source / gate-drain capacitors so
    that transient simulations see realistic input loading and Miller
    coupling.
    """

    name: str
    drain: str
    gate: str
    source: str
    device: CryoFinFET


class Circuit:
    """A flat transistor-level circuit.

    Nodes are created implicitly by referencing them from elements.
    Element names must be unique within the circuit.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.resistors: list[Resistor] = []
        self.capacitors: list[Capacitor] = []
        self.vsources: list[VoltageSource] = []
        self.finfets: list[FinFET] = []
        self._names: set[str] = set()

    # ------------------------------------------------------------------
    def _register(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"duplicate element name {name!r}")
        self._names.add(name)

    def add_resistor(self, name: str, node_a: str, node_b: str, resistance: float) -> Resistor:
        """Add a linear resistor [ohm]."""
        if resistance <= 0.0:
            raise ValueError(f"resistance must be positive, got {resistance}")
        self._register(name)
        element = Resistor(name, node_a, node_b, resistance)
        self.resistors.append(element)
        return element

    def add_capacitor(self, name: str, node_a: str, node_b: str, capacitance: float) -> Capacitor:
        """Add a linear capacitor [F]."""
        if capacitance <= 0.0:
            raise ValueError(f"capacitance must be positive, got {capacitance}")
        self._register(name)
        element = Capacitor(name, node_a, node_b, capacitance)
        self.capacitors.append(element)
        return element

    def add_vsource(
        self, name: str, node_plus: str, node_minus: str, waveform: Waveform | float
    ) -> VoltageSource:
        """Add an ideal voltage source (DC value or waveform)."""
        self._register(name)
        if not isinstance(waveform, Waveform):
            waveform = DC(float(waveform))
        element = VoltageSource(name, node_plus, node_minus, waveform)
        self.vsources.append(element)
        return element

    def add_finfet(
        self, name: str, drain: str, gate: str, source: str, device: CryoFinFET
    ) -> FinFET:
        """Add a FinFET evaluated through the cryogenic compact model."""
        self._register(name)
        element = FinFET(name, drain, gate, source, device)
        self.finfets.append(element)
        return element

    # ------------------------------------------------------------------
    def nodes(self) -> list[str]:
        """All non-ground node names, in deterministic order."""
        seen: dict[str, None] = {}
        for r in self.resistors:
            seen.setdefault(r.node_a)
            seen.setdefault(r.node_b)
        for c in self.capacitors:
            seen.setdefault(c.node_a)
            seen.setdefault(c.node_b)
        for v in self.vsources:
            seen.setdefault(v.node_plus)
            seen.setdefault(v.node_minus)
        for m in self.finfets:
            seen.setdefault(m.drain)
            seen.setdefault(m.gate)
            seen.setdefault(m.source)
        seen.pop(GROUND, None)
        return list(seen)

    def elements(self) -> Iterator[object]:
        yield from self.resistors
        yield from self.capacitors
        yield from self.vsources
        yield from self.finfets

    def __len__(self) -> int:
        return (
            len(self.resistors) + len(self.capacitors) + len(self.vsources) + len(self.finfets)
        )
