"""Command-line interface: the flow as a tool.

Exposes the paper's pipeline the way a user drives ABC + SiliconSmart
+ PrimeTime, as subcommands:

* ``characterize`` — build a liberty file for a temperature corner;
* ``synthesize``   — run a circuit (EPFL name or AIGER file) through a
  scenario and write the mapped Verilog + signoff reports;
* ``evaluate``     — run every scenario on chosen circuits with the
  fair-clock rule and dump the results (table and/or JSON);
* ``compare``      — the Fig. 3 experiment on chosen circuits;
* ``calibrate``    — the Fig. 1 measurement + model-fitting loop;
* ``benchmarks``   — list the available EPFL generators;
* ``serve``        — run the characterization service: an
  admission-controlled job queue (quotas, weighted-fair scheduling,
  circuit breaker, graceful SIGTERM drain) over an HTTP JSON API;
* ``report-trace`` — re-render a saved JSONL trace as a summary tree;
* ``ledger``       — inspect the persistent run ledger
  (``list``/``show``/``compare``/``trend``).

``synthesize``, ``evaluate``, ``compare``, and ``calibrate`` accept
``--profile`` (print a span-tree profile after the run) and ``--trace
out.jsonl`` (stream the full trace to a file); see
``docs/OBSERVABILITY.md``.  Flow commands also accept ``--cache-dir
[DIR]`` (persist characterized libraries and optimized networks to an
on-disk content-addressed cache, default ``~/.cache/repro``) and
``evaluate``/``compare`` take ``--jobs N`` for parallel experiment
fan-out; see ``docs/ARCHITECTURE.md``.

``synthesize`` and ``evaluate`` additionally append one distilled
record per run (config fingerprint, per-stage wall times, cache and
resilience counters, peak RSS) to the run ledger at ``$REPRO_LEDGER``
(default ``.repro/ledger.jsonl``; ``--ledger PATH`` overrides,
``--no-ledger`` or ``REPRO_LEDGER=off`` disables); see
``docs/OBSERVABILITY.md``.

``synthesize`` and ``evaluate`` additionally accept ``--strict``
(degraded results exit 2 instead of warning) and ``--faults PLAN`` (a
deterministic fault-injection plan, overriding ``$REPRO_FAULTS``); see
``docs/ROBUSTNESS.md``.

Crash safety (``docs/ROBUSTNESS.md``): ``synthesize`` and ``evaluate``
accept ``--journal PATH`` (record a write-ahead run journal; implies a
disk cache at ``PATH.cache`` unless ``--cache-dir``/``REPRO_CACHE_DIR``
says otherwise) and ``--resume PATH`` (replay completed work from an
interrupted run's journal — the resumed run's ``--json`` output is
byte-identical to an uninterrupted one).  ``--isolate process`` moves
the ``--jobs`` fan-out into supervised worker subprocesses with a
hang/memory watchdog.  SIGINT/SIGTERM flush the journal and trace
sinks, print the resume command, and exit 130.

Run ``python -m repro <subcommand> --help`` for the options.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import signal
import sys
from pathlib import Path

#: Resume command for the active journaled run, printed on interrupt.
_RESUME_HINT: str | None = None


def _ledger_target(args: argparse.Namespace):
    """Where this command's ledger record goes; ``None`` when disabled."""
    if not getattr(args, "_ledger_command", False):
        return None
    if getattr(args, "no_ledger", False):
        return None
    from .obs import ledger

    return ledger.ledger_path(getattr(args, "ledger", None))


@contextlib.contextmanager
def _tracing(args: argparse.Namespace):
    """Install a tracer when ``--trace``/``--profile``/the ledger need one.

    Flow commands keep a tracer (plus the RSS/CPU resource monitor)
    even without ``--trace``/``--profile``, because the run ledger
    distills its record from the tracer; the tracing primitives are
    cheap enough that this is free at flow granularity
    (``docs/OBSERVABILITY.md``).  The record is appended in the exit
    path with the run's final status, and a ledger write failure never
    fails a run that already produced its results.
    """
    trace_path = getattr(args, "trace", None)
    profile = getattr(args, "profile", False)
    ledger_to = _ledger_target(args)
    if not trace_path and not profile and ledger_to is None:
        yield
        return
    from . import obs

    sinks = [obs.JsonlSink(trace_path)] if trace_path else []
    tracer = obs.Tracer(sinks=sinks)
    monitor = obs.ResourceMonitor(tracer) if ledger_to is not None else None
    status = "ok"
    tracer.install()
    if monitor is not None:
        monitor.start()
    try:
        yield
    except BaseException:
        status = "error"
        raise
    finally:
        if monitor is not None:
            monitor.stop()
        tracer.uninstall()
        tracer.close()
        if ledger_to is not None:
            from .obs import ledger

            with contextlib.suppress(Exception):
                record = ledger.build_record(
                    tracer,
                    command=getattr(args, "command", "?"),
                    config=_journal_config(args),
                    status=status,
                )
                ledger.append(record, ledger_to)
        if profile and status == "ok":
            print()
            print(tracer.render_summary())
        if trace_path:
            print(f"wrote trace to {trace_path}", file=sys.stderr)


@contextlib.contextmanager
def _kernel_choice(args: argparse.Namespace):
    """Pin the SPICE stamping kernel when ``--kernel`` asks for one.

    The choice is carried in :envvar:`REPRO_KERNEL` so every
    :class:`~repro.spice.SimulatorSettings` constructed anywhere in the
    run (charlib SPICE backend, validation decks, worker threads) picks
    it up without threading an argument through each layer.
    """
    kernel = getattr(args, "kernel", None)
    if not kernel:
        yield
        return
    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = kernel
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous


@contextlib.contextmanager
def _faulting(args: argparse.Namespace):
    """Install an explicit fault plan when ``--faults`` asks for one.

    Without the flag, a plan in :envvar:`REPRO_FAULTS` still applies —
    this only handles the explicit override.
    """
    plan_text = getattr(args, "faults", None)
    if not plan_text:
        yield
        return
    from .resilience import injecting, parse_plan

    with injecting(parse_plan(plan_text)):
        yield


def _degraded_summary(degraded: list[str], strict: bool) -> int:
    """Print the degraded-arc report; return the run's exit code."""
    if not degraded:
        return 0
    print(
        f"degraded: {len(degraded)} arc(s) fell back to analytic tables: "
        + ", ".join(degraded),
        file=sys.stderr,
    )
    if strict:
        print("repro: error: degraded results under --strict", file=sys.stderr)
        return 2
    return 0


def _journal_config(args: argparse.Namespace) -> dict:
    """The run configuration a journal is bound to.

    Everything that determines the *results* goes in (command,
    circuits, scenario, corner, signoff knobs); knobs that only change
    *how* the run executes (jobs, isolation, tracing, output paths,
    strictness) stay out, so a resume may legitimately use different
    parallelism than the interrupted run.
    """
    # A serve journal is bound to nothing but the command: every serve
    # knob (port, workers, capacity, quotas) is runtime-only, and the
    # per-job configuration lives in the journal's own ``job_submit``
    # records — resuming on a different port must replay the same jobs.
    if getattr(args, "command", None) == "serve":
        return {"command": "serve"}
    excluded = {
        "func", "journal", "resume", "trace", "profile", "cache_dir",
        "cache_remote", "faults", "jobs", "isolate", "json", "output",
        "report", "strict", "ledger", "no_ledger",
    }
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in excluded and not key.startswith("_")
    }


def _resume_hint(argv: list[str], journal_path: str) -> str:
    """The command line that resumes this run after an interrupt."""
    import shlex

    kept: list[str] = []
    skip = False
    for token in argv:
        if skip:
            skip = False
            continue
        if token in ("--journal", "--resume"):
            skip = True
            continue
        if token.startswith("--journal=") or token.startswith("--resume="):
            continue
        kept.append(token)
    return shlex.join(["repro", *kept, "--resume", journal_path])


@contextlib.contextmanager
def _journaling(args: argparse.Namespace, argv: list[str]):
    """Open the run journal when ``--journal``/``--resume`` ask for one.

    Must enter *before* :func:`_caching`: a journal without an explicit
    cache directory implies one at ``<journal>.cache`` (resume replays
    completed work from the disk cache, so a purely in-memory cache
    would make every journal record useless after the process dies).
    """
    global _RESUME_HINT
    journal_path = getattr(args, "resume", None) or getattr(args, "journal", None)
    if not journal_path:
        args._journal = None
        yield
        return
    from .resilience.journal import RunJournal

    if not getattr(args, "cache_dir", None) and not os.environ.get("REPRO_CACHE_DIR"):
        args.cache_dir = f"{journal_path}.cache"
    config = _journal_config(args)
    if getattr(args, "resume", None):
        journal = RunJournal.resume(journal_path, config)
        if getattr(args, "command", None) == "serve":
            done = sum(1 for r in journal.records if r.get("kind") == "job_done")
            print(
                f"resuming from {journal_path} ({done} job(s) journaled done)",
                file=sys.stderr,
            )
        else:
            print(
                f"resuming from {journal_path} "
                f"({len(journal.completed_scenarios())} scenario(s) journaled)",
                file=sys.stderr,
            )
    else:
        journal = RunJournal.create(journal_path, config)
    args._journal = journal
    _RESUME_HINT = _resume_hint(argv, str(journal_path))
    try:
        yield
    finally:
        journal.close()


@contextlib.contextmanager
def _caching(args: argparse.Namespace):
    """Install the artifact cache ``--cache-dir``/``--cache-remote`` ask for.

    ``--cache-remote URL`` additionally exports
    :envvar:`REPRO_CACHE_REMOTE` for the duration of the run so
    isolated worker subprocesses (which rebuild their cache from just
    a directory) join the same remote tier; see ``docs/ROBUSTNESS.md``
    ("Remote cache tier").
    """
    cache_dir = getattr(args, "cache_dir", None)
    cache_remote = getattr(args, "cache_remote", None)
    if not cache_dir and not cache_remote:
        yield
        return
    from .core import ArtifactCache, using_cache

    previous = os.environ.get("REPRO_CACHE_REMOTE")
    if cache_remote:
        os.environ["REPRO_CACHE_REMOTE"] = cache_remote
    try:
        with using_cache(ArtifactCache(cache_dir=cache_dir, remote=cache_remote)):
            yield
    finally:
        if cache_remote:
            if previous is None:
                os.environ.pop("REPRO_CACHE_REMOTE", None)
            else:
                os.environ["REPRO_CACHE_REMOTE"] = previous


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="OUT.jsonl",
                        help="write a JSONL trace of the run")
    parser.add_argument("--profile", action="store_true",
                        help="print a span-tree profile after the run")


def _add_ledger_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="run-ledger file for this run's record (default: "
             "$REPRO_LEDGER or .repro/ledger.jsonl)",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="skip recording this run in the run ledger",
    )
    parser.set_defaults(_ledger_command=True)


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 2 when any result is degraded (analytic-fallback "
             "arcs) instead of completing with a warning",
    )
    parser.add_argument(
        "--faults", metavar="PLAN",
        help="deterministic fault-injection plan (overrides "
             "$REPRO_FAULTS), e.g. 'seed=7;spice.newton:0.1'; "
             "see docs/ROBUSTNESS.md",
    )


def _add_kernel_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel", choices=["batch", "vector", "scalar"], default=None,
        help="SPICE stamping kernel: 'batch' (trajectory-batched NLDM "
             "grids, default), 'vector' (per-instance vectorized "
             "stamps) or 'scalar' (per-element reference path); "
             "overrides $REPRO_KERNEL — see docs/PERFORMANCE.md",
    )


def _add_cache_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", nargs="?", const="~/.cache/repro", default=None,
        metavar="DIR",
        help="persist artifacts (characterized libraries, optimized "
             "networks) to an on-disk cache (default dir: ~/.cache/repro)",
    )
    parser.add_argument(
        "--cache-remote", metavar="URL", default=None,
        help="also share artifacts through a remote cache server "
             "(repro cache-serve) at URL, e.g. host:8358; a slow or "
             "dead server degrades to local-only (overrides "
             "$REPRO_CACHE_REMOTE) — see docs/ROBUSTNESS.md",
    )


def _add_journal_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--journal", metavar="PATH",
        help="record a crash-safe write-ahead run journal (implies "
             "--cache-dir PATH.cache unless a cache dir is configured)",
    )
    group.add_argument(
        "--resume", metavar="PATH",
        help="resume an interrupted run from its journal, replaying "
             "completed work from the artifact cache",
    )
    parser.add_argument(
        "--isolate", choices=["thread", "process"], default="thread",
        help="isolation tier for the --jobs fan-out: 'process' runs "
             "each worker as a supervised subprocess with a "
             "hang/memory watchdog (see docs/ROBUSTNESS.md)",
    )


def _guard_violation_exit(exc, json_path: str | None) -> int:
    """Report a :class:`GuardViolation` (quarantined artifact) run."""
    if json_path:
        import json

        Path(json_path).write_text(
            json.dumps(
                {"error": str(exc), "guard_violations": list(exc.violations)},
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {json_path}", file=sys.stderr)
    print(f"repro: error: {exc}", file=sys.stderr)
    return 2


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .charlib import characterize_library, write_liberty
    from .pdk import cryo5_technology
    from dataclasses import replace

    tech = replace(cryo5_technology(), vdd=args.vdd)
    library = characterize_library(tech, args.temperature)
    text = write_liberty(library)
    out = Path(args.output or f"cryo5_{args.temperature:g}K.lib")
    out.write_text(text)
    print(f"characterized {len(library)} cells at {args.temperature:g} K, "
          f"Vdd={args.vdd:g} V -> {out} ({len(text) // 1024} KiB)")
    return 0


def _load_circuit(source: str, preset: str):
    from .benchgen import EPFL_SUITE, build_circuit
    from .io import parse_ascii, parse_binary

    if source in EPFL_SUITE:
        return build_circuit(source, preset)
    path = Path(source)
    if not path.exists():
        print(
            f"repro: error: '{source}' is neither an EPFL circuit "
            f"({', '.join(sorted(EPFL_SUITE))}) nor a readable file",
            file=sys.stderr,
        )
        raise SystemExit(2)
    data = path.read_bytes()
    if data.startswith(b"aig "):
        return parse_binary(data)
    return parse_ascii(data.decode())


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from .core import DesignContext, run_scenarios
    from .io import write_verilog
    from .resilience import GuardViolation
    from .sta import full_signoff

    aig = _load_circuit(args.circuit, args.preset)
    context = DesignContext.default(args.temperature)
    print(f"synthesizing {aig.name}: {aig.num_pis} PIs, {aig.num_pos} POs, "
          f"{aig.num_ands} AIG nodes, scenario={args.scenario}, "
          f"T={args.temperature:g} K")
    # Through run_scenarios (journal + isolation aware); one scenario
    # keeps the historical clock rule: own delay * the 1.1 margin.
    try:
        results = run_scenarios(
            aig,
            context=context,
            scenarios=[args.scenario],
            jobs=args.jobs,
            isolate=args.isolate,
            journal=args._journal,
        )
    except GuardViolation as exc:
        return _guard_violation_exit(exc, args.json)
    result = results[args.scenario]
    print(f"mapped: {result.num_gates} gates, {result.area:.3f} um2, "
          f"delay {result.critical_delay * 1e12:.2f} ps, "
          f"power {result.total_power * 1e6:.2f} uW")

    if args.output:
        out = Path(args.output)
        out.write_text(write_verilog(result.netlist))
        print(f"wrote {out}")
    if args.report:
        report = full_signoff(result.netlist, context.library)
        Path(args.report).write_text(report)
        print(f"wrote {args.report}")
    if args.json:
        import json

        Path(args.json).write_text(json.dumps(result.to_dict(), indent=2) + "\n")
        print(f"wrote {args.json}")
    return _degraded_summary(list(result.degraded), args.strict)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .core import DesignContext, run_scenarios
    from .resilience import GuardViolation

    context = DesignContext.default(args.temperature)
    header = (
        f"{'circuit':12s} {'scenario':10s} {'gates':>7} {'area[um2]':>10}"
        f" {'delay[ps]':>10} {'power[uW]':>10}"
    )
    print(header)
    print("-" * len(header))
    dump: dict[str, dict[str, dict]] = {}
    degraded: list[str] = []
    for source in args.circuits:
        aig = _load_circuit(source, args.preset)
        try:
            results = run_scenarios(
                aig,
                context=context,
                vectors=args.vectors,
                jobs=args.jobs,
                isolate=args.isolate,
                journal=args._journal,
            )
        except GuardViolation as exc:
            return _guard_violation_exit(exc, args.json)
        dump[aig.name] = {}
        for scenario, result in results.items():
            dump[aig.name][scenario] = result.to_dict()
            for arc in result.degraded:
                if arc not in degraded:
                    degraded.append(arc)
            print(
                f"{aig.name:12s} {scenario:10s} {result.num_gates:>7}"
                f" {result.area:10.3f} {result.critical_delay * 1e12:10.1f}"
                f" {result.total_power * 1e6:10.2f}"
            )
    if args.json:
        import json

        Path(args.json).write_text(json.dumps(dump, indent=2) + "\n")
        print(f"wrote {args.json}")
    return _degraded_summary(degraded, args.strict)


def _cmd_compare(args: argparse.Namespace) -> int:
    from .core import figure3_summary, figure3_synthesis_comparison

    circuits = args.circuits or None
    rows = figure3_synthesis_comparison(
        circuits=circuits, preset=args.preset, temperature=args.temperature,
        jobs=args.jobs,
    )
    header = (
        f"{'circuit':12s} {'base P[uW]':>11} {'base D[ps]':>11}"
        f" {'p_a_d dP%':>10} {'p_a_d dD%':>10} {'p_d_a dP%':>10} {'p_d_a dD%':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.circuit:12s} {row.baseline_power * 1e6:11.2f}"
            f" {row.baseline_delay * 1e12:11.1f}"
            f" {row.power_saving('p_a_d'):+10.2f} {row.delay_overhead('p_a_d'):+10.2f}"
            f" {row.power_saving('p_d_a'):+10.2f} {row.delay_overhead('p_d_a'):+10.2f}"
        )
    summary = figure3_summary(rows)
    for scenario, stats in summary.items():
        print(
            f"{scenario}: avg {stats['avg_power_saving']:+.2f}% "
            f"max {stats['max_power_saving']:+.2f}% "
            f"improved {stats['circuits_improved']}/{len(rows)}"
        )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .core import figure1_model_validation

    rows = figure1_model_validation(seed=args.seed)
    print(f"{'device':>8} {'|Vds| [V]':>10} {'T [K]':>7} {'RMS log-I':>10}")
    for row in sorted(rows, key=lambda r: (r.polarity, abs(r.vds), r.temperature)):
        print(
            f"{row.polarity + '-FET':>8} {abs(row.vds):10.2f}"
            f" {row.temperature:7.0f} {row.rms_log_error:10.4f}"
        )
    worst = max(row.rms_log_error for row in rows)
    print(f"worst residual: {worst:.4f} decades")
    return 0 if worst < 0.2 else 1


def _cmd_benchmarks(args: argparse.Namespace) -> int:
    from .benchgen import EPFL_SUITE, build_circuit

    print(f"{'name':12s} {'category':10s} {'PIs':>5} {'POs':>5} {'ANDs':>7} {'depth':>6}")
    for name in sorted(EPFL_SUITE):
        aig = build_circuit(name, args.preset)
        print(
            f"{name:12s} {EPFL_SUITE[name].category:10s} {aig.num_pis:>5}"
            f" {aig.num_pos:>5} {aig.num_ands:>7} {aig.depth():>6}"
        )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .io import write_ascii, write_binary, write_blif
    from .synth import map_luts

    aig = _load_circuit(args.circuit, args.preset)
    out = Path(args.output or f"{aig.name}.{args.format}")
    if args.format == "aag":
        out.write_text(write_ascii(aig))
    elif args.format == "aig":
        out.write_bytes(write_binary(aig))
    else:  # blif
        network = map_luts(aig, k=args.lut_size)
        out.write_text(write_blif(network))
    print(f"exported {aig.name} ({aig.num_ands} AND nodes) -> {out}")
    return 0


def _pick_record(records: list, index: int, what: str) -> dict:
    try:
        return records[index]
    except IndexError:
        print(
            f"repro: error: no {what} record at index {index} "
            f"({len(records)} record(s) in ledger)",
            file=sys.stderr,
        )
        raise SystemExit(2) from None


def _format_ledger_ts(ts) -> str:
    import datetime

    try:
        return datetime.datetime.fromtimestamp(float(ts)).strftime("%Y-%m-%d %H:%M:%S")
    except (TypeError, ValueError, OSError):
        return "?"


def _cmd_ledger(args: argparse.Namespace) -> int:
    from .obs import ledger

    path = ledger.ledger_path(args.ledger)
    if path is None:
        print("repro: error: ledger is disabled (REPRO_LEDGER)", file=sys.stderr)
        return 2
    records = ledger.read(path)
    if args.ledger_action == "list":
        if not records:
            print(f"ledger {path}: no records")
            return 0
        shown = records[-args.last:] if args.last else records
        base = len(records) - len(shown)
        header = (
            f"{'#':>4} {'when':19s} {'command':11s} {'status':7s}"
            f" {'duration':>10} {'rss[MB]':>8}  config"
        )
        print(f"ledger {path}: {len(records)} record(s)")
        print(header)
        print("-" * len(header))
        for offset, record in enumerate(shown):
            rss = record.get("peak_rss_mb")
            fingerprint = record.get("config_fingerprint") or ""
            print(
                f"{base + offset:>4} {_format_ledger_ts(record.get('ts')):19s}"
                f" {str(record.get('command', '?')):11s}"
                f" {str(record.get('status', '?')):7s}"
                f" {record.get('duration_s', 0.0):9.2f}s"
                f" {rss if rss is not None else float('nan'):8.1f}"
                f"  {fingerprint[:12]}"
            )
        return 0
    if args.ledger_action == "show":
        import json

        record = _pick_record(records, args.index, "ledger")
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    if args.ledger_action == "compare":
        old = _pick_record(records, args.old, "old")
        new = _pick_record(records, args.new, "new")
        delta = ledger.compare(old, new)
        if not delta["same_config"]:
            print("note: comparing runs with different configs", file=sys.stderr)
        print(
            f"total: {delta['old_duration_s']:.2f}s -> "
            f"{delta['new_duration_s']:.2f}s"
            + (
                f" ({delta['duration_delta']:+.1%})"
                if delta["duration_delta"] is not None
                else ""
            )
        )
        if delta["new_peak_rss_mb"] is not None and delta["old_peak_rss_mb"]:
            print(
                f"peak rss: {delta['old_peak_rss_mb']:.1f} -> "
                f"{delta['new_peak_rss_mb']:.1f} MB"
            )
        header = f"{'stage':34s} {'old[s]':>9} {'new[s]':>9} {'delta':>8}"
        print(header)
        print("-" * len(header))
        worst = None
        for row in delta["stages"]:
            old_s = f"{row['old_s']:9.3f}" if row["old_s"] is not None else "        -"
            new_s = f"{row['new_s']:9.3f}" if row["new_s"] is not None else "        -"
            pct = f"{row['delta']:+8.1%}" if row["delta"] is not None else "       -"
            print(f"{row['stage']:34s} {old_s} {new_s} {pct}")
            if row["delta"] is not None and (worst is None or row["delta"] > worst):
                worst = row["delta"]
        for name, value in delta["counter_deltas"].items():
            print(f"  {name}: {value:+g}")
        if args.fail_over is not None and worst is not None and worst > args.fail_over:
            print(
                f"repro: error: worst stage slowdown {worst:+.1%} exceeds "
                f"--fail-over {args.fail_over:.0%}",
                file=sys.stderr,
            )
            return 1
        return 0
    # trend
    series = ledger.trend(records, field=args.field, last=args.last or 20)
    if not series:
        print(f"ledger {path}: no records with field {args.field!r}")
        return 0
    for command, values in sorted(series.items()):
        print(
            f"{command:11s} {ledger.sparkline(values)}  "
            f"last={values[-1]:.3g} min={min(values):.3g} max={max(values):.3g}"
            f" n={len(values)}"
        )
    return 0


def _cmd_cache_serve(args: argparse.Namespace) -> int:
    """Run the remote artifact-cache blob server until interrupted.

    Exit codes: ``0`` — clean shutdown on SIGINT/SIGTERM.  The server
    is stateless beyond its blob directory; killing it (``kill -9``
    included) never loses client work — clients degrade to local-only
    and upload their backlog when a restarted server reappears.
    """
    from .cache import make_blob_server

    httpd = make_blob_server(
        args.host, args.port, args.dir, max_mb=args.max_mb, verbose=args.verbose
    )
    host, port = httpd.server_address[:2]
    print(
        f"repro cache-serve: listening on http://{host}:{port} "
        f"(dir={Path(args.dir).expanduser()})",
        file=sys.stderr,
    )
    if args.port_file:
        Path(args.port_file).write_text(f"{port}\n")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.shutdown()
        httpd.server_close()
        stats = httpd.store.stats()
        print(
            f"repro cache-serve: {stats['entries']} blob(s), "
            f"{stats['bytes'] // 1024} KiB on shutdown",
            file=sys.stderr,
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Cache maintenance; today one action: ``scrub``."""
    from .cache import scrub_disk, scrub_remote

    cache_dir = (
        args.cache_dir
        or os.environ.get("REPRO_CACHE_DIR")
        or "~/.cache/repro"
    )
    root = Path(cache_dir).expanduser()
    quarantined = 0
    if root.is_dir():
        report = scrub_disk(root)
        quarantined += report["quarantined"]
        print(
            f"disk {root}: {report['checked']} checked, {report['ok']} ok, "
            f"{report['quarantined']} quarantined"
        )
    else:
        print(f"disk {root}: no cache directory, skipped")
    if args.remote:
        report = scrub_remote(args.remote)
        if report is None:
            print(f"remote {args.remote}: unreachable", file=sys.stderr)
            return 2
        quarantined += report.get("quarantined", 0)
        print(
            f"remote {args.remote}: {report.get('checked', 0)} checked, "
            f"{report.get('ok', 0)} ok, "
            f"{report.get('quarantined', 0)} quarantined"
        )
    # Quarantined entries mean the scrub *worked*, but surface them in
    # the exit status so cron jobs can alarm on bit rot.
    return 1 if quarantined else 0


def _cmd_report_trace(args: argparse.Namespace) -> int:
    from .obs import read_jsonl, render_summary

    path = Path(args.trace_file)
    if not path.exists():
        print(f"repro: error: no such trace file: {path}", file=sys.stderr)
        raise SystemExit(2)
    spans, metrics = read_jsonl(path)
    print(f"trace: {path} ({len(spans)} spans)")
    print(render_summary(spans, metrics, top_counters=args.top))
    return 0


def _parse_tenant_map(pairs: list[str] | None, flag: str) -> dict[str, int]:
    """Parse repeated ``TENANT=N`` pairs (``--quota``/``--weight``)."""
    out: dict[str, int] = {}
    for pair in pairs or []:
        tenant, sep, value = pair.partition("=")
        if not sep or not tenant:
            raise ValueError(f"{flag} wants TENANT=N, got {pair!r}")
        try:
            out[tenant] = int(value)
        except ValueError:
            raise ValueError(f"{flag} {pair!r}: {value!r} is not an integer")
    return out


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the characterization service until idle or interrupted.

    Exit codes: ``0`` — clean drain (or ``--exit-when-idle`` went
    idle); ``3`` — SIGTERM/SIGINT drain timed out, in-flight work
    remains journaled for ``--resume``; ``130`` — force-quit (second
    interrupt during the drain).
    """
    import threading
    import time

    from .core import default_cache
    from .resilience.errors import AdmissionError
    from .server import CharacterizationService, unfinished_specs

    quotas = _parse_tenant_map(args.quota, "--quota")
    weights = _parse_tenant_map(args.weight, "--weight")
    journal = args._journal
    service = CharacterizationService(
        capacity=args.capacity,
        workers=args.workers,
        isolate=args.isolate,
        quotas=quotas,
        default_quota=args.default_quota,
        weights=weights,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        max_attempts=args.max_attempts,
        default_deadline_s=args.deadline,
        cache=default_cache(),
        results_dir=args.results_dir,
        journal=journal,
        task_timeout_s=args.task_timeout,
    )
    service.start()

    # Resume: every journaled job whose latest record is still
    # ``job_submit`` goes back through the front door.  Persisted
    # results make most of these the cached fast-path; admission may
    # shed when pending work exceeds capacity, so wait politely.
    if getattr(args, "resume", None) and journal is not None:
        pending = unfinished_specs(journal.records)
        for spec in pending:
            while True:
                try:
                    service.submit(spec)
                    break
                except AdmissionError as exc:
                    time.sleep(min(1.0, exc.retry_after_s or 0.1))
        if pending:
            print(
                f"re-enqueued {len(pending)} unfinished job(s)", file=sys.stderr
            )

    httpd = None
    if not args.no_http:
        from .server.http import make_server

        httpd = make_server(args.host, args.port, service, verbose=args.verbose)
        host, port = httpd.server_address[:2]
        threading.Thread(
            target=httpd.serve_forever, name="repro-serve-http", daemon=True
        ).start()
        print(f"repro serve: listening on http://{host}:{port}", file=sys.stderr)
        if args.port_file:
            Path(args.port_file).write_text(f"{port}\n")

    drained = True
    try:
        idle_since: float | None = None
        while True:
            time.sleep(0.05)
            if not args.exit_when_idle:
                continue
            if not service.idle:
                idle_since = None
                continue
            if idle_since is None:
                idle_since = time.monotonic()
            elif time.monotonic() - idle_since >= args.idle_grace:
                break
    except KeyboardInterrupt:
        print("repro serve: draining ...", file=sys.stderr)
        drained = service.drain(timeout=args.drain_timeout)
        if not drained:
            print(
                "repro serve: drain timed out; unfinished jobs remain "
                "journaled",
                file=sys.stderr,
            )
            if _RESUME_HINT:
                print(f"resume with: {_RESUME_HINT}", file=sys.stderr)
    finally:
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        service.shutdown(timeout=0 if not drained else 5.0)

    counters = service.metrics()["counters"]
    shed = sum(n for name, n in counters.items() if name.startswith("server.shed."))
    print(
        "repro serve: {admitted} admitted ({coalesced} coalesced, "
        "{cached} cached), {completed} completed, {failed} failed, "
        "{shed} shed".format(
            admitted=counters.get("server.admitted", 0),
            coalesced=counters.get("server.coalesced", 0),
            cached=counters.get("server.cached", 0),
            completed=counters.get("server.completed", 0),
            failed=counters.get("server.failed", 0),
            shed=shed,
        ),
        file=sys.stderr,
    )
    return 0 if drained else 3


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cryogenic-aware design automation (DAC 2023 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="build a liberty library at a corner")
    p.add_argument("--temperature", "-t", type=float, default=10.0)
    p.add_argument("--vdd", type=float, default=0.7)
    p.add_argument("--output", "-o", help="output .lib path")
    _add_kernel_flag(p)
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("synthesize", help="run a circuit through the flow")
    p.add_argument("circuit", help="EPFL circuit name or AIGER file")
    p.add_argument("--scenario", "-s", default="p_d_a",
                   choices=["baseline", "p_a_d", "p_d_a"])
    p.add_argument("--temperature", "-t", type=float, default=10.0)
    p.add_argument("--preset", default="default", choices=["small", "default", "large"])
    p.add_argument("--output", "-o", help="mapped Verilog output path")
    p.add_argument("--report", "-r", help="signoff report output path")
    p.add_argument("--json", "-j", help="JSON result (FlowResult.to_dict) output path")
    p.add_argument("--jobs", "-J", type=int, default=1,
                   help="workers for the scenario fan-out")
    _add_obs_flags(p)
    _add_ledger_flags(p)
    _add_kernel_flag(p)
    _add_cache_flag(p)
    _add_resilience_flags(p)
    _add_journal_flags(p)
    p.set_defaults(func=_cmd_synthesize)

    p = sub.add_parser("evaluate", help="all scenarios on circuits (fair clock)")
    p.add_argument("circuits", nargs="+", help="EPFL circuit names or AIGER files")
    p.add_argument("--temperature", "-t", type=float, default=10.0)
    p.add_argument("--preset", default="default", choices=["small", "default", "large"])
    p.add_argument("--vectors", type=int, default=512, help="power signoff vectors")
    p.add_argument("--jobs", "-J", type=int, default=1,
                   help="worker threads for scenario fan-out")
    p.add_argument("--json", "-j", help="JSON results output path")
    _add_obs_flags(p)
    _add_ledger_flags(p)
    _add_kernel_flag(p)
    _add_cache_flag(p)
    _add_resilience_flags(p)
    _add_journal_flags(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "serve",
        help="characterization-as-a-service: admission-controlled job queue",
    )
    p.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    p.add_argument("--port", type=int, default=8357,
                   help="HTTP port (0 picks an ephemeral one)")
    p.add_argument("--port-file", metavar="PATH",
                   help="write the bound port here (handy with --port 0)")
    p.add_argument("--no-http", action="store_true",
                   help="run without the HTTP front end (embedded/test use)")
    p.add_argument("--verbose", action="store_true",
                   help="log each HTTP request to stderr")
    p.add_argument("--workers", "-J", type=int, default=2,
                   help="worker threads executing jobs")
    p.add_argument("--capacity", type=int, default=64,
                   help="queue capacity; submissions beyond it are shed "
                        "with a retry-after hint")
    p.add_argument("--quota", action="append", metavar="TENANT=N",
                   help="per-tenant cap on queued+running jobs (repeatable)")
    p.add_argument("--default-quota", type=int, default=None,
                   help="quota for tenants without an explicit --quota")
    p.add_argument("--weight", action="append", metavar="TENANT=N",
                   help="weighted-fair dequeue share (repeatable; default 1)")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive worker crashes that trip the breaker")
    p.add_argument("--breaker-cooldown", type=float, default=2.0,
                   metavar="S", help="seconds before a half-open probe")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="attempts per job across worker crashes")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="default per-job deadline (propagates into stage "
                        "timeouts); a job's own deadline_s wins if earlier")
    p.add_argument("--task-timeout", type=float, default=None, metavar="S",
                   help="watchdog timeout per isolated worker task")
    p.add_argument("--results-dir", metavar="DIR",
                   help="persist one canonical JSON result per job key "
                        "here (reloaded on restart)")
    p.add_argument("--drain-timeout", type=float, default=30.0, metavar="S",
                   help="grace period for SIGTERM/SIGINT drain")
    p.add_argument("--exit-when-idle", action="store_true",
                   help="exit 0 once the queue and workers go idle "
                        "(after --idle-grace seconds)")
    p.add_argument("--idle-grace", type=float, default=0.5, metavar="S",
                   help="how long idle must persist for --exit-when-idle")
    _add_obs_flags(p)
    _add_ledger_flags(p)
    _add_kernel_flag(p)
    _add_cache_flag(p)
    _add_resilience_flags(p)
    _add_journal_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "cache-serve",
        help="shared remote artifact-cache blob server (third cache tier)",
    )
    p.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    p.add_argument("--port", type=int, default=8358,
                   help="HTTP port (0 picks an ephemeral one)")
    p.add_argument("--port-file", metavar="PATH",
                   help="write the bound port here (handy with --port 0)")
    p.add_argument("--dir", default="~/.cache/repro-blobs",
                   help="blob storage directory")
    p.add_argument("--max-mb", type=float, default=None, metavar="MB",
                   help="LRU cap on stored blob bytes (default: unbounded)")
    p.add_argument("--verbose", action="store_true",
                   help="log each HTTP request to stderr")
    p.set_defaults(func=_cmd_cache_serve)

    p = sub.add_parser("cache", help="artifact-cache maintenance")
    csub = p.add_subparsers(dest="cache_action", required=True)
    cp = csub.add_parser(
        "scrub",
        help="re-verify sha256 frames; quarantine corrupt entries",
    )
    cp.add_argument("--cache-dir", metavar="DIR", default=None,
                    help="disk tier to scrub (default: $REPRO_CACHE_DIR "
                         "or ~/.cache/repro)")
    cp.add_argument("--remote", metavar="URL", default=None,
                    help="also ask this blob server to scrub itself")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("compare", help="Fig. 3: scenarios on EPFL circuits")
    p.add_argument("circuits", nargs="*", help="circuit names (default: all)")
    p.add_argument("--temperature", "-t", type=float, default=10.0)
    p.add_argument("--preset", default="default", choices=["small", "default", "large"])
    p.add_argument("--jobs", "-J", type=int, default=1,
                   help="worker threads for circuit fan-out")
    _add_obs_flags(p)
    _add_cache_flag(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("calibrate", help="Fig. 1: measure + fit the compact model")
    p.add_argument("--seed", type=int, default=2023)
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_calibrate)

    p = sub.add_parser("benchmarks", help="list the EPFL generators")
    p.add_argument("--preset", default="default", choices=["small", "default", "large"])
    p.set_defaults(func=_cmd_benchmarks)

    p = sub.add_parser("export", help="export a circuit to AIGER/BLIF")
    p.add_argument("circuit", help="EPFL circuit name or AIGER file")
    p.add_argument("--format", "-f", default="aag", choices=["aag", "aig", "blif"])
    p.add_argument("--preset", default="default", choices=["small", "default", "large"])
    p.add_argument("--lut-size", type=int, default=6, help="k for BLIF export")
    p.add_argument("--output", "-o")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("report-trace", help="re-render a saved JSONL trace")
    p.add_argument("trace_file", help="trace written by --trace")
    p.add_argument("--top", type=int, default=12, help="counters to show")
    p.set_defaults(func=_cmd_report_trace)

    p = sub.add_parser("ledger", help="inspect the persistent run ledger")
    p.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="ledger file (default: $REPRO_LEDGER or .repro/ledger.jsonl)",
    )
    lsub = p.add_subparsers(dest="ledger_action", required=True)
    lp = lsub.add_parser("list", help="one line per recorded run")
    lp.add_argument("--last", "-n", type=int, default=20,
                    help="show only the most recent N records (0 = all)")
    lp = lsub.add_parser("show", help="dump one record as JSON")
    lp.add_argument("index", nargs="?", type=int, default=-1,
                    help="record index (negative counts from the end; "
                         "default: the latest)")
    lp = lsub.add_parser("compare", help="per-stage deltas between two runs")
    lp.add_argument("old", nargs="?", type=int, default=-2,
                    help="older record index (default: second-latest)")
    lp.add_argument("new", nargs="?", type=int, default=-1,
                    help="newer record index (default: latest)")
    lp.add_argument("--fail-over", type=float, metavar="FRAC", default=None,
                    help="exit 1 if any stage slowed by more than FRAC "
                         "(e.g. 0.25 = 25%%)")
    lp = lsub.add_parser("trend", help="sparkline of a field across runs")
    lp.add_argument("--field", default="duration_s",
                    help="record field: duration_s, peak_rss_mb, or "
                         "stages.<name> (default: duration_s)")
    lp.add_argument("--last", "-n", type=int, default=20,
                    help="points per command (default 20)")
    p.set_defaults(func=_cmd_ledger)
    return parser


def _sigterm_to_interrupt(signum, frame):
    raise KeyboardInterrupt


def main(argv: list[str] | None = None) -> int:
    global _RESUME_HINT
    _RESUME_HINT = None
    argv = sys.argv[1:] if argv is None else list(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    previous_term = None
    with contextlib.suppress(ValueError, OSError, AttributeError):
        # Graceful shutdown on SIGTERM too (only from the main thread):
        # unwind the context stack so the journal and trace sinks flush.
        previous_term = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
    try:
        with _tracing(args), _journaling(args, argv), _caching(args), \
                _faulting(args), _kernel_choice(args):
            return args.func(args)
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        if _RESUME_HINT:
            print(f"resume with: {_RESUME_HINT}", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; suppress the shutdown
        # flush complaint and exit with the conventional SIGPIPE code.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    except Exception as exc:  # surfaced as a one-liner, not a traceback
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if previous_term is not None:
            with contextlib.suppress(ValueError, OSError):
                signal.signal(signal.SIGTERM, previous_term)


if __name__ == "__main__":
    sys.exit(main())
