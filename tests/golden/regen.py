"""Regenerate the golden-flow reference files.

Run from the repository root after an *intentional* behaviour change:

    PYTHONPATH=src python tests/golden/regen.py

and commit the rewritten files together with the change that moved
them.  The goldens pin the default-path (``REPRO_KERNEL=batch``,
no fault plan) output bit-for-bit — the trajectory-batched kernel is
bitwise-identical to the vector path by construction, so these files
are unchanged from their vector-kernel generation:

* ``nand2_spice_77k.lib`` — Liberty text of one NAND2 cell
  characterized with the transistor-level SPICE backend at 77 K.
* ``flow_ctrl_baseline.json`` — canonical ``FlowResult.to_dict()``
  JSON of the small EPFL-style ``ctrl`` benchmark through the
  baseline scenario at 10 K, power signed off at 1 ns / 128 vectors.
"""

import json
import pathlib
import sys

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent


def build_liberty_text() -> str:
    from repro.charlib import characterize_library, write_liberty
    from repro.pdk import catalog, cryo5_technology

    library = characterize_library(
        cryo5_technology(),
        77.0,
        cells=[catalog.make_nand(2, 1)],
        backend="spice",
        name="golden_nand2_77k",
        cache=False,
    )
    return write_liberty(library)


def build_flow_json() -> str:
    from repro.benchgen import build_circuit
    from repro.charlib import default_library
    from repro.core import CryoSynthesisFlow

    aig = build_circuit("ctrl", "small")
    flow = CryoSynthesisFlow(default_library(10.0), "baseline")
    result = flow.run(aig)
    flow.signoff_power(result, clock_period=1e-9, vectors=128)
    return json.dumps(result.to_dict(), sort_keys=True, indent=2) + "\n"


def main() -> int:
    (GOLDEN_DIR / "nand2_spice_77k.lib").write_text(build_liberty_text())
    (GOLDEN_DIR / "flow_ctrl_baseline.json").write_text(build_flow_json())
    print(f"regenerated goldens in {GOLDEN_DIR}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
