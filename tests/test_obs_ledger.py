"""Run ledger: record construction, persistence, analysis, CLI wiring.

The ledger contract (``docs/OBSERVABILITY.md``): every flow command
appends one ``repro-ledger/1`` JSONL record distilled from its tracer,
``repro ledger`` reads the history back tolerating a torn tail, and
two consecutive identical runs are comparable with exit code 0.
"""

import json
import os

import pytest

from repro import obs
from repro.cli import main
from repro.obs import ledger


def _make_tracer() -> obs.Tracer:
    tracer = obs.Tracer()
    tracer.install()
    try:
        with obs.span("flow.run"):
            with obs.span("flow.map"):
                obs.count("cache.hit", 3)
            with obs.span("synth.rewrite"):
                obs.count("cache.miss", 1)
        obs.count("spice.newton.iterations", 999)  # hot-loop: not persisted
        obs.gauge("resource.peak_rss_mb", 120.5)
        obs.gauge("isolation.worker.peak_rss_mb", 200.25)
    finally:
        tracer.uninstall()
    return tracer


class TestRecord:
    def test_build_record_shape(self):
        record = ledger.build_record(
            _make_tracer(), command="synthesize", config={"circuit": "ctrl"}
        )
        assert record["schema"] == ledger.LEDGER_SCHEMA
        assert record["command"] == "synthesize"
        assert record["status"] == "ok"
        assert record["duration_s"] > 0
        assert set(record["stages"]) == {"flow.run", "flow.map", "synth.rewrite"}
        assert record["stages"]["flow.run"]["calls"] == 1
        assert record["stages"]["flow.run"]["wall_s"] >= (
            record["stages"]["flow.map"]["wall_s"]
        )
        assert record["counters"] == {"cache.hit": 3, "cache.miss": 1}
        assert "spice.newton.iterations" not in record["counters"]
        # Worker peak beats the supervisor's own peak here.
        assert record["peak_rss_mb"] == 200.25
        assert record["config_fingerprint"]
        json.dumps(record)  # must be plain JSON

    def test_fingerprint_matches_journal(self):
        # Same canonicalization as the run journal, so a journaled run
        # and its ledger record can be correlated by fingerprint.
        from repro.resilience.journal import config_fingerprint

        config = {"circuit": "ctrl", "temperature": 10.0}
        assert ledger.config_fingerprint(config) == config_fingerprint(config)
        assert ledger.config_fingerprint(None) is None


class TestPersistence:
    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "ledger.jsonl"
        first = ledger.build_record(_make_tracer(), command="a", config={})
        second = ledger.build_record(_make_tracer(), command="b", config={})
        ledger.append(first, path)
        ledger.append(second, path)
        records = ledger.read(path)
        assert [r["command"] for r in records] == ["a", "b"]

    def test_read_tolerates_torn_tail_and_junk(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger.append(
            ledger.build_record(_make_tracer(), command="a", config={}), path
        )
        with open(path, "a") as fh:
            fh.write("not json at all\n")
            fh.write('{"schema": "other/1", "command": "ignored"}\n')
            fh.write('{"schema": "repro-ledger/1", "command": "b"}\n')
            fh.write('{"schema": "repro-ledger/1", "command":')  # torn tail
        records = ledger.read(path)
        assert [r["command"] for r in records] == ["a", "b"]

    def test_read_missing_file(self, tmp_path):
        assert ledger.read(tmp_path / "absent.jsonl") == []

    def test_ledger_path_resolution(self, monkeypatch):
        assert ledger.ledger_path("x.jsonl").name == "x.jsonl"
        for off in ("", "0", "off", "none", "disabled", " OFF "):
            assert ledger.ledger_path(off) is None
        monkeypatch.setenv("REPRO_LEDGER", "from-env.jsonl")
        assert ledger.ledger_path().name == "from-env.jsonl"
        assert ledger.ledger_path("flag-wins.jsonl").name == "flag-wins.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", "off")
        assert ledger.ledger_path() is None
        monkeypatch.delenv("REPRO_LEDGER")
        assert str(ledger.ledger_path()) == ledger.DEFAULT_LEDGER_PATH


class TestAnalysis:
    def _record(self, command="synthesize", duration=2.0, stages=None,
                counters=None, fingerprint="abc"):
        return {
            "schema": ledger.LEDGER_SCHEMA,
            "command": command,
            "duration_s": duration,
            "peak_rss_mb": 100.0,
            "config_fingerprint": fingerprint,
            "stages": stages or {},
            "counters": counters or {},
        }

    def test_compare_stage_deltas(self):
        old = self._record(
            duration=2.0,
            stages={"flow.map": {"calls": 1, "wall_s": 1.0, "self_s": 1.0}},
            counters={"cache.hit": 2},
        )
        new = self._record(
            duration=3.0,
            stages={
                "flow.map": {"calls": 1, "wall_s": 1.5, "self_s": 1.5},
                "flow.sta": {"calls": 1, "wall_s": 0.2, "self_s": 0.2},
            },
            counters={"cache.hit": 5},
        )
        delta = ledger.compare(old, new)
        assert delta["same_config"] is True
        assert delta["duration_delta"] == pytest.approx(0.5)
        rows = {row["stage"]: row for row in delta["stages"]}
        assert rows["flow.map"]["delta"] == pytest.approx(0.5)
        assert rows["flow.sta"]["old_s"] is None
        assert rows["flow.sta"]["delta"] is None
        assert delta["counter_deltas"] == {"cache.hit": 3}

    def test_compare_flags_config_mismatch(self):
        delta = ledger.compare(
            self._record(fingerprint="abc"), self._record(fingerprint="xyz")
        )
        assert delta["same_config"] is False

    def test_trend_series_and_sparkline(self):
        records = [
            self._record(command="synthesize", duration=d) for d in (1.0, 2.0, 3.0)
        ] + [self._record(command="evaluate", duration=5.0)]
        series = ledger.trend(records, field="duration_s")
        assert series["synthesize"] == [1.0, 2.0, 3.0]
        assert series["evaluate"] == [5.0]
        assert ledger.trend(records, field="duration_s", last=2)[
            "synthesize"
        ] == [2.0, 3.0]
        spark = ledger.sparkline([1.0, 2.0, 3.0])
        assert len(spark) == 3 and spark[0] != spark[-1]
        assert ledger.sparkline([2.0, 2.0]) == "▁▁"
        assert ledger.sparkline([]) == ""

    def test_trend_stage_field(self):
        records = [
            self._record(
                stages={"flow.map": {"calls": 1, "wall_s": w, "self_s": w}}
            )
            for w in (0.5, 0.7)
        ]
        assert ledger.trend(records, field="stages.flow.map")[
            "synthesize"
        ] == [0.5, 0.7]


class TestCliLedger:
    """Acceptance: two runs -> two records -> comparable with exit 0.

    The conftest fixture points ``REPRO_LEDGER`` at a per-test temp
    file, so these runs never touch a real ``.repro/ledger.jsonl``.
    """

    def _run(self, argv):
        return main(argv)

    def test_two_runs_two_records_compare_ok(self, capsys):
        path = os.environ["REPRO_LEDGER"]
        args = ["synthesize", "ctrl", "--preset", "small", "-s", "baseline"]
        assert self._run(args) == 0
        assert self._run(args) == 0
        records = ledger.read(path)
        assert len(records) == 2
        assert all(r["status"] == "ok" for r in records)
        assert records[0]["config_fingerprint"] == records[1]["config_fingerprint"]
        assert records[0]["stages"], "per-stage table missing"
        capsys.readouterr()

        assert self._run(["ledger", "list"]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out

        assert self._run(["ledger", "compare"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert "flow." in out  # per-stage delta rows

        assert self._run(["ledger", "show"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["schema"] == ledger.LEDGER_SCHEMA

        assert self._run(["ledger", "trend"]) == 0
        assert "synthesize" in capsys.readouterr().out

    def test_no_ledger_flag_skips_record(self):
        path = os.environ["REPRO_LEDGER"]
        assert self._run(
            ["synthesize", "ctrl", "--preset", "small", "-s", "baseline",
             "--no-ledger"]
        ) == 0
        assert not os.path.exists(path)

    def test_ledger_disabled_via_env(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LEDGER", "off")
        assert self._run(["ledger", "list"]) == 2
        assert "disabled" in capsys.readouterr().err

    def test_compare_needs_two_records(self, capsys):
        with pytest.raises(SystemExit):
            self._run(["ledger", "compare"])
        assert "no old record" in capsys.readouterr().err

    def test_failed_run_recorded_with_error_status(self):
        path = os.environ["REPRO_LEDGER"]
        # A nonexistent circuit file aborts the command (SystemExit)
        # after the tracer is installed; the ledger must still record
        # the attempt, with error status.
        with pytest.raises(SystemExit):
            self._run(["synthesize", "/nonexistent/x.aig", "--preset", "small"])
        records = ledger.read(path)
        assert len(records) == 1
        assert records[0]["status"] == "error"
