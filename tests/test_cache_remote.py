"""The remote artifact-cache tier: framing, server, client, integration.

ISSUE 9's robustness contract, tested bottom-up:

* the sha256 frame verifies without unpickling (no host ever
  ``pickle.loads`` unverified network bytes);
* the blob server verifies on upload *and* on read, quarantines rot,
  and bounds its store;
* the client never fails — every failure class (dead server, timeout,
  partition, corruption, HTTP garbage) degrades to a miss or a
  deferred upload, the breaker trips into local-only mode, and
  recovery flushes the write-behind queue;
* :class:`repro.core.artifacts.ArtifactCache` composes all three tiers
  so two "hosts" share one computation, and flows stay bit-identical
  with the server up, down, or lying.
"""

import pickle
import random
import threading

import pytest

from repro import obs
from repro.cache import (
    BlobStore,
    RemoteCacheClient,
    decode_entry,
    encode_entry,
    make_blob_server,
    scrub_disk,
    verify_frame,
)
from repro.cache.framing import HEADER_LEN, MAGIC
from repro.cache.remote import _parse_url
from repro.core import ArtifactCache
from repro.resilience import faults
from repro.resilience.errors import CacheCorruptionError

# Exact hit/miss/error bookkeeping throughout; ambient cache-site fault
# plans would legitimately perturb it.
pytestmark = pytest.mark.no_chaos


@pytest.fixture
def served(tmp_path):
    """A live blob server on an ephemeral port."""
    httpd = make_blob_server("127.0.0.1", 0, tmp_path / "blobs")
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd, f"127.0.0.1:{httpd.server_address[1]}"
    finally:
        httpd.shutdown()
        httpd.server_close()


def fast_client(url, **kw):
    """A client tuned so failure paths cost milliseconds, not seconds."""
    kw.setdefault("connect_timeout_s", 0.5)
    kw.setdefault("read_timeout_s", 1.0)
    kw.setdefault("max_retries", 0)
    kw.setdefault("backoff_base_s", 0.001)
    kw.setdefault("backoff_cap_s", 0.002)
    kw.setdefault("rng", random.Random(0))
    return RemoteCacheClient(url, **kw)


def free_port_url():
    """An address nothing listens on (bound then released)."""
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return f"127.0.0.1:{port}"


DIGEST = "ab" * 20


class TestFraming:
    def test_roundtrip(self):
        value = {"cells": ["inv", "nand2"], "t": 10.0}
        frame = encode_entry(value)
        assert frame.startswith(MAGIC)
        verify_frame(frame)
        assert decode_entry(frame) == value

    def test_truncation_detected_without_unpickle(self):
        frame = encode_entry([1, 2, 3])
        for cut in (0, 3, HEADER_LEN - 1, HEADER_LEN, len(frame) - 1):
            with pytest.raises(CacheCorruptionError):
                verify_frame(frame[:cut])

    def test_bitflip_detected(self):
        frame = bytearray(encode_entry("payload"))
        frame[-1] ^= 0x01
        with pytest.raises(CacheCorruptionError):
            verify_frame(bytes(frame))

    def test_wrong_magic_rejected(self):
        frame = encode_entry("x")
        with pytest.raises(CacheCorruptionError):
            verify_frame(b"X" + frame[1:])

    def test_verify_does_not_unpickle(self):
        # A frame around a bomb payload must verify (checksum is fine)
        # without ever executing pickle machinery.
        import hashlib

        bomb = b"cos\nsystem\n(S'true'\ntR."  # classic RCE pickle
        frame = MAGIC + hashlib.sha256(bomb).digest() + bomb
        verify_frame(frame)  # fine: checksum math only
        with pytest.raises(Exception):
            pickle.loads(bomb.replace(b"cos", b"cnosuch", 1))


class TestBlobStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = BlobStore(tmp_path)
        frame = encode_entry({"a": 1})
        store.put(DIGEST, frame)
        assert store.get(DIGEST) == frame
        assert store.stats()["entries"] == 1

    def test_put_rejects_corrupt_frame(self, tmp_path):
        store = BlobStore(tmp_path)
        with pytest.raises(CacheCorruptionError):
            store.put(DIGEST, b"not a frame")
        assert store.get(DIGEST) is None
        assert store.stats()["entries"] == 0

    def test_read_quarantines_rotted_blob(self, tmp_path):
        store = BlobStore(tmp_path)
        store.put(DIGEST, encode_entry("v"))
        # Rot the stored bytes behind the store's back.
        path = tmp_path / f"{DIGEST}.blob"
        path.write_bytes(path.read_bytes()[:-3])
        assert store.get(DIGEST) is None
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        # Never served again.
        assert store.get(DIGEST) is None

    def test_scrub_counts_and_quarantines(self, tmp_path):
        store = BlobStore(tmp_path)
        store.put("aa" * 20, encode_entry(1))
        store.put("bb" * 20, encode_entry(2))
        (tmp_path / ("bb" * 20 + ".blob")).write_bytes(b"rotted")
        report = store.scrub()
        assert report == {"checked": 2, "ok": 1, "quarantined": 1}
        assert store.get("aa" * 20) is not None
        assert store.get("bb" * 20) is None

    def test_lru_eviction_respects_cap(self, tmp_path):
        payload = encode_entry(b"x" * 4096)
        cap_mb = (3 * len(payload)) / (1024 * 1024)
        store = BlobStore(tmp_path, max_mb=cap_mb)
        import os
        import time as _time

        digests = [f"{i:02d}" * 20 for i in range(5)]
        now = _time.time()
        for i, digest in enumerate(digests):
            store.put(digest, payload)
            # Deterministic LRU order without sleeping.
            os.utime(tmp_path / f"{digest}.blob", (now + i, now + i))
            store._enforce_cap()
        held = {d for d in digests if store.get(d) is not None}
        assert len(held) <= 3
        assert digests[-1] in held  # newest survives
        assert digests[0] not in held  # oldest evicted


class TestBlobServerHTTP:
    def test_roundtrip_over_http(self, served):
        _, url = served
        client = fast_client(url)
        frame = encode_entry({"k": "v"})
        assert client.put(DIGEST, frame) is True
        assert client.get(DIGEST) == frame
        assert client.counters["cache.remote.hit"] == 1
        assert client.counters["cache.remote.put"] == 1

    def test_miss_is_none(self, served):
        _, url = served
        client = fast_client(url)
        assert client.get("ee" * 20) is None
        assert client.counters["cache.remote.miss"] == 1
        assert not client.degraded  # a miss is a healthy answer

    def test_server_rejects_corrupt_upload(self, served):
        _, url = served
        client = fast_client(url)
        assert client.put(DIGEST, b"garbage") is False
        assert client.counters["cache.remote.put_rejected"] == 1
        assert client.get(DIGEST) is None  # nothing was stored
        assert not client.degraded  # a 4xx is not a transport failure

    def test_healthz_and_scrub(self, served):
        httpd, url = served
        client = fast_client(url)
        client.put(DIGEST, encode_entry(1))
        assert client.probe() is True
        path = httpd.store.root / f"{DIGEST}.blob"
        path.write_bytes(b"rot")
        report = client.scrub()
        assert report["quarantined"] == 1

    def test_url_parsing(self):
        assert _parse_url("127.0.0.1:8358") == ("127.0.0.1", 8358)
        assert _parse_url("http://localhost:99/") == ("localhost", 99)
        with pytest.raises(ValueError):
            _parse_url("https://localhost:99")
        with pytest.raises(ValueError):
            _parse_url("localhost")


class TestClientNeverFails:
    def test_dead_server_degrades_to_miss(self):
        client = fast_client(free_port_url(), breaker_threshold=2)
        frame = encode_entry("v")
        assert client.get(DIGEST) is None
        assert client.put(DIGEST, frame) is False
        assert client.counters["cache.remote.error"] == 1
        assert client.counters["cache.remote.write_behind"] == 1

    def test_breaker_trips_into_degraded_mode(self):
        with obs.Tracer() as tracer:
            client = fast_client(free_port_url(), breaker_threshold=2)
            for _ in range(5):
                assert client.get(DIGEST) is None
            # Two transport failures tripped the breaker; the next
            # three lookups were skipped without touching the network.
            assert client.degraded
            assert client.counters["cache.remote.error"] == 2
            assert client.counters["cache.remote.degraded_skip"] == 3
        snap = tracer.metrics_snapshot()
        assert snap["gauges"]["cache.remote.degraded"] == 1
        assert tracer.counters["cache.remote.breaker.trip"] == 1

    def test_recovery_closes_breaker_and_flushes_writes(self, tmp_path):
        clock_now = [0.0]
        with obs.Tracer() as tracer:
            httpd = make_blob_server("127.0.0.1", 0, tmp_path / "blobs")
            url = f"127.0.0.1:{httpd.server_address[1]}"
            client = fast_client(
                url,
                breaker_threshold=1,
                breaker_cooldown_s=5.0,
                clock=lambda: clock_now[0],
            )
            # Server not serving yet: trip + stash two writes.
            frames = {f"{i:02d}" * 20: encode_entry(i) for i in (1, 2)}
            for digest, frame in frames.items():
                assert client.put(digest, frame) is False
            assert client.degraded
            assert client.stats()["pending_writes"] == 2
            # Server comes up; cooldown elapses; next op is the probe.
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            try:
                clock_now[0] = 5.0
                assert client.probe() is True
                assert not client.degraded
                assert client.stats()["pending_writes"] == 0
                for digest, frame in frames.items():
                    assert client.get(digest) == frame
            finally:
                httpd.shutdown()
                httpd.server_close()
            assert client.counters["cache.remote.recovered"] == 1
            assert client.counters["cache.remote.writeback"] == 2
        assert tracer.metrics_snapshot()["gauges"]["cache.remote.degraded"] == 0

    def test_write_behind_is_bounded_latest_wins(self):
        client = fast_client(
            free_port_url(), breaker_threshold=1, max_pending_writes=3
        )
        for i in range(6):
            client.put(f"{i:02d}" * 20, encode_entry(i))
        stats = client.stats()
        assert stats["pending_writes"] == 3
        assert client.counters["cache.remote.write_behind_dropped"] == 3

    def test_injected_timeout_and_partition_degrade(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec(site="cache.remote.timeout", first_n=1)]
        )
        # Target a live-looking URL; the injected fault fires before
        # any socket is opened, so nothing need be listening.
        client = fast_client("127.0.0.1:9", breaker_threshold=10)
        with faults.injecting(plan):
            assert client.get(DIGEST) is None
        assert client.counters["cache.remote.timeout"] == 1
        plan = faults.FaultPlan(
            [faults.FaultSpec(site="cache.remote.partition", first_n=1)]
        )
        with faults.injecting(plan):
            assert client.put(DIGEST, encode_entry(1)) is False
        assert client.counters["cache.remote.put_error"] >= 1

    def test_corrupt_fetch_quarantines_and_refetches_once(self, served):
        httpd, url = served
        client = fast_client(url, breaker_threshold=2)
        frame = encode_entry({"good": True})
        assert client.put(DIGEST, frame)
        # First fetch corrupted in flight; the refetch gets clean bytes.
        plan = faults.FaultPlan(
            [faults.FaultSpec(site="cache.remote.corrupt", first_n=1)]
        )
        with faults.injecting(plan):
            assert client.get(DIGEST) == frame
        assert client.counters["cache.remote.corrupt"] == 1
        assert client.counters["cache.remote.refetch"] == 1
        assert not client.degraded

    def test_persistently_lying_server_counts_as_failure(self, served):
        httpd, url = served
        client = fast_client(url, breaker_threshold=1)
        assert client.put(DIGEST, encode_entry("v"))
        # Every fetched copy corrupts: refetch once, then give up and
        # treat the server as unhealthy.
        plan = faults.FaultPlan(
            [faults.FaultSpec(site="cache.remote.corrupt", first_n=10)]
        )
        with faults.injecting(plan):
            assert client.get(DIGEST) is None
        assert client.counters["cache.remote.error"] == 1
        assert client.degraded


class TestArtifactCacheIntegration:
    def _compute_counter(self):
        calls = []

        def compute():
            calls.append(1)
            return {"result": len(calls)}

        return calls, compute

    def test_two_hosts_share_one_computation(self, served, tmp_path):
        _, url = served
        host1 = ArtifactCache(cache_dir=tmp_path / "h1", remote=url)
        host2 = ArtifactCache(cache_dir=tmp_path / "h2", remote=url)
        calls, compute = self._compute_counter()
        key = "lib:deadbeef"
        assert host1.get_or_compute(key, compute) == {"result": 1}
        assert host2.get_or_compute(key, compute) == {"result": 1}
        assert calls == [1]  # computed exactly once across "hosts"
        assert host2.remote_hits == 1
        # The remote hit backfilled host2's local tiers: a third read
        # with the remote gone is still a local hit.
        host3 = ArtifactCache(cache_dir=tmp_path / "h2", remote=False)
        assert host3.get_or_compute(key, compute) == {"result": 1}
        assert calls == [1]

    def test_dead_remote_is_bit_identical_to_no_remote(self, tmp_path):
        def compute():
            return {"delay": [1.25, 3.5], "slew": 0.125}

        with_remote = ArtifactCache(
            cache_dir=tmp_path / "a",
            remote=fast_client(free_port_url(), breaker_threshold=1),
        )
        value = with_remote.get_or_compute("k:1", compute)
        without = ArtifactCache(cache_dir=tmp_path / "b", remote=False)
        assert pickle.dumps(without.get_or_compute("k:1", compute)) == (
            pickle.dumps(value)
        )
        # And the on-disk frames match byte for byte.
        assert with_remote._disk_path("k:1").read_bytes() == (
            without._disk_path("k:1").read_bytes()
        )

    def test_memory_and_disk_win_over_remote(self, served, tmp_path):
        httpd, url = served
        cache = ArtifactCache(cache_dir=tmp_path / "d", remote=url)
        calls, compute = self._compute_counter()
        cache.get_or_compute("k:2", compute)
        before = httpd.store.counters.get("cache.remote.server.hit", 0)
        for _ in range(5):
            cache.get_or_compute("k:2", compute)
        assert calls == [1]
        # All five were memory hits; the server saw no new traffic.
        assert httpd.store.counters.get("cache.remote.server.hit", 0) == before

    def test_env_var_wires_remote(self, served, tmp_path, monkeypatch):
        _, url = served
        monkeypatch.setenv("REPRO_CACHE_REMOTE", url)
        cache = ArtifactCache(cache_dir=tmp_path / "env")
        assert cache.remote is not None
        assert cache.remote.url == url
        monkeypatch.setenv("REPRO_CACHE_REMOTE", "")
        assert ArtifactCache(cache_dir=tmp_path / "env2").remote is None

    def test_bad_remote_url_disables_tier(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path, remote="no-port-here")
        assert cache.remote is None  # never fatal

    def test_stats_expose_remote_tier(self, served, tmp_path):
        _, url = served
        cache = ArtifactCache(cache_dir=tmp_path / "s", remote=url)
        calls, compute = self._compute_counter()
        cache.get_or_compute("k:3", compute)
        stats = cache.stats()
        assert stats["remote_hits"] == 0
        assert stats["remote"]["breaker"]["state"] == "closed"


class TestScrubCLI:
    def test_cache_scrub_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        cache = ArtifactCache(cache_dir=tmp_path, remote=False)
        cache.put("k:a", 1)
        assert main(["cache", "scrub", "--cache-dir", str(tmp_path)]) == 0
        assert "1 checked, 1 ok, 0 quarantined" in capsys.readouterr().out
        bad = cache._disk_path("k:a")
        bad.write_bytes(bad.read_bytes()[:4])
        assert main(["cache", "scrub", "--cache-dir", str(tmp_path)]) == 1
        assert "1 quarantined" in capsys.readouterr().out

    def test_cache_scrub_with_remote(self, served, tmp_path, capsys):
        from repro.cli import main

        httpd, url = served
        client = fast_client(url)
        client.put(DIGEST, encode_entry(1))
        (httpd.store.root / ("cc" * 20 + ".blob")).write_bytes(b"rot")
        code = main([
            "cache", "scrub", "--cache-dir", str(tmp_path / "none"),
            "--remote", url,
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "0 checked, 0 ok, 0 quarantined" in out  # empty disk tier
        assert "2 checked, 1 ok, 1 quarantined" in out

    def test_cache_scrub_unreachable_remote_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "cache", "scrub", "--cache-dir", str(tmp_path / "none"),
            "--remote", free_port_url(),
        ])
        assert code == 2


class TestScrub:
    def test_scrub_disk_quarantines_corrupt_entries(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path, remote=False)
        cache.put("k:good", {"v": 1})
        cache.put("k:bad", {"v": 2})
        bad = cache._disk_path("k:bad")
        bad.write_bytes(bad.read_bytes()[:-5])
        report = scrub_disk(tmp_path)
        assert report == {"checked": 2, "ok": 1, "quarantined": 1}
        assert not bad.exists()
        assert bad.with_suffix(".corrupt").exists()
        # Idempotent: a second sweep finds only the good entry.
        assert scrub_disk(tmp_path) == {
            "checked": 1, "ok": 1, "quarantined": 0,
        }
