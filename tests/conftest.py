"""Shared fixtures.

Every test runs against a fresh in-memory artifact cache so cached
stage outputs cannot leak between tests: whether synthesis actually
executes (and emits its spans/counters) must depend only on the test
itself, not on suite ordering.  Tests that exercise cache behavior
build their own :class:`ArtifactCache` explicitly.
"""

import pytest

from repro.core import ArtifactCache, using_cache


@pytest.fixture(autouse=True)
def _fresh_artifact_cache():
    with using_cache(ArtifactCache()):
        yield
