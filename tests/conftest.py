"""Shared fixtures.

Every test runs against a fresh in-memory artifact cache so cached
stage outputs cannot leak between tests: whether synthesis actually
executes (and emits its spans/counters) must depend only on the test
itself, not on suite ordering.  Tests that exercise cache behavior
build their own :class:`ArtifactCache` explicitly.

The run ledger is likewise pointed at a per-test temp file: flow CLI
commands append a ledger record by default, and a test run must never
pollute the developer's real ``.repro/ledger.jsonl`` (or depend on
records earlier tests left there).
"""

import pytest

from repro.core import ArtifactCache, using_cache


@pytest.fixture(autouse=True)
def _fresh_artifact_cache(monkeypatch):
    # A developer's ambient remote-cache tier must not leak into tests:
    # every test cache is memory-only unless the test opts in.
    monkeypatch.delenv("REPRO_CACHE_REMOTE", raising=False)
    with using_cache(ArtifactCache(remote=False)):
        yield


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "test-ledger.jsonl"))
