"""Integration tests for the end-to-end cryogenic-aware flow."""

import pytest

from repro.benchgen import build_circuit
from repro.charlib import default_library
from repro.core import (
    SCENARIOS,
    CryoSynthesisFlow,
    figure1_model_validation,
    figure2ab_cell_distributions,
    run_scenarios,
)
from repro.sat import assert_equivalent


@pytest.fixture(scope="module")
def library():
    return default_library(10.0)


class TestFlowBasics:
    def test_unknown_scenario_rejected(self, library):
        with pytest.raises(ValueError):
            CryoSynthesisFlow(library, scenario="fastest")

    def test_scenarios_registry(self):
        assert set(SCENARIOS) == {"baseline", "p_a_d", "p_d_a"}

    def test_stage2_power_modes(self, library):
        assert CryoSynthesisFlow(library, "baseline").stage2_power_mode == "tiebreak"
        assert CryoSynthesisFlow(library, "p_a_d").stage2_power_mode == "primary"

    def test_run_produces_complete_result(self, library):
        aig = build_circuit("ctrl", "small")
        flow = CryoSynthesisFlow(library, "baseline")
        result = flow.run(aig)
        assert result.circuit == "ctrl"
        assert result.num_gates > 0
        assert result.critical_delay > 0.0
        assert result.area > 0.0
        assert result.power is None
        with pytest.raises(ValueError):
            _ = result.total_power

    def test_signoff_power_fills_report(self, library):
        aig = build_circuit("ctrl", "small")
        flow = CryoSynthesisFlow(library, "baseline")
        result = flow.run(aig)
        report = flow.signoff_power(result, clock_period=1e-9, vectors=128)
        assert result.power is report
        assert result.total_power > 0.0


class TestFlowCorrectness:
    @pytest.mark.parametrize("circuit", ["ctrl", "int2float", "i2c"])
    def test_all_scenarios_preserve_function(self, circuit, library):
        aig = build_circuit(circuit, "small")
        results = run_scenarios(aig, library, vectors=128)
        for scenario, result in results.items():
            assert_equivalent(
                aig, result.netlist.to_aig(library), f"{circuit}/{scenario}"
            )

    def test_fair_clock_rule(self, library):
        # All scenarios must be signed off at the same clock period.
        aig = build_circuit("int2float", "small")
        results = run_scenarios(aig, library, vectors=128)
        periods = {r.power.clock_period for r in results.values()}
        assert len(periods) == 1
        slowest = max(r.critical_delay for r in results.values())
        assert periods.pop() >= slowest

    def test_optimization_reduces_or_preserves_size(self, library):
        aig = build_circuit("cavlc", "small")
        flow = CryoSynthesisFlow(library, "baseline")
        optimized = flow.optimize(aig)
        assert optimized.num_ands <= aig.num_ands * 1.05


class TestFigure1Harness:
    def test_validation_rows(self):
        rows = figure1_model_validation(temperatures=(300.0, 10.0))
        # 2 polarities x 2 temperatures x 2 drain biases.
        assert len(rows) == 8
        assert {row.polarity for row in rows} == {"n", "p"}
        # The paper's "excellent agreement": sub-0.2-decade residuals.
        for row in rows:
            assert row.rms_log_error < 0.2, row


class TestFigure2abHarness:
    def test_distribution_shapes(self):
        data = figure2ab_cell_distributions(temperatures=(300.0, 10.0))
        delay300 = data["delay"][300.0]
        delay10 = data["delay"][10.0]
        # Fig. 2(a): distributions largely overlap -> medians close.
        assert delay10.median == pytest.approx(delay300.median, rel=0.15)
        # Fig. 2(b): slightly lower energy at 10 K.
        energy300 = data["energy"][300.0]
        energy10 = data["energy"][10.0]
        assert energy10.median < energy300.median
        assert energy10.median > 0.8 * energy300.median


class TestOptimizationTrace:
    def test_run_records_stage_prefixed_trace(self, library):
        aig = build_circuit("ctrl", "small")
        result = CryoSynthesisFlow(library, "p_d_a").run(aig)
        assert result.opt_trace
        stages = {label.split("/", 1)[0] for label, _, _ in result.opt_trace}
        assert stages == {"c2rs", "power"}
        for _, ands, depth in result.opt_trace:
            assert ands > 0 and depth > 0

    def test_trace_surfaces_in_to_dict(self, library):
        aig = build_circuit("ctrl", "small")
        result = CryoSynthesisFlow(library, "baseline").run(aig)
        dumped = result.to_dict()
        assert dumped["optimization_trace"]
        step = dumped["optimization_trace"][0]
        assert set(step) == {"pass", "ands", "depth"}

    def test_skip_stage2_trace_is_stage1_only(self, library):
        aig = build_circuit("ctrl", "small")
        flow = CryoSynthesisFlow(library, "baseline", skip_stage2=True)
        result = flow.run(aig)
        stages = {label.split("/", 1)[0] for label, _, _ in result.opt_trace}
        assert stages == {"c2rs"}
