"""Cross-layer integration: transistor netlists vs cell truth tables.

For a representative sample of the catalog, build each cell's
transistor-level netlist, solve the DC operating point for every input
combination through the Newton engine, and compare the electrical
output levels against the cell's Boolean truth table.  This pins three
layers to each other: PDK netlist generation, the compact model, and
the nodal-analysis solver.
"""

import pytest

from repro.pdk import cryo5_technology
from repro.pdk.catalog import (
    make_aoi,
    make_b_variant,
    make_buf,
    make_maj,
    make_mux2,
    make_nand,
    make_nor,
    make_oai,
    make_or,
    make_xnor2,
)
from repro.spice import Simulator

TECH = cryo5_technology()
VDD = TECH.vdd

SAMPLE_CELLS = [
    make_buf(2),
    make_nand(3, 1),
    make_nor(3, 1),
    make_or(2, 1),
    make_aoi("21", 1),
    make_aoi("22", 2),
    make_oai("211", 1),
    make_b_variant("NOR2B", 1),
    make_xnor2(1),
    make_maj(1, inverted=True),
    make_mux2(1),
]


@pytest.mark.parametrize("cell", SAMPLE_CELLS, ids=lambda c: c.name)
@pytest.mark.parametrize("temperature", [300.0, 10.0])
def test_dc_logic_matches_truth_table(cell, temperature):
    n = len(cell.inputs)
    table = cell.output_truth_table(cell.outputs[0])
    for pattern in range(1 << n):
        circuit = cell.to_circuit(TECH)
        for j, pin in enumerate(cell.inputs):
            value = VDD if (pattern >> j) & 1 else 0.0
            circuit.add_vsource(f"v_{pin}", pin, "0", value)
        op = Simulator(circuit, temperature).dc_operating_point()
        expected = VDD if (table >> pattern) & 1 else 0.0
        assert op[cell.outputs[0]] == pytest.approx(expected, abs=0.03), (
            cell.name,
            pattern,
            temperature,
        )


def test_multi_output_cell_dc_logic():
    from repro.pdk.catalog import make_ha

    ha = make_ha(1)
    for pattern in range(4):
        circuit = ha.to_circuit(TECH)
        for j, pin in enumerate(ha.inputs):
            circuit.add_vsource(f"v_{pin}", pin, "0", VDD if (pattern >> j) & 1 else 0.0)
        op = Simulator(circuit, 300.0).dc_operating_point()
        a, b = bool(pattern & 1), bool(pattern & 2)
        assert op["S"] == pytest.approx(VDD if a != b else 0.0, abs=0.03)
        assert op["CO"] == pytest.approx(VDD if a and b else 0.0, abs=0.03)
