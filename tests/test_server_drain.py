"""Graceful drain and kill/resume for ``repro serve`` (end to end).

The satellite-3 contract: SIGTERM drains in-flight work and exits 0;
``kill -9`` mid-job leaves a journal whose ``--resume`` completes the
interrupted job to a result **byte-identical** to an uninterrupted
run's persisted result file.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

pytestmark = pytest.mark.slow


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    return env


def _serve(tmp: Path, *extra):
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--port-file", str(tmp / "port.txt"),
        "--workers", "2", "--no-ledger",
        "--results-dir", str(tmp / "results"),
        *extra,
    ]
    return subprocess.Popen(
        cmd, env=_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE, text=True,
    )


def _wait_port(tmp: Path, proc, timeout=60.0) -> int:
    deadline = time.monotonic() + timeout
    port_file = tmp / "port.txt"
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(f"serve exited early: {proc.stderr.read()}")
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text())
        time.sleep(0.05)
    raise AssertionError("serve never wrote its port file")


def _post(port: int, spec: dict) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/jobs",
        data=json.dumps(spec).encode(),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _poll_done(port: int, job_id: str, timeout=120.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/jobs/{job_id}", timeout=30
        ) as response:
            state = json.loads(response.read())["state"]
        if state in ("done", "failed"):
            assert state == "done"
            return
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} never finished")


#: The job the kill/resume test interrupts: real characterization work
#: (a 77 K corner), so byte-identity checks determinism of the whole
#: compute-and-persist path across two processes, not just an echo.
CORNER = {"kind": "characterize", "params": {"temperature": 77.0},
          "tenant": "drain-test"}


def test_sigterm_drains_in_flight_jobs_and_exits_zero(tmp_path):
    proc = _serve(tmp_path, "--journal", str(tmp_path / "serve.jnl"))
    port = _wait_port(tmp_path, proc)
    jobs = [
        _post(port, {"kind": "probe",
                     "params": {"echo": i, "sleep_s": 0.2}})
        for i in range(4)
    ]
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0, proc.stderr.read()
    # Drained, not dropped: every admitted job's result was persisted.
    keys = {job["key"].removeprefix("server.job.") for job in jobs}
    persisted = {p.stem for p in (tmp_path / "results").glob("*.json")}
    assert keys <= persisted


def test_kill9_midjob_resume_is_byte_identical(tmp_path):
    # Reference: an uninterrupted serve run computes the corner.
    ref_dir = tmp_path / "ref"
    ref_dir.mkdir()
    proc = _serve(ref_dir, "--journal", str(ref_dir / "serve.jnl"))
    port = _wait_port(ref_dir, proc)
    job = _post(port, CORNER)
    key = job["key"].removeprefix("server.job.")
    _poll_done(port, job["id"])
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0
    reference = (ref_dir / "results" / f"{key}.json").read_bytes()

    # Interrupted: same corner, SIGKILL while the worker is on it.
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    proc = _serve(run_dir, "--journal", str(run_dir / "serve.jnl"))
    port = _wait_port(run_dir, proc)
    job = _post(port, CORNER)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/jobs/{job['id']}", timeout=30
        ) as response:
            if json.loads(response.read())["state"] == "running":
                break
        time.sleep(0.05)
    proc.kill()  # SIGKILL: no drain, no journal close, lock left behind
    proc.wait(timeout=60)
    assert not (run_dir / "results" / f"{key}.json").exists()

    # Resume completes the journaled job; the persisted result file is
    # byte-identical to the uninterrupted run's.
    resume = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve", "--no-http",
            "--resume", str(run_dir / "serve.jnl"),
            "--results-dir", str(run_dir / "results"),
            "--exit-when-idle", "--no-ledger", "--workers", "2",
        ],
        env=_env(), capture_output=True, text=True, timeout=600,
    )
    assert resume.returncode == 0, resume.stderr
    assert "re-enqueued 1 unfinished job(s)" in resume.stderr
    resumed = (run_dir / "results" / f"{key}.json").read_bytes()
    assert resumed == reference


def test_drain_timeout_exits_3_and_resume_finishes(tmp_path):
    proc = _serve(
        tmp_path,
        "--journal", str(tmp_path / "serve.jnl"),
        "--drain-timeout", "0.2",
    )
    port = _wait_port(tmp_path, proc)
    job = _post(port, {"kind": "probe",
                       "params": {"echo": "slow", "sleep_s": 8}})
    time.sleep(0.4)  # let a worker pick it up
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 3  # drain timed out, journal kept
    resume = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve", "--no-http",
            "--resume", str(tmp_path / "serve.jnl"),
            "--results-dir", str(tmp_path / "results"),
            "--exit-when-idle", "--no-ledger",
        ],
        env=_env(), capture_output=True, text=True, timeout=600,
    )
    assert resume.returncode == 0, resume.stderr
    key = job["key"].removeprefix("server.job.")
    result = json.loads((tmp_path / "results" / f"{key}.json").read_text())
    assert result == {"kind": "probe", "echo": "slow"}
