"""Tests for the EPFL-class benchmark generators.

Arithmetic circuits are verified against Python integer arithmetic;
control circuits against behavioural reference models.
"""

import math
import random

import pytest

from repro.benchgen import EPFL_SUITE, WordBuilder, build_circuit, build_suite
from repro.benchgen import arithmetic, control


def word(outs, lo, hi):
    return sum(1 << i for i, b in enumerate(outs[lo:hi]) if b)


def bits_of(value, width):
    return [bool((value >> i) & 1) for i in range(width)]


class TestWordBuilder:
    def test_width_mismatch_rejected(self):
        wb = WordBuilder("t")
        a = wb.input_word("a", 4)
        b = wb.input_word("b", 3)
        with pytest.raises(ValueError):
            wb.add(a, b)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            WordBuilder("t").input_word("a", 0)

    def test_constant(self):
        wb = WordBuilder("t")
        wb.input_word("a", 1)
        wb.output_word("k", wb.constant(0b1010, 4))
        assert wb.aig.evaluate([False]) == [False, True, False, True]

    def test_reductions(self):
        wb = WordBuilder("t")
        a = wb.input_word("a", 3)
        wb.aig.add_po(wb.reduce_and(a))
        wb.aig.add_po(wb.reduce_or(a))
        wb.aig.add_po(wb.reduce_xor(a))
        for v in range(8):
            outs = wb.aig.evaluate(bits_of(v, 3))
            assert outs[0] == (v == 7)
            assert outs[1] == (v != 0)
            assert outs[2] == (bin(v).count("1") % 2 == 1)


class TestArithmeticSemantics:
    W = 8

    def _check(self, aig, fn, n_inputs, widths, trials=30, seed=0):
        rng = random.Random(seed)
        for _ in range(trials):
            values = [rng.getrandbits(w) for w in widths]
            bits = []
            for value, w in zip(values, widths):
                bits.extend(bits_of(value, w))
            outs = aig.evaluate(bits)
            fn(values, outs)

    def test_adder(self):
        aig = arithmetic.adder(self.W)

        def check(vals, outs):
            assert word(outs, 0, self.W + 1) == vals[0] + vals[1]

        self._check(aig, check, 2, [self.W, self.W])

    def test_multiplier(self):
        aig = arithmetic.multiplier(6)

        def check(vals, outs):
            assert word(outs, 0, 12) == vals[0] * vals[1]

        self._check(aig, check, 2, [6, 6])

    def test_square(self):
        aig = arithmetic.square(6)

        def check(vals, outs):
            assert word(outs, 0, 12) == vals[0] ** 2

        self._check(aig, check, 1, [6])

    def test_div(self):
        aig = arithmetic.div(self.W)

        def check(vals, outs):
            divisor = vals[1] or 1
            if vals[1] == 0:
                return  # divide-by-zero: unchecked (hardware-defined)
            assert word(outs, 0, self.W) == vals[0] // divisor
            assert word(outs, self.W, 2 * self.W) == vals[0] % divisor

        self._check(aig, check, 2, [self.W, self.W])

    def test_sqrt_exhaustive(self):
        aig = arithmetic.sqrt(8)
        for v in range(256):
            outs = aig.evaluate(bits_of(v, 8))
            assert word(outs, 0, 4) == math.isqrt(v), v

    def test_hyp(self):
        aig = arithmetic.hyp(5)
        rng = random.Random(1)
        for _ in range(25):
            a, b = rng.getrandbits(5), rng.getrandbits(5)
            outs = aig.evaluate(bits_of(a, 5) + bits_of(b, 5))
            expected = math.isqrt(a * a + b * b)
            assert word(outs, 0, len(outs)) == expected, (a, b)

    def test_bar_rotate(self):
        aig = arithmetic.bar(16)
        rng = random.Random(2)
        for _ in range(25):
            data, amount = rng.getrandbits(16), rng.getrandbits(4)
            outs = aig.evaluate(bits_of(data, 16) + bits_of(amount, 4))
            expected = ((data << amount) | (data >> (16 - amount))) & 0xFFFF
            assert word(outs, 0, 16) == expected

    def test_bar_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            arithmetic.bar(12)

    def test_max(self):
        aig = arithmetic.max_circuit(8, operands=4)
        rng = random.Random(3)
        for _ in range(25):
            values = [rng.getrandbits(8) for _ in range(4)]
            bits = []
            for v in values:
                bits.extend(bits_of(v, 8))
            outs = aig.evaluate(bits)
            assert word(outs, 0, 8) == max(values)

    def test_log2_integer_part(self):
        aig = arithmetic.log2(8)
        for v in range(1, 256):
            outs = aig.evaluate(bits_of(v, 8))
            assert word(outs, 0, 3) == v.bit_length() - 1, v
            assert outs[-1] is True  # valid flag

    def test_sin_monotone_on_first_quadrant(self):
        # The polynomial approximation must be monotone and bounded
        # over [0, 1) (sin is, and the approximation is smooth).
        aig = arithmetic.sin(8)
        previous = -1
        for v in range(0, 256, 8):
            outs = aig.evaluate(bits_of(v, 8))
            value = word(outs, 0, 8)
            assert value >= previous - 8  # small ripple tolerance near the peak
            previous = max(previous, value)

    def test_sin_endpoints(self):
        aig = arithmetic.sin(8)
        zero = word(aig.evaluate(bits_of(0, 8)), 0, 8)
        almost_one = word(aig.evaluate(bits_of(255, 8)), 0, 8)
        assert zero == 0
        assert almost_one > 200  # ~ sin(pi/2) ~ 1.0 in Q0.8


class TestControlSemantics:
    def test_dec_one_hot(self):
        aig = control.dec(4)
        for v in range(16):
            outs = aig.evaluate(bits_of(v, 4))
            assert sum(outs) == 1
            assert outs[v] is True

    def test_priority_lowest_index_wins(self):
        aig = control.priority(8)
        rng = random.Random(4)
        for _ in range(30):
            req = rng.getrandbits(8)
            outs = aig.evaluate(bits_of(req, 8))
            grants = outs[:8]
            if req == 0:
                assert not any(grants)
                assert outs[8] is False
            else:
                expected = (req & -req).bit_length() - 1
                assert grants[expected] is True
                assert sum(grants) == 1
                assert outs[8] is True

    def test_voter_majority_exhaustive_small(self):
        aig = control.voter(7)
        for v in range(128):
            outs = aig.evaluate(bits_of(v, 7))
            assert outs[0] == (bin(v).count("1") >= 4), v

    def test_voter_rejects_even(self):
        with pytest.raises(ValueError):
            control.voter(10)

    def test_int2float_normalization(self):
        aig = control.int2float(8, mantissa_bits=3, exponent_bits=3)
        for v in range(1, 256):
            outs = aig.evaluate(bits_of(v, 8))
            exponent = word(outs, 0, 3)
            assert exponent == v.bit_length() - 1, v

    def test_int2float_zero(self):
        aig = control.int2float(8, mantissa_bits=3, exponent_bits=3)
        outs = aig.evaluate(bits_of(0, 8))
        assert not any(outs)

    def test_arbiter_single_grant(self):
        aig = control.arbiter(8)
        rng = random.Random(5)
        for _ in range(40):
            req = rng.getrandbits(8)
            mask = rng.getrandbits(8)
            outs = aig.evaluate(bits_of(req, 8) + bits_of(mask, 8))
            grants = outs[:8]
            assert sum(grants) == (1 if req else 0)
            if req:
                index = grants.index(True)
                assert (req >> index) & 1  # grant only to a requester
                masked = req & mask
                if masked:
                    assert (masked >> index) & 1  # masked take priority

    def test_router_exactly_one_port_when_ok(self):
        aig = control.router(flit_bits=8, addr_bits=4)
        rng = random.Random(6)
        for _ in range(40):
            dx, dy, lx, ly = (rng.getrandbits(2) for _ in range(4))
            payload = rng.getrandbits(8)
            parity = bin(payload).count("1") % 2
            bits = (
                bits_of(dx, 2) + bits_of(dy, 2) + bits_of(lx, 2) + bits_of(ly, 2)
                + bits_of(payload, 8) + [True]
            )
            outs = aig.evaluate(bits)
            ports, drop = outs[:5], outs[5]
            if parity:
                assert drop is True
                assert not any(ports)
            else:
                assert drop is False
                assert sum(ports) == 1

    def test_i2c_idle_start_transition(self):
        aig = control.i2c(addr_bits=4)
        # state=0 (idle), start=1 -> next_state must be 1.
        inputs = {name: False for name in aig.pi_names}
        inputs["start"] = True
        outs = aig.evaluate([inputs[name] for name in aig.pi_names])
        next_state = word(outs, 0, 4)
        assert next_state == 1

    def test_cavlc_nonempty_flag(self):
        aig = control.cavlc(4)
        zero_inputs = [False] * aig.num_pis
        outs = aig.evaluate(zero_inputs)
        assert outs[-1] is False  # no nonzero coefficients


class TestSuiteRegistry:
    def test_twenty_circuits(self):
        assert len(EPFL_SUITE) == 20
        categories = {spec.category for spec in EPFL_SUITE.values()}
        assert categories == {"arithmetic", "control"}
        assert sum(1 for s in EPFL_SUITE.values() if s.category == "arithmetic") == 10

    def test_build_by_name(self):
        aig = build_circuit("adder", "small")
        assert aig.name == "adder"
        assert aig.num_pis == 32

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_circuit("nonexistent")

    def test_build_subset(self):
        suite = build_suite("small", names=["ctrl", "dec"])
        assert set(suite) == {"ctrl", "dec"}

    def test_small_preset_all_build(self):
        suite = build_suite("small")
        for name, aig in suite.items():
            assert aig.num_ands > 0, name
            assert aig.num_pos > 0, name

    def test_presets_scale(self):
        small = build_circuit("multiplier", "small")
        default = build_circuit("multiplier", "default")
        assert default.num_ands > small.num_ands
