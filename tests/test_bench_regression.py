"""Perf-regression gate logic (``benchmarks/regression.py``).

Pure-logic tests on synthetic reports — the real benchmark run is
CI's bench-regression job; here we pin the gate's decision rules:
machine-speed normalization, the noise floor, per-section tolerance
overrides, and the vector-speedup floor.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import regression  # noqa: E402


def _report(results):
    return {"schema": "repro-bench-kernels/1", "results": results}


def _baseline(results, calibration=0.010, tolerances=None):
    return regression.make_baseline(_report(results), calibration, tolerances)


class TestExtract:
    def test_metrics_prefer_vector_path(self):
        metrics = regression.extract_metrics(
            _report({
                "sat": {"seconds": 0.5},
                "spice": {"scalar_seconds": 1.0, "vector_seconds": 0.2,
                          "speedup": 5.0},
            })
        )
        assert metrics == {"sat": 0.5, "spice.vector": 0.2}

    def test_speedups(self):
        speedups = regression.extract_speedups(
            _report({"spice": {"scalar_seconds": 1.0, "vector_seconds": 0.5,
                               "speedup": 2.0}})
        )
        assert speedups == {"spice": 2.0}


class TestGate:
    def test_identical_run_passes(self):
        results = {"sat": {"seconds": 0.5}}
        findings, failures = regression.check(
            _baseline(results), _report(results), current_calibration=0.010
        )
        assert failures == 0
        assert [f["status"] for f in findings] == ["ok"]

    def test_slowdown_beyond_tolerance_fails(self):
        findings, failures = regression.check(
            _baseline({"sat": {"seconds": 0.5}}),
            _report({"sat": {"seconds": 0.8}}),  # +60%
            current_calibration=0.010,
        )
        assert failures == 1
        [row] = findings
        assert row["status"] == "regression"
        assert row["slowdown"] == pytest.approx(0.6)

    def test_calibration_scales_baseline(self):
        # Same relative speed on a machine 2x slower: scaled baseline
        # doubles, so a doubled wall time is not a regression.
        findings, failures = regression.check(
            _baseline({"sat": {"seconds": 0.5}}, calibration=0.010),
            _report({"sat": {"seconds": 1.0}}),
            current_calibration=0.020,
        )
        assert failures == 0
        assert findings[0]["status"] == "ok"
        assert findings[0]["base_s"] == pytest.approx(1.0)

    def test_calibration_scale_is_clamped(self):
        # An absurd calibration ratio (broken probe) must not excuse an
        # arbitrarily large slowdown: the scale clamps at 5x.
        findings, failures = regression.check(
            _baseline({"sat": {"seconds": 0.1}}, calibration=0.001),
            _report({"sat": {"seconds": 10.0}}),
            current_calibration=1.0,  # claims a 1000x slower machine
        )
        assert failures == 1

    def test_noise_floor_never_fails(self):
        findings, failures = regression.check(
            _baseline({"tiny": {"seconds": 0.0001}}),
            _report({"tiny": {"seconds": 0.003}}),  # 30x but sub-floor
            current_calibration=0.010,
        )
        assert failures == 0
        assert findings[0]["status"] == "noise"

    def test_per_section_tolerance_override(self):
        baseline = _baseline(
            {"jittery": {"seconds": 0.5}}, tolerances={"jittery": 1.0}
        )
        _, failures = regression.check(
            baseline, _report({"jittery": {"seconds": 0.9}}),  # +80% < 100%
            current_calibration=0.010,
        )
        assert failures == 0

    def test_speedup_floor(self):
        results = {"spice": {"scalar_seconds": 1.0, "vector_seconds": 1.0,
                             "speedup": 0.9}}
        findings, failures = regression.check(
            _baseline(results), _report(results), current_calibration=0.010
        )
        assert failures == 1
        assert findings[-1]["status"] == "speedup-regression"

    def test_new_and_gone_sections_reported_not_failed(self):
        findings, failures = regression.check(
            _baseline({"old_one": {"seconds": 0.5}}),
            _report({"new_one": {"seconds": 0.5}}),
            current_calibration=0.010,
        )
        assert failures == 0
        assert {f["status"] for f in findings} == {"new", "gone"}

    def test_calibration_is_deterministic_order_of_magnitude(self):
        a, b = regression.calibrate(repeats=2), regression.calibrate(repeats=2)
        assert 0.001 < a < 1.0
        assert b < a * 3 and a < b * 3


class TestCommittedBaseline:
    def test_baseline_file_is_valid(self):
        path = regression.DEFAULT_BASELINE
        assert path.exists(), "benchmarks/BENCH_baseline.json must be committed"
        import json

        baseline = json.loads(path.read_text())
        assert baseline["schema"] == regression.BASELINE_SCHEMA
        assert baseline["calibration_seconds"] > 0
        metrics = regression.extract_metrics(baseline["report"])
        # The trajectory sections the gate protects must all be present.
        assert {"aig_simulation", "sat", "cut_enumeration",
                "spice_transient.vector", "charlib_arc.vector",
                "sta_full.vector", "sta_incremental.vector"} <= set(metrics)
        # The committed record of the incremental-STA win: repeated
        # sizing-style cost queries must be >= 5x faster on the graph
        # engine than legacy full re-analysis (static read, no timing).
        speedups = regression.extract_speedups(baseline["report"])
        assert speedups["sta_incremental"] >= 5.0
